"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs work on environments whose setuptools predates full
PEP 660 support (e.g. offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
