"""Tests for the sample-and-aggregate framework (Section 6)."""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.datasets.synthetic import mixture_of_gaussians
from repro.sample_aggregate.aggregators import (
    noisy_average_aggregator,
    one_cluster_aggregator,
)
from repro.sample_aggregate.applications import (
    private_gmm_center_estimator,
    private_mean_estimator,
    private_median_estimator,
)
from repro.sample_aggregate.framework import sa_minimum_database_size, sample_and_aggregate
from repro.sample_aggregate.stability import empirical_stability


@pytest.fixture
def gaussian_data():
    rng = np.random.default_rng(0)
    return rng.normal(loc=[0.4, 0.6], scale=0.05, size=(6000, 2))


class TestFramework:
    def test_mean_estimation_recovers_population_mean(self, gaussian_data):
        params = PrivacyParams(12.0, 1e-4)
        result = private_mean_estimator(gaussian_data, block_size=10,
                                        params=params, alpha=0.8,
                                        subsample_fraction=1.0 / 3.0, rng=1)
        assert result.found
        assert np.linalg.norm(result.point - np.array([0.4, 0.6])) <= 0.3

    def test_block_accounting(self, gaussian_data):
        params = PrivacyParams(8.0, 1e-5)
        result = private_mean_estimator(gaussian_data, block_size=50,
                                        params=params, rng=2)
        assert result.block_size == 50
        assert result.num_blocks >= 10
        assert result.target >= 1

    def test_diagnostics_collected_on_request(self, gaussian_data):
        params = PrivacyParams(8.0, 1e-5)
        result = private_mean_estimator(gaussian_data, block_size=50,
                                        params=params, rng=3,
                                        collect_diagnostics=True)
        assert result.aggregate_values is not None
        assert result.aggregate_values.shape[1] == 2

    def test_amplified_params_reported(self, gaussian_data):
        params = PrivacyParams(0.5, 1e-6)
        result = private_mean_estimator(gaussian_data, block_size=50,
                                        params=params, rng=4)
        assert result.amplified_params.epsilon <= params.epsilon

    def test_requires_enough_rows_for_one_block(self):
        data = np.zeros((20, 2))
        with pytest.raises(ValueError):
            sample_and_aggregate(data, lambda block: block.mean(axis=0),
                                 block_size=500, params=PrivacyParams(1.0, 1e-6))

    def test_minimum_database_size_formula(self):
        assert sa_minimum_database_size(block_size=10, alpha=0.5, beta=0.1,
                                        t_min=100) > 0

    def test_median_estimator(self, gaussian_data):
        params = PrivacyParams(12.0, 1e-4)
        result = private_median_estimator(gaussian_data, block_size=10,
                                          params=params, alpha=0.8,
                                          subsample_fraction=1.0 / 3.0, rng=5)
        assert result.found
        assert np.linalg.norm(result.point - np.array([0.4, 0.6])) <= 0.3


class TestAggregators:
    def test_one_cluster_aggregator_on_clustered_outputs(self):
        rng = np.random.default_rng(0)
        values = np.vstack([
            rng.normal(0.3, 0.01, size=(80, 2)),
            rng.uniform(0, 1, size=(20, 2)),
        ])
        aggregator = one_cluster_aggregator()
        point, _ = aggregator(values, 60, PrivacyParams(8.0, 1e-5), 0.1, 1, None)
        assert point is not None
        assert np.linalg.norm(point - 0.3) <= 0.3

    def test_noisy_average_aggregator_clips(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0.5, 0.01, size=(200, 2))
        aggregator = noisy_average_aggregator(clip_radius=1.0,
                                              center=np.array([0.5, 0.5]))
        point, _ = aggregator(values, 100, PrivacyParams(8.0, 1e-5), 0.1, 2, None)
        assert point is not None
        assert np.linalg.norm(point - 0.5) <= 0.5

    def test_noisy_average_aggregator_invalid_radius(self):
        with pytest.raises(ValueError):
            noisy_average_aggregator(clip_radius=0.0)


class TestGmmApplication:
    def test_recovers_dominant_component(self):
        points, _ = mixture_of_gaussians(
            n=12000, d=2, means=[[0.3, 0.3], [0.8, 0.8]], stddev=0.04,
            weights=[0.8, 0.2], rng=0,
        )
        params = PrivacyParams(12.0, 1e-4)
        result = private_gmm_center_estimator(points, block_size=40,
                                              params=params, alpha=0.8,
                                              subsample_fraction=1.0 / 3.0, rng=1)
        assert result.found
        assert np.linalg.norm(result.point - np.array([0.3, 0.3])) <= 0.3

    def test_invalid_arguments(self):
        points = np.zeros((100, 2))
        with pytest.raises(ValueError):
            private_gmm_center_estimator(points, 10, PrivacyParams(1.0, 1e-6),
                                         num_components=0)


class TestStability:
    def test_empirical_stability_of_sample_mean(self, gaussian_data):
        estimate = empirical_stability(
            gaussian_data, lambda block: block.mean(axis=0),
            candidate=np.array([0.4, 0.6]), block_size=50, radius=0.05,
            repetitions=60, rng=0,
        )
        assert estimate.probability >= 0.9

    def test_radius_for_probability(self, gaussian_data):
        estimate = empirical_stability(
            gaussian_data, lambda block: block.mean(axis=0),
            candidate=np.array([0.4, 0.6]), block_size=50, radius=0.05,
            repetitions=60, rng=1,
        )
        assert estimate.radius_for_probability(0.5) <= estimate.radius_for_probability(0.95)

    def test_invalid_radius(self, gaussian_data):
        with pytest.raises(ValueError):
            empirical_stability(gaussian_data, lambda block: block.mean(axis=0),
                                candidate=np.zeros(2), block_size=10,
                                radius=-1.0)
