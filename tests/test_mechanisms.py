"""Tests for the primitive DP mechanisms (Laplace, Gaussian, exponential)."""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.mechanisms.exponential import (
    exponential_mechanism,
    exponential_mechanism_utility_bound,
    report_noisy_max,
)
from repro.mechanisms.gaussian import gaussian_mechanism, gaussian_sigma, gaussian_tail_bound
from repro.mechanisms.laplace import (
    laplace_counting_query,
    laplace_interval_width,
    laplace_mechanism,
    laplace_noise,
)


class TestLaplace:
    def test_scalar_shape(self):
        value = laplace_mechanism(10.0, 1.0, PrivacyParams(1.0), rng=0)
        assert isinstance(value, float)

    def test_vector_shape(self):
        values = laplace_mechanism(np.zeros(5), 1.0, PrivacyParams(1.0), rng=0)
        assert values.shape == (5,)

    def test_noise_scale_statistics(self):
        noise = laplace_noise(2.0, size=20000, rng=0)
        # Laplace(scale) has standard deviation scale * sqrt(2).
        assert np.std(noise) == pytest.approx(2.0 * np.sqrt(2.0), rel=0.1)

    def test_higher_epsilon_means_less_noise(self):
        tight = [laplace_counting_query(100, PrivacyParams(10.0), rng=i)
                 for i in range(200)]
        loose = [laplace_counting_query(100, PrivacyParams(0.1), rng=i)
                 for i in range(200)]
        assert np.std(tight) < np.std(loose)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, 0.0, PrivacyParams(1.0))

    def test_interval_width_monotone_in_beta(self):
        assert laplace_interval_width(1.0, 0.01) > laplace_interval_width(1.0, 0.1)


class TestGaussian:
    def test_sigma_formula(self):
        params = PrivacyParams(1.0, 1e-5)
        sigma = gaussian_sigma(2.0, params)
        assert sigma == pytest.approx(2.0 * np.sqrt(2 * np.log(1.25e5)), rel=1e-9)

    def test_requires_positive_delta(self):
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, PrivacyParams(1.0, 0.0))

    def test_vector_release(self):
        values = gaussian_mechanism(np.ones(8), 1.0, PrivacyParams(1.0, 1e-6), rng=0)
        assert values.shape == (8,)

    def test_noise_statistics(self):
        params = PrivacyParams(1.0, 1e-6)
        sigma = gaussian_sigma(1.0, params)
        noise = gaussian_mechanism(np.zeros(20000), 1.0, params, rng=0)
        assert np.std(noise) == pytest.approx(sigma, rel=0.05)

    def test_tail_bound_positive(self):
        assert gaussian_tail_bound(1.0, 0.05) > 0


class TestExponentialMechanism:
    def test_prefers_high_quality(self):
        qualities = [0.0, 0.0, 50.0, 0.0]
        picks = [exponential_mechanism(qualities, PrivacyParams(2.0), rng=i)
                 for i in range(100)]
        assert np.mean([pick == 2 for pick in picks]) > 0.9

    def test_uniform_when_epsilon_tiny(self):
        qualities = [0.0, 1.0]
        picks = [exponential_mechanism(qualities, PrivacyParams(1e-6), rng=i)
                 for i in range(400)]
        fraction = np.mean([pick == 1 for pick in picks])
        assert 0.35 < fraction < 0.65

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            exponential_mechanism([], PrivacyParams(1.0))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            exponential_mechanism([1.0, np.inf], PrivacyParams(1.0))

    def test_noisy_max_prefers_high_quality(self):
        qualities = [0.0, 100.0, 0.0]
        picks = [report_noisy_max(qualities, PrivacyParams(2.0), rng=i)
                 for i in range(100)]
        assert np.mean([pick == 1 for pick in picks]) > 0.95

    def test_utility_bound_positive_and_monotone(self):
        small = exponential_mechanism_utility_bound(10, PrivacyParams(1.0), 1.0, 0.1)
        large = exponential_mechanism_utility_bound(10_000, PrivacyParams(1.0), 1.0, 0.1)
        assert 0 < small < large

    def test_handles_huge_score_range(self):
        qualities = [0.0, 1e9]
        pick = exponential_mechanism(qualities, PrivacyParams(1.0), rng=0)
        assert pick == 1
