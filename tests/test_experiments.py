"""Smoke tests for the experiment harness (small parameterisations).

Every ``run_*`` experiment is executed at a reduced scale so the full
benchmark harness is known to be runnable before the (longer)
pytest-benchmark targets are invoked.
"""

import numpy as np
import pytest

from repro.experiments.delta_vs_epsilon import run_delta_vs_epsilon
from repro.experiments.dimension_scaling import run_dimension_scaling
from repro.experiments.figures import run_figure_configs
from repro.experiments.good_center import run_good_center
from repro.experiments.good_radius import run_good_radius
from repro.experiments.harness import (
    EvaluationRecord,
    evaluate_result,
    format_table,
    summarise,
)
from repro.experiments.k_clustering import run_k_clustering
from repro.experiments.lower_bound import run_lower_bound
from repro.experiments.outliers import run_outliers
from repro.experiments.radius_scaling import run_radius_scaling
from repro.experiments.sample_aggregate import run_sample_aggregate
from repro.experiments.table1 import run_table1
from repro.accounting.params import PrivacyParams
from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.core.one_cluster import one_cluster
from repro.datasets.synthetic import planted_cluster


class TestHarness:
    def test_evaluate_result_against_reference(self):
        data = planted_cluster(n=600, d=2, cluster_size=250, cluster_radius=0.05,
                               center=[0.5, 0.5], rng=0)
        result = one_cluster(data.points, 200, PrivacyParams(8.0, 1e-5), rng=1)
        record = evaluate_result("this_work", data.points, 200, result, 0.1)
        assert isinstance(record, EvaluationRecord)
        assert record.reference_radius > 0
        if record.found:
            assert record.radius_ratio >= 0.0

    def test_evaluate_unfound_result(self):
        data = planted_cluster(n=300, d=2, cluster_size=120, cluster_radius=0.05,
                               rng=1)
        reference = nonprivate_one_cluster(data.points, 100)
        from repro.core.types import GoodCenterResult, GoodRadiusResult, OneClusterResult

        failed = OneClusterResult(
            ball=None,
            radius_result=GoodRadiusResult(radius=0.1, gamma=1.0),
            center_result=GoodCenterResult(center=None, radius_bound=float("inf"),
                                           attempts=1, projected_dimension=2),
            target=100,
        )
        record = evaluate_result("failed", data.points, 100, failed, 0.0,
                                 reference=reference)
        assert not record.found
        assert record.radius_ratio == float("inf")

    def test_summarise(self):
        records = [
            EvaluationRecord("m", True, 5.0, 1.5, 0.1, 0.05, 0.01, 0.2),
            EvaluationRecord("m", False, 100.0, float("inf"), float("inf"),
                             0.05, float("nan"), 0.2),
        ]
        summary = summarise(records)
        assert summary["success_rate"] == pytest.approx(0.5)
        assert summary["mean_additive_loss"] == pytest.approx(5.0)

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"


class TestExperimentSmoke:
    def test_table1(self):
        rows = run_table1(n=400, dimension=2, epsilon=4.0, grid_side=9, rng=0)
        methods = {row["method"] for row in rows}
        assert "this_work" in methods
        assert "nonprivate" in methods
        assert "private_aggregation" in methods
        assert "exponential_mechanism" in methods

    def test_table1_includes_threshold_release_in_1d(self):
        rows = run_table1(n=400, dimension=1, epsilon=4.0, grid_side=17, rng=1)
        assert "threshold_release" in {row["method"] for row in rows}

    def test_radius_scaling(self):
        rows = run_radius_scaling(sizes=(300, 600), dimension=2, epsilon=4.0, rng=2)
        assert len(rows) == 2
        assert rows[0]["n"] == 300
        assert rows[1]["theory_w"] > rows[0]["theory_w"]

    def test_delta_vs_epsilon(self):
        rows = run_delta_vs_epsilon(epsilons=(2.0, 8.0), n=400, dimension=2, rng=3)
        assert len(rows) == 4
        assert {row["radius_method"] for row in rows} == {"recconcave", "binary_search"}

    def test_dimension_scaling(self):
        rows = run_dimension_scaling(dimensions=(2, 4), n=400, epsilon=4.0, rng=4)
        assert len(rows) == 4
        assert {row["method"] for row in rows} == {"this_work", "private_aggregation"}

    def test_k_clustering(self):
        rows = run_k_clustering(k_values=(2,), n=600, epsilon=8.0, rng=5)
        assert rows[0]["balls_found"] >= 0
        assert 0.0 <= rows[0]["covered_fraction"] <= 1.0

    def test_sample_aggregate(self):
        rows = run_sample_aggregate(secondary_weights=(0.0,), n=1800,
                                    block_size=60, epsilon=4.0, rng=6)
        assert len(rows) == 2
        assert {row["method"] for row in rows} == {
            "one_cluster_aggregator", "noisy_average_aggregator"}

    def test_lower_bound(self):
        rows = run_lower_bound(domain_sizes=(2 ** 10,), m=200, epsilon=8.0,
                               repetitions=2, rng=7)
        assert rows[0]["success_rate"] >= 0.0
        assert rows[0]["theory_min_samples"] > 0

    def test_outliers(self):
        rows = run_outliers(contamination_levels=(0.1,), n=600, epsilon=8.0, rng=8)
        assert len(rows) == 1

    def test_good_radius_experiment(self):
        rows = run_good_radius(cluster_radii=(0.05,), n=500, dimension=2,
                               epsilon=4.0, rng=9)
        assert rows[0]["released_radius"] >= 0.0

    def test_good_center_experiment(self):
        rows = run_good_center(cluster_sizes=(300,), dimension=2, epsilon=8.0,
                               rng=10)
        assert len(rows) == 1

    def test_figure_configs(self):
        rows = run_figure_configs(epsilon=4.0, rng=11)
        figures = {row["figure"] for row in rows}
        assert figures == {"F1", "F2"}
        f2 = next(row for row in rows if row["figure"] == "F2")
        assert f2["extended_interval_capture"] >= f2["heavy_interval_capture"]
        assert f2["extended_interval_capture"] == f2["cluster_size"]
