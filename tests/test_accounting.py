"""Tests for repro.accounting: parameters, composition, ledger."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.accounting.composition import (
    advanced_composition,
    advanced_composition_epsilon,
    basic_composition,
    per_step_epsilon_for_advanced,
    split_evenly,
    subsample_amplification,
)
from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams


class TestPrivacyParams:
    def test_valid_construction(self):
        params = PrivacyParams(1.0, 1e-6)
        assert params.epsilon == 1.0
        assert params.delta == 1e-6
        assert not params.is_pure

    def test_pure_dp(self):
        assert PrivacyParams(0.5).is_pure

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PrivacyParams(0.0)
        with pytest.raises(ValueError):
            PrivacyParams(-1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            PrivacyParams(1.0, 1.0)
        with pytest.raises(ValueError):
            PrivacyParams(1.0, -0.1)

    def test_split_conserves_budget(self):
        parts = PrivacyParams(1.0, 1e-6).split(0.25, 0.75)
        assert sum(part.epsilon for part in parts) == pytest.approx(1.0)
        assert sum(part.delta for part in parts) == pytest.approx(1e-6)

    def test_split_rejects_excess(self):
        with pytest.raises(ValueError):
            PrivacyParams(1.0).split(0.6, 0.6)

    def test_split_rejects_nonpositive_fraction(self):
        with pytest.raises(ValueError):
            PrivacyParams(1.0).split(0.5, 0.0)

    def test_part(self):
        part = PrivacyParams(2.0, 1e-6).part(0.25)
        assert part.epsilon == pytest.approx(0.5)
        assert part.delta == pytest.approx(2.5e-7)

    def test_frozen(self):
        params = PrivacyParams(1.0)
        with pytest.raises(Exception):
            params.epsilon = 2.0

    @given(st.floats(min_value=1e-3, max_value=10),
           st.integers(min_value=1, max_value=10))
    def test_split_evenly_sums_back(self, epsilon, k):
        parts = split_evenly(PrivacyParams(epsilon, 1e-7), k)
        total = basic_composition(parts)
        assert total.epsilon == pytest.approx(epsilon)


class TestComposition:
    def test_basic_composition_adds(self):
        total = basic_composition([PrivacyParams(0.5, 1e-7)] * 4)
        assert total.epsilon == pytest.approx(2.0)
        assert total.delta == pytest.approx(4e-7)

    def test_basic_composition_empty(self):
        with pytest.raises(ValueError):
            basic_composition([])

    def test_advanced_beats_basic_for_many_small_steps(self):
        step = PrivacyParams(0.01, 0.0)
        k = 1000
        advanced = advanced_composition(step, k, delta_prime=1e-6)
        assert advanced.epsilon < k * step.epsilon

    def test_advanced_epsilon_formula(self):
        epsilon = advanced_composition_epsilon(0.1, 10, 1e-6)
        expected = 2 * 10 * 0.01 + 0.1 * math.sqrt(2 * 10 * math.log(1e6))
        assert epsilon == pytest.approx(expected)

    def test_per_step_inversion(self):
        total = 0.5
        per_step = per_step_epsilon_for_advanced(total, 20, 1e-6)
        recomposed = advanced_composition_epsilon(per_step, 20, 1e-6)
        assert recomposed == pytest.approx(total, rel=1e-9)

    @given(st.floats(min_value=0.01, max_value=2.0),
           st.integers(min_value=1, max_value=200))
    def test_per_step_inversion_property(self, total, k):
        per_step = per_step_epsilon_for_advanced(total, k, 1e-6)
        recomposed = advanced_composition_epsilon(per_step, k, 1e-6)
        assert recomposed <= total * (1 + 1e-9)

    def test_subsample_amplification_shrinks(self):
        base = PrivacyParams(1.0, 1e-6)
        amplified = subsample_amplification(base, sample_size=100,
                                            population_size=1000)
        assert amplified.epsilon < base.epsilon

    def test_subsample_amplification_requires_small_sample(self):
        with pytest.raises(ValueError):
            subsample_amplification(PrivacyParams(1.0, 1e-6), 600, 1000)

    def test_subsample_amplification_requires_small_epsilon(self):
        with pytest.raises(ValueError):
            subsample_amplification(PrivacyParams(2.0, 1e-6), 100, 1000)


class TestLedger:
    def test_records_and_totals(self):
        ledger = PrivacyLedger()
        ledger.record("laplace", PrivacyParams(0.5, 0.0))
        ledger.record("gaussian", PrivacyParams(0.5, 1e-7))
        total = ledger.total_basic()
        assert total.epsilon == pytest.approx(1.0)
        assert total.delta == pytest.approx(1e-7)
        assert ledger.mechanisms() == ["laplace", "gaussian"]
        assert len(ledger) == 2

    def test_empty_ledger(self):
        ledger = PrivacyLedger()
        assert ledger.total_basic() is None
        assert ledger.total_advanced(1e-6) is None

    def test_clear(self):
        ledger = PrivacyLedger()
        ledger.record("laplace", PrivacyParams(0.5))
        ledger.clear()
        assert len(ledger) == 0

    def test_advanced_total_reported(self):
        ledger = PrivacyLedger()
        for _ in range(10):
            ledger.record("step", PrivacyParams(0.05, 0.0))
        advanced = ledger.total_advanced(1e-6)
        assert advanced.epsilon > 0
