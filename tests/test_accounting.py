"""Tests for repro.accounting: parameters, composition, ledger."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.accounting.composition import (
    advanced_composition,
    advanced_composition_epsilon,
    basic_composition,
    per_step_epsilon_for_advanced,
    split_evenly,
    subsample_amplification,
)
from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams


class TestPrivacyParams:
    def test_valid_construction(self):
        params = PrivacyParams(1.0, 1e-6)
        assert params.epsilon == 1.0
        assert params.delta == 1e-6
        assert not params.is_pure

    def test_pure_dp(self):
        assert PrivacyParams(0.5).is_pure

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PrivacyParams(0.0)
        with pytest.raises(ValueError):
            PrivacyParams(-1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            PrivacyParams(1.0, 1.0)
        with pytest.raises(ValueError):
            PrivacyParams(1.0, -0.1)

    def test_split_conserves_budget(self):
        parts = PrivacyParams(1.0, 1e-6).split(0.25, 0.75)
        assert sum(part.epsilon for part in parts) == pytest.approx(1.0)
        assert sum(part.delta for part in parts) == pytest.approx(1e-6)

    def test_split_rejects_excess(self):
        with pytest.raises(ValueError):
            PrivacyParams(1.0).split(0.6, 0.6)

    def test_split_rejects_nonpositive_fraction(self):
        with pytest.raises(ValueError):
            PrivacyParams(1.0).split(0.5, 0.0)

    def test_part(self):
        part = PrivacyParams(2.0, 1e-6).part(0.25)
        assert part.epsilon == pytest.approx(0.5)
        assert part.delta == pytest.approx(2.5e-7)

    def test_frozen(self):
        params = PrivacyParams(1.0)
        with pytest.raises(Exception):
            params.epsilon = 2.0

    @given(st.floats(min_value=1e-3, max_value=10),
           st.integers(min_value=1, max_value=10))
    def test_split_evenly_sums_back(self, epsilon, k):
        parts = split_evenly(PrivacyParams(epsilon, 1e-7), k)
        total = basic_composition(parts)
        assert total.epsilon == pytest.approx(epsilon)


class TestComposition:
    def test_basic_composition_adds(self):
        total = basic_composition([PrivacyParams(0.5, 1e-7)] * 4)
        assert total.epsilon == pytest.approx(2.0)
        assert total.delta == pytest.approx(4e-7)

    def test_basic_composition_empty(self):
        with pytest.raises(ValueError):
            basic_composition([])

    def test_advanced_beats_basic_for_many_small_steps(self):
        step = PrivacyParams(0.01, 0.0)
        k = 1000
        advanced = advanced_composition(step, k, delta_prime=1e-6)
        assert advanced.epsilon < k * step.epsilon

    def test_advanced_epsilon_formula(self):
        epsilon = advanced_composition_epsilon(0.1, 10, 1e-6)
        expected = 2 * 10 * 0.01 + 0.1 * math.sqrt(2 * 10 * math.log(1e6))
        assert epsilon == pytest.approx(expected)

    def test_per_step_inversion(self):
        total = 0.5
        per_step = per_step_epsilon_for_advanced(total, 20, 1e-6)
        recomposed = advanced_composition_epsilon(per_step, 20, 1e-6)
        assert recomposed == pytest.approx(total, rel=1e-9)

    @given(st.floats(min_value=0.01, max_value=2.0),
           st.integers(min_value=1, max_value=200))
    def test_per_step_inversion_property(self, total, k):
        per_step = per_step_epsilon_for_advanced(total, k, 1e-6)
        recomposed = advanced_composition_epsilon(per_step, k, 1e-6)
        assert recomposed <= total * (1 + 1e-9)

    def test_subsample_amplification_shrinks(self):
        base = PrivacyParams(1.0, 1e-6)
        amplified = subsample_amplification(base, sample_size=100,
                                            population_size=1000)
        assert amplified.epsilon < base.epsilon

    def test_subsample_amplification_requires_small_sample(self):
        with pytest.raises(ValueError):
            subsample_amplification(PrivacyParams(1.0, 1e-6), 600, 1000)

    def test_subsample_amplification_requires_small_epsilon(self):
        with pytest.raises(ValueError):
            subsample_amplification(PrivacyParams(2.0, 1e-6), 100, 1000)


class TestLedger:
    def test_records_and_totals(self):
        ledger = PrivacyLedger()
        ledger.record("laplace", PrivacyParams(0.5, 0.0))
        ledger.record("gaussian", PrivacyParams(0.5, 1e-7))
        total = ledger.total_basic()
        assert total.epsilon == pytest.approx(1.0)
        assert total.delta == pytest.approx(1e-7)
        assert ledger.mechanisms() == ["laplace", "gaussian"]
        assert len(ledger) == 2

    def test_empty_ledger(self):
        ledger = PrivacyLedger()
        assert ledger.total_basic() is None
        assert ledger.total_advanced(1e-6) is None

    def test_clear(self):
        ledger = PrivacyLedger()
        ledger.record("laplace", PrivacyParams(0.5))
        ledger.clear()
        assert len(ledger) == 0

    def test_advanced_total_reported(self):
        ledger = PrivacyLedger()
        for _ in range(10):
            ledger.record("step", PrivacyParams(0.05, 0.0))
        advanced = ledger.total_advanced(1e-6)
        assert advanced.epsilon > 0


class TestLedgerThreadSafety:
    def test_concurrent_records_all_land(self):
        # The ledger is shared by every thread of a long-lived service
        # process: concurrent record() calls must neither drop entries nor
        # corrupt the list.
        import threading

        ledger = PrivacyLedger()
        threads_n, per_thread = 8, 250

        def hammer(tid):
            for i in range(per_thread):
                ledger.record(f"t{tid}", PrivacyParams(0.001, 1e-12))

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ledger) == threads_n * per_thread
        total = ledger.total_basic()
        assert total.epsilon == pytest.approx(threads_n * per_thread * 0.001)

    def test_entries_is_a_snapshot(self):
        # Iterating `entries` while another thread records must not blow up
        # (snapshot semantics), and mutating the snapshot must not touch the
        # ledger.
        ledger = PrivacyLedger()
        ledger.record("a", PrivacyParams(0.1))
        snapshot = ledger.entries
        snapshot.append(None)
        assert len(ledger) == 1
        assert ledger.entries[0].mechanism == "a"

    def test_pop_returns_last_entry(self):
        ledger = PrivacyLedger()
        ledger.record("a", PrivacyParams(0.1))
        ledger.record("b", PrivacyParams(0.2))
        entry = ledger.pop()
        assert entry.mechanism == "b"
        assert ledger.mechanisms() == ["a"]
        ledger.pop()
        assert ledger.pop() is None  # empty pop is a no-op


class TestAdvancedCompositionValidation:
    def test_rejects_bad_epsilon(self):
        for epsilon in (-0.1, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="epsilon"):
                advanced_composition_epsilon(epsilon, 10, 1e-6)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k"):
            advanced_composition_epsilon(0.1, 0, 1e-6)

    def test_rejects_bad_delta_prime(self):
        for delta_prime in (0.0, 1.0, -1e-3, float("nan")):
            with pytest.raises(ValueError, match="delta_prime"):
                advanced_composition_epsilon(0.1, 10, delta_prime)

    def test_never_returns_garbage(self):
        # The enforcing ledger admits by this bound; it must be a finite
        # non-negative number for every valid input.
        value = advanced_composition_epsilon(0.0, 5, 1e-6)
        assert value == 0.0
        value = advanced_composition_epsilon(0.3, 7, 1e-9)
        assert math.isfinite(value) and value > 0


class TestBudgetedLedger:
    def test_charges_until_exact_cap_then_refuses(self):
        from repro.accounting import BudgetedLedger, BudgetExhaustedError

        budget = BudgetedLedger(PrivacyParams(1.0, 1e-6), tenant="alice")
        step = PrivacyParams(0.25, 1e-8)
        for _ in range(4):
            budget.charge("laplace", step)
        # 4 * 0.25 fills the cap exactly (within one ulp of slack) ...
        assert budget.spent().epsilon == pytest.approx(1.0)
        # ... so the fifth charge is refused, atomically: nothing recorded.
        with pytest.raises(BudgetExhaustedError) as excinfo:
            budget.charge("laplace", step)
        assert excinfo.value.tenant == "alice"
        assert excinfo.value.requested.epsilon == 0.25
        assert len(budget) == 4
        assert budget.stats()["refused"] == 1

    def test_delta_cap_enforced_independently(self):
        from repro.accounting import BudgetedLedger, BudgetExhaustedError

        budget = BudgetedLedger(PrivacyParams(10.0, 1e-6))
        budget.charge("gaussian", PrivacyParams(0.1, 9e-7))
        with pytest.raises(BudgetExhaustedError):
            budget.charge("gaussian", PrivacyParams(0.1, 2e-7))

    def test_oversized_first_charge_refused(self):
        from repro.accounting import BudgetedLedger, BudgetExhaustedError

        budget = BudgetedLedger(PrivacyParams(1.0, 1e-6))
        with pytest.raises(BudgetExhaustedError) as excinfo:
            budget.charge("laplace", PrivacyParams(1.5, 0.0))
        assert excinfo.value.spent is None

    def test_rollback_refunds_last_charge(self):
        from repro.accounting import BudgetedLedger

        budget = BudgetedLedger(PrivacyParams(1.0, 1e-6))
        budget.charge("laplace", PrivacyParams(0.5, 0.0))
        budget.charge("laplace", PrivacyParams(0.5, 0.0))
        budget.rollback()
        assert budget.spent().epsilon == pytest.approx(0.5)
        assert budget.can_charge(PrivacyParams(0.5, 0.0))

    def test_rollback_by_receipt_targets_own_charge(self):
        # The concurrent-submit scenario: T1 charges e1, T2 charges e2
        # (larger), then T1 rolls back.  A latest-entry pop would refund
        # T2's larger spend and under-record a query that actually runs;
        # the receipt form must refund exactly e1.
        from repro.accounting import BudgetedLedger

        budget = BudgetedLedger(PrivacyParams(1.0, 1e-6))
        receipt_small = budget.charge("laplace", PrivacyParams(0.1, 0.0))
        budget.charge("laplace", PrivacyParams(0.4, 0.0))
        budget.rollback(receipt_small)
        assert budget.spent().epsilon == pytest.approx(0.4)
        assert budget.ledger.mechanisms() == ["laplace"]
        assert budget.ledger.entries[0].params.epsilon == 0.4
        # Refunding the same receipt twice is a no-op, not a second refund.
        budget.rollback(receipt_small)
        assert budget.spent().epsilon == pytest.approx(0.4)

    def test_receipt_removal_is_by_identity_not_equality(self):
        # Two equal-valued charges are distinct spends: rolling one back
        # must leave the other recorded.
        from repro.accounting import BudgetedLedger

        budget = BudgetedLedger(PrivacyParams(1.0, 1e-6))
        first = budget.charge("m", PrivacyParams(0.2, 0.0))
        second = budget.charge("m", PrivacyParams(0.2, 0.0))
        assert first == second and first is not second
        budget.rollback(first)
        assert len(budget) == 1
        assert budget.ledger.entries[0] is second

    def test_advanced_admits_more_small_queries(self):
        from repro.accounting import BudgetedLedger, BudgetExhaustedError

        basic = BudgetedLedger(PrivacyParams(1.0, 1e-4))
        advanced = BudgetedLedger(PrivacyParams(1.0, 1e-4),
                                  composition="advanced", delta_prime=1e-6)
        step = PrivacyParams(0.01, 1e-9)

        def admitted(budget):
            count = 0
            try:
                for _ in range(1000):
                    budget.charge("m", step)
                    count += 1
            except BudgetExhaustedError:
                pass
            return count

        basic_count, advanced_count = admitted(basic), admitted(advanced)
        assert basic_count == 100
        assert advanced_count > basic_count
        # The admitted bound itself stays within the cap.
        assert advanced.spent().epsilon <= 1.0 * (1 + 1e-9)
        assert advanced.spent().delta <= 1e-4

    def test_advanced_admits_when_only_basic_bound_fits(self):
        # Past ~28 of these steps the advanced bound has the smaller
        # epsilon, but its delta (sum + delta_prime) overruns the delta cap
        # before the basic sums do.  Admission must try EITHER bound — a
        # min-epsilon pre-selection would refuse charges the basic rule
        # plainly admits (200 * 5e-7 == the delta cap exactly, 200 * 0.01
        # well under the epsilon cap).
        from repro.accounting import BudgetedLedger, BudgetExhaustedError

        budget = BudgetedLedger(PrivacyParams(2.5, 1e-4),
                                composition="advanced", delta_prime=1e-6)
        step = PrivacyParams(0.01, 5e-7)
        admitted = 0
        try:
            for _ in range(300):
                budget.charge("m", step)
                admitted += 1
        except BudgetExhaustedError:
            pass
        assert admitted == 200
        # The reported spend is a bound that actually fits the cap.
        assert budget.spent().epsilon <= 2.5 * (1 + 1e-9)
        assert budget.spent().delta <= 1e-4 * (1 + 1e-9)

    def test_constructor_validation(self):
        from repro.accounting import BudgetedLedger

        with pytest.raises(TypeError, match="PrivacyParams"):
            BudgetedLedger((1.0, 1e-6))
        with pytest.raises(ValueError, match="composition"):
            BudgetedLedger(PrivacyParams(1.0, 1e-6), composition="renyi")
        with pytest.raises(ValueError, match="delta_prime"):
            BudgetedLedger(PrivacyParams(1.0, 1e-6), composition="advanced")
        with pytest.raises(ValueError, match="delta_prime"):
            BudgetedLedger(PrivacyParams(1.0, 1e-6), composition="advanced",
                           delta_prime=2e-6 * 1e3)  # above the delta cap
        with pytest.raises(ValueError, match="delta_prime"):
            BudgetedLedger(PrivacyParams(1.0, 1e-6), delta_prime=1e-7)

    def test_concurrent_charges_respect_cap(self):
        import threading

        from repro.accounting import BudgetedLedger, BudgetExhaustedError

        budget = BudgetedLedger(PrivacyParams(1.0, 1e-5))
        step = PrivacyParams(0.05, 1e-9)
        admitted = []

        def hammer():
            for _ in range(10):
                try:
                    budget.charge("m", step)
                    admitted.append(1)
                except BudgetExhaustedError:
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # check-then-record is atomic: exactly cap/step charges landed.
        assert len(admitted) == 20
        assert budget.spent().epsilon == pytest.approx(1.0)
