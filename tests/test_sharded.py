"""Tests for the sharded multi-process backend and the streaming profile.

The contract: :class:`~repro.neighbors.ShardedBackend` is *bitwise*
interchangeable with the single-process backends — identical integer counts,
identical ``L(r, S)`` scores — for every shard count, with and without worker
processes; and the radii-chunked streaming large-target walk matches the
persisted-statistic path exactly while never allocating the ``O(n * t)``
truncated statistic.
"""

import tracemalloc

import numpy as np
import pytest

import repro.neighbors as neighbors
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.good_center import good_center
from repro.core.good_radius import good_radius
from repro.geometry.boxes import ShiftedBoxPartition
from repro.neighbors import (
    BACKENDS,
    DenseBackend,
    ShardedBackend,
    auto_backend,
    resolve_backend,
)

DATASETS = {
    "random-2d": np.random.default_rng(0).uniform(size=(140, 2)),
    "random-1d": np.random.default_rng(1).normal(size=(110, 1)),
    "random-highd": np.random.default_rng(2).uniform(size=(70, 24)),
    "duplicates": np.vstack([
        np.zeros((9, 3)),
        np.ones((5, 3)),
        np.random.default_rng(3).uniform(size=(40, 3)),
        np.zeros((3, 3)),
    ]),
    "identical": np.full((30, 2), 0.25),
    # Integer coordinates: distances like 5.0 (3-4-5 triangles) are exactly
    # representable, so boundary radii are exercised without float ambiguity.
    "integer-grid": np.array(
        [[x, y] for x in range(-3, 4) for y in range(-3, 4)], dtype=float
    ),
}

SHARD_COUNTS = (1, 2, 7)


def radii_for(points):
    """Probe radii: negatives, zero, boundary hits, spans, random probes."""
    from repro.geometry.balls import pairwise_distances

    distances = pairwise_distances(points)
    span = float(distances.max())
    probe = np.random.default_rng(9).uniform(0.0, span * 1.1, size=10)
    exact = distances[distances > 0]
    hits = [float(np.median(exact))] if exact.size else []
    return np.concatenate([[-1.0, -1e-9, 0.0, span, span + 1.0], probe, hits])


class TestShardedParity:
    """Serial-mode (num_workers=0) parity across shard counts and datasets."""

    @pytest.mark.parametrize("name", sorted(DATASETS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_counts_identical(self, name, shards):
        points = DATASETS[name]
        dense = DenseBackend(points)
        backend = ShardedBackend(points, num_shards=shards, num_workers=0)
        assert backend.num_shards == min(shards, points.shape[0])
        for radius in radii_for(points):
            counts = backend.radius_counts(float(radius))
            assert counts.dtype == np.int64
            assert np.array_equal(counts, dense.radius_counts(float(radius)))

    @pytest.mark.parametrize("name", ["random-2d", "duplicates", "integer-grid"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_query_counts_arbitrary_centers(self, name, shards):
        points = DATASETS[name]
        dense = DenseBackend(points)
        backend = ShardedBackend(points, num_shards=shards, num_workers=0)
        centers = np.random.default_rng(7).uniform(
            points.min() - 0.5, points.max() + 0.5, size=(19, points.shape[1])
        )
        for radius in (0.0, 0.3, 2.0, 5.0):
            assert np.array_equal(
                backend.query_radius_counts(centers, radius),
                dense.query_radius_counts(centers, radius),
            )

    @pytest.mark.parametrize("name", sorted(DATASETS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_score_profiles_identical(self, name, shards):
        points = DATASETS[name]
        n = points.shape[0]
        radii = radii_for(points)
        dense = DenseBackend(points)
        backend = ShardedBackend(points, num_shards=shards, num_workers=0)
        for target in sorted({1, 3, n // 2, int(0.9 * n), n}):
            target = max(1, target)
            assert np.array_equal(
                backend.capped_average_scores(radii, target),
                dense.capped_average_scores(radii, target),
            ), (name, shards, target)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_kth_distances_identical(self, shards):
        points = DATASETS["duplicates"]
        dense = DenseBackend(points)
        backend = ShardedBackend(points, num_shards=shards, num_workers=0)
        for k in (1, 2, points.shape[0] // 2, points.shape[0]):
            assert np.array_equal(backend.kth_distances(k),
                                  dense.kth_distances(k))

    @pytest.mark.parametrize("inner", ["dense", "chunked", "tree"])
    def test_inner_backend_choice_is_invisible(self, inner):
        points = DATASETS["random-2d"]
        dense = DenseBackend(points)
        backend = ShardedBackend(points, num_shards=3, num_workers=0,
                                 inner_backend=inner)
        for radius in (0.0, 0.4, 1.2):
            assert np.array_equal(backend.radius_counts(radius),
                                  dense.radius_counts(radius))
        assert np.array_equal(backend.capped_average_scores([0.2, 0.7], 30),
                              dense.capped_average_scores([0.2, 0.7], 30))


class TestBatchedCounts:
    """count_within_many == stacked per-radius queries, for every backend."""

    @pytest.mark.parametrize("name", ["random-2d", "duplicates", "integer-grid"])
    def test_matches_per_radius_queries(self, name):
        points = DATASETS[name]
        radii = radii_for(points)
        centers = np.random.default_rng(21).uniform(
            points.min(), points.max(), size=(13, points.shape[1])
        )
        reference = np.stack([
            DenseBackend(points).query_radius_counts(centers, float(r))
            for r in radii
        ])
        for factory_name, factory in BACKENDS.items():
            backend = (factory(points, num_workers=0)
                       if factory_name == "sharded" else factory(points))
            batched = backend.count_within_many(centers, radii)
            assert batched.shape == (radii.shape[0], centers.shape[0])
            assert np.array_equal(batched, reference), factory_name

    def test_dataset_centers_identity(self):
        points = DATASETS["random-2d"]
        backend = ShardedBackend(points, num_shards=2, num_workers=0)
        batched = backend.count_within_many(backend.points, [0.0, 0.3])
        assert np.array_equal(batched[0], backend.radius_counts(0.0))
        assert np.array_equal(batched[1], backend.radius_counts(0.3))


@pytest.mark.slow
class TestProcessPool:
    """The multi-process path must agree with serial — same merge code, plus
    shared-memory transport.  Marked slow (real worker pools): runs in the
    dedicated ``-m slow`` CI job, not the tier-1 loop."""

    def test_pool_parity_and_lifecycle(self):
        points = DATASETS["random-2d"]
        dense = DenseBackend(points)
        radii = radii_for(points)
        with ShardedBackend(points, num_shards=3, num_workers=2) as backend:
            assert np.array_equal(backend.radius_counts(0.3),
                                  dense.radius_counts(0.3))
            assert np.array_equal(
                backend.capped_average_scores(radii, 40),
                dense.capped_average_scores(radii, 40),
            )
            assert np.array_equal(
                backend.capped_average_scores(radii, 120, streaming=True),
                dense.capped_average_scores(radii, 120),
            )
            assert np.array_equal(
                backend.count_within_many(points[:9], radii),
                dense.count_within_many(points[:9], radii),
            )
        # close() is idempotent and the context manager already closed it.
        backend.close()

    def test_heaviest_cells_pool(self):
        points = DATASETS["integer-grid"]
        partitions = [
            ShiftedBoxPartition(dimension=2, width=1.7, rng=i) for i in range(5)
        ]
        shifts = np.stack([p.shifts for p in partitions])
        expected = np.array([p.heaviest_cell_count(points) for p in partitions])
        with ShardedBackend(points, num_shards=4, num_workers=2) as backend:
            assert np.array_equal(
                backend.heaviest_cell_counts(1.7, shifts), expected
            )

    def test_projected_view_pool(self):
        """Non-identity views over a real pool: the matrix ships to the
        workers, the projection is applied shard-side, and every grid hash
        matches the in-parent reference bitwise."""
        from repro.geometry.boxes import box_labels, interval_labels
        from repro.geometry.jl import project_rows

        rng = np.random.default_rng(5)
        points = rng.normal(size=(200, 6))
        matrix = rng.normal(size=(3, 6))
        image = project_rows(points, matrix)
        width = 0.8
        shifts = rng.uniform(0.0, width, size=(5, 3))
        reference_labels = box_labels(image, shifts[0], width)
        expected_counts = np.array([
            np.unique(box_labels(image, shift, width), axis=0,
                      return_counts=True)[1].max()
            for shift in shifts
        ])
        unique, first, counts = np.unique(reference_labels, axis=0,
                                          return_index=True,
                                          return_counts=True)
        order = np.argsort(first, kind="stable")
        chosen = unique[order][0]
        expected_mask = np.all(reference_labels == chosen[None, :], axis=1)
        rows = np.flatnonzero(expected_mask)
        basis = rng.normal(size=(6, 6))
        expected_axis = interval_labels(project_rows(points[rows], basis), 0.4)
        with ShardedBackend(points, num_shards=3, num_workers=2) as backend:
            view = backend.view(matrix)
            assert np.array_equal(
                view.heaviest_cell_counts(width, shifts), expected_counts
            )
            hist_labels, hist_counts, positions = view.cell_histogram(
                width, shifts[0], return_inverse=True
            )
            assert np.array_equal(hist_labels, unique[order])
            assert np.array_equal(hist_counts, counts[order])
            assert np.array_equal(positions == 0, expected_mask)
            assert np.array_equal(
                view.label_mask(width, shifts[0], chosen), expected_mask
            )
            assert np.array_equal(
                backend.view(basis).axis_interval_labels(0.4, rows=rows),
                expected_axis,
            )

    def test_query_plan_pool(self):
        """A fused plan over a real pool: the whole bundle is one
        ``execute_plan`` task per shard, overlapped submissions resolve to
        bitwise the in-parent references, and ``pool_stats`` shows each
        shard's lazily built state pinned to exactly one worker (the
        shard→worker routing affinity)."""
        from repro.geometry.boxes import box_labels
        from repro.geometry.jl import project_rows
        from repro.neighbors import QueryPlan

        rng = np.random.default_rng(8)
        points = rng.normal(size=(240, 6))
        matrix = rng.normal(size=(3, 6))
        basis = rng.normal(size=(6, 6))
        width = 0.9
        shifts = rng.uniform(0.0, width, size=3)
        labels = box_labels(project_rows(points, matrix), shifts, width)
        unique, counts = np.unique(labels, axis=0, return_counts=True)
        chosen = unique[int(np.argmax(counts))]
        rows = np.flatnonzero(np.all(labels == chosen[None, :], axis=1))
        dense = DenseBackend(points)
        dense_frame = dense.view(basis)
        expected_sum = dense_frame.masked_sum(rows)
        expected_hists = dense_frame.masked_axis_histograms(rows, 0.4)
        expected_grid = dense.count_within_many(points[:6], [0.3, 1.2])
        with ShardedBackend(points, num_shards=4, num_workers=2) as backend:
            search = backend.view(matrix)
            frame = backend.view(basis)
            selection = search.box_selection(width, shifts, chosen)

            def build():
                plan = QueryPlan()
                slots = (
                    plan.masked_count(frame, selection),
                    plan.masked_sum(frame, selection),
                    plan.masked_axis_histograms(frame, selection, 0.4),
                    plan.count_within_many(points[:6], [0.3, 1.2]),
                )
                return plan, slots

            plan, slots = build()
            before = backend.pool_stats()
            # Two plans in flight at once, resolved in reverse order.
            first = backend.submit(plan)
            second = backend.submit(plan)
            for future in (second, first):
                results = future.result()
                count, total, hists, grid = (results[s] for s in slots)
                assert count == rows.shape[0]
                assert np.array_equal(total, expected_sum)
                for (gl, gc), (el, ec) in zip(hists, expected_hists):
                    assert np.array_equal(gl, el)
                    assert np.array_equal(gc, ec)
                assert np.array_equal(grid, expected_grid)
            after = backend.pool_stats()
            assert after["parallel"] is True
            assert after["plans"] - before["plans"] == 2
            assert after["fanouts"] - before["fanouts"] == 2
            assert after["shard_tasks"] - before["shard_tasks"] == 8
            # Affinity: every shard's index/caches live in exactly one
            # worker, and with 2 workers the round-robin split is 0,2 / 1,3.
            built = [worker["built_shards"] for worker in after["workers"]]
            flattened = sorted(shard for shards in built for shard in shards)
            assert flattened == sorted(set(flattened))
            selections = [worker["cached_selections"]
                          for worker in after["workers"]]
            assert sorted(s for group in selections for s in group) == [
                0, 1, 2, 3
            ]

    def test_masked_aggregates_pool(self):
        """Masked aggregate queries over a real pool: the BoxSelection label
        predicate ships to the workers, each shard re-derives its own
        membership and returns exact fixed-point partials, and the merged
        statistics match the in-parent dense reference bitwise."""
        from repro.geometry.balls import ball_membership
        from repro.geometry.boxes import box_labels
        from repro.geometry.jl import project_rows

        rng = np.random.default_rng(6)
        points = rng.normal(size=(200, 6))
        matrix = rng.normal(size=(3, 6))
        basis = rng.normal(size=(6, 6))
        width = 0.9
        shifts = rng.uniform(0.0, width, size=3)
        labels = box_labels(project_rows(points, matrix), shifts, width)
        unique, counts = np.unique(labels, axis=0, return_counts=True)
        chosen = unique[int(np.argmax(counts))]
        rows = np.flatnonzero(np.all(labels == chosen[None, :], axis=1))
        rotated = project_rows(points, basis)
        center = rotated[rows].mean(axis=0)
        radius = 1.5

        dense_view = DenseBackend(points).view(basis)
        reference_sum = dense_view.masked_sum(rows)
        inside = ball_membership(rotated[rows], center, radius)
        with ShardedBackend(points, num_shards=3, num_workers=2) as backend:
            selection = backend.view(matrix).box_selection(width, shifts,
                                                           chosen)
            view = backend.view(basis)
            assert view.masked_count(selection) == rows.shape[0]
            assert np.array_equal(view.masked_sum(selection), reference_sum)
            assert np.array_equal(view.masked_minmax(selection),
                                  dense_view.masked_minmax(rows))
            clipped = view.masked_clipped_sum(selection, center, radius)
            assert clipped.count == int(np.count_nonzero(inside))
            dense_clipped = dense_view.masked_clipped_sum(rows, center,
                                                          radius)
            assert np.array_equal(clipped.vector_sum,
                                  dense_clipped.vector_sum)
            hists = view.masked_axis_histograms(selection, 0.4)
            dense_hists = dense_view.masked_axis_histograms(rows, 0.4)
            for (got_l, got_c), (exp_l, exp_c) in zip(hists, dense_hists):
                assert np.array_equal(got_l, exp_l)
                assert np.array_equal(got_c, exp_c)


class TestHeaviestCells:
    @pytest.mark.parametrize("name", ["random-2d", "duplicates", "identical"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_partition_count(self, name, shards):
        points = DATASETS[name]
        backend = ShardedBackend(points, num_shards=shards, num_workers=0)
        for seed in range(4):
            partition = ShiftedBoxPartition(
                dimension=points.shape[1], width=0.9, rng=seed
            )
            assert backend.heaviest_cell_counts(
                0.9, partition.shifts
            )[0] == partition.heaviest_cell_count(points)

    def test_dimension_mismatch_rejected(self):
        backend = ShardedBackend(DATASETS["random-2d"], num_workers=0)
        with pytest.raises(ValueError):
            backend.heaviest_cell_counts(1.0, np.zeros((2, 5)))


class TestStreamingProfile:
    """The radii-chunked large-target walk: exact parity, bounded memory."""

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    def test_large_target_parity(self, backend_name):
        points = DATASETS["random-2d"]
        n = points.shape[0]
        target = int(0.9 * n)
        radii = radii_for(points)
        factory = BACKENDS[backend_name]
        backend = (factory(points, num_shards=3, num_workers=0)
                   if backend_name == "sharded" else factory(points))
        streamed = backend.capped_average_scores(radii, target, streaming=True)
        persisted = backend.capped_average_scores(radii, target,
                                                  streaming=False)
        assert np.array_equal(streamed, persisted)
        assert np.array_equal(
            streamed, DenseBackend(points).capped_average_scores(radii, target)
        )

    def test_streaming_auto_selection(self, monkeypatch):
        import repro.neighbors.base as base

        monkeypatch.setattr(base, "STREAMING_MIN_POINTS", 50)
        points = DATASETS["random-2d"]
        n = points.shape[0]
        chunked = BACKENDS["chunked"](points)
        calls = []
        original = chunked._streaming_profile

        def spy(radii, target):
            calls.append(target)
            return original(radii, target)

        monkeypatch.setattr(chunked, "_streaming_profile", spy)
        chunked.capped_average_scores([0.1, 0.5], int(0.9 * n))
        assert calls, "large target above the thresholds should stream"
        calls.clear()
        chunked.capped_average_scores([0.1, 0.5], max(1, n // 10))
        assert not calls, "small targets should keep the persisted path"
        # Dense opts out of auto-streaming entirely.
        dense = DenseBackend(points)
        assert dense.streaming_auto is False

    @pytest.mark.slow
    def test_streaming_never_persists_the_statistic(self):
        n, target = 20000, 18000
        points = np.random.default_rng(17).uniform(size=(n, 2))
        backend = BACKENDS["chunked"](points)
        tracemalloc.start()
        try:
            scores = backend.capped_average_scores(
                np.array([0.02, 0.1, 0.4]), target, streaming=True
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert scores.shape == (3,)
        assert np.all(np.diff(scores) >= 0)
        persisted_bytes = n * target * 8          # the O(n*t) statistic
        assert peak < persisted_bytes / 5, (
            f"streaming path peaked at {peak / 1e6:.0f} MB"
        )


class TestSelectionAndConfig:
    def test_auto_backend_sharded_regime(self, monkeypatch):
        assert auto_backend(100, 2) == "dense"
        assert auto_backend(50000, 2) == "tree"
        monkeypatch.setattr(neighbors, "_available_cpus", lambda: 8)
        assert auto_backend(200000, 2) == "sharded"
        assert auto_backend(200000, 100) == "sharded"
        monkeypatch.setattr(neighbors, "_available_cpus", lambda: 1)
        assert auto_backend(200000, 2) == "tree"

    def test_resolve_sharded_with_options(self):
        points = DATASETS["random-2d"]
        backend = resolve_backend(points, "sharded",
                                  options={"num_workers": 0, "num_shards": 2})
        assert isinstance(backend, ShardedBackend)
        assert backend.num_shards == 2
        assert not backend.parallel

    def test_resolve_rejects_options_on_instances(self):
        points = DATASETS["random-2d"]
        instance = ShardedBackend(points, num_workers=0)
        with pytest.raises(ValueError):
            resolve_backend(points, instance, options={"num_workers": 2})

    def test_config_accepts_sharded_and_workers(self):
        config = OneClusterConfig(neighbor_backend="sharded",
                                  neighbor_workers=0)
        assert config.neighbor_backend_options() == {"num_workers": 0}
        assert OneClusterConfig().neighbor_backend_options() == {}
        with pytest.raises(ValueError):
            OneClusterConfig(neighbor_workers=-1)

    def test_shard_bounds_cover_dataset(self):
        points = DATASETS["random-2d"]
        backend = ShardedBackend(points, num_shards=7, num_workers=0)
        bounds = backend.shard_bounds
        assert bounds[0][0] == 0 and bounds[-1][1] == points.shape[0]
        for (_, high), (low, _) in zip(bounds, bounds[1:]):
            assert high == low


class TestPrivatePipelineParity:
    """Backend choice must never change a released value."""

    def test_good_radius_sharded_release(self, small_cluster_data, loose_params):
        points = small_cluster_data.points
        reference = good_radius(points, 200, loose_params, rng=11,
                                backend="dense")
        sharded = good_radius(points, 200, loose_params, rng=11,
                              backend=ShardedBackend(points, num_shards=3,
                                                     num_workers=0))
        assert sharded.radius == reference.radius
        assert sharded.score == reference.score

    def test_good_center_batched_search_release(self, medium_cluster_data):
        points = medium_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        plain = good_center(points, radius=0.05, target=400, params=params,
                            rng=3)
        backend = ShardedBackend(points, num_shards=4, num_workers=0)
        batched = good_center(points, radius=0.05, target=400, params=params,
                              rng=3, backend=backend)
        assert plain.found == batched.found
        assert plain.attempts == batched.attempts
        if plain.found:
            assert np.array_equal(plain.center, batched.center)
            assert plain.radius_bound == batched.radius_bound

    def test_streaming_does_not_change_good_radius(self, small_cluster_data,
                                                   loose_params, monkeypatch):
        import repro.neighbors.base as base

        reference = good_radius(small_cluster_data.points, 380, loose_params,
                                rng=5, backend="chunked")
        # Force every profile evaluation through the streaming walk.
        monkeypatch.setattr(base, "STREAMING_MIN_POINTS", 1)
        monkeypatch.setattr(base, "STREAMING_TARGET_FRACTION", 0.0)
        streamed = good_radius(small_cluster_data.points, 380, loose_params,
                               rng=5, backend="chunked")
        assert streamed.radius == reference.radius
