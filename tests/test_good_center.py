"""Tests for Algorithm GoodCenter (Lemma 3.7)."""

import numpy as np
import pytest

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import GoodCenterConfig
from repro.core.good_center import good_center


class TestGoodCenterConfig:
    def test_practical_defaults_valid(self):
        config = GoodCenterConfig.practical()
        assert config.box_width_factor is None
        assert sum(config.budget_split) <= 1.0 + 1e-12

    def test_paper_constants(self):
        config = GoodCenterConfig.paper()
        assert config.jl_constant == 46.0
        assert config.box_width_factor == 300.0
        assert config.budget_split == (0.25, 0.25, 0.25, 0.25)

    def test_adaptive_box_width_wider_for_higher_k(self):
        config = GoodCenterConfig.practical()
        assert config.box_width(0.1, k=16, identity_projection=True) > \
            config.box_width(0.1, k=2, identity_projection=True)

    def test_fixed_box_width(self):
        config = GoodCenterConfig(box_width_factor=50.0)
        assert config.box_width(0.1, k=8) == pytest.approx(5.0)

    def test_capture_probability_meets_target(self):
        config = GoodCenterConfig.practical()
        for k in (2, 8, 32):
            probability = config.per_axis_capture_probability(
                0.1, k, identity_projection=True)
            assert probability >= config.capture_probability_target - 1e-9

    def test_invalid_budget_split(self):
        with pytest.raises(ValueError):
            GoodCenterConfig(budget_split=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            GoodCenterConfig(budget_split=(0.5, 0.5, 0.0, -0.1))

    def test_invalid_box_width_factor(self):
        with pytest.raises(ValueError):
            GoodCenterConfig(box_width_factor=1.0)

    def test_projection_dimension_capped(self):
        config = GoodCenterConfig.practical()
        assert config.projection_dimension(10_000, 0.1, ambient_dimension=3) == 3

    def test_selected_set_diameter_scales_with_radius(self):
        config = GoodCenterConfig.practical()
        small = config.selected_set_diameter(0.01, 4, identity_projection=True)
        large = config.selected_set_diameter(0.1, 4, identity_projection=True)
        assert large == pytest.approx(10 * small)


class TestGoodCenter:
    def test_recovers_planted_center(self, medium_cluster_data):
        data = medium_cluster_data
        params = PrivacyParams(8.0, 1e-5)
        result = good_center(data.points, radius=0.05, target=400,
                             params=params, rng=0)
        assert result.found
        error = np.linalg.norm(result.center - data.true_ball.center)
        assert error <= 0.3

    def test_released_ball_captures_points(self, medium_cluster_data):
        data = medium_cluster_data
        params = PrivacyParams(8.0, 1e-5)
        result = good_center(data.points, radius=0.05, target=400,
                             params=params, rng=1)
        assert result.found
        distances = np.linalg.norm(data.points - result.center[None, :], axis=1)
        assert int(np.count_nonzero(distances <= result.radius_bound)) >= 300

    def test_success_rate_across_seeds(self, medium_cluster_data):
        data = medium_cluster_data
        params = PrivacyParams(8.0, 1e-5)
        successes = 0
        for seed in range(8):
            result = good_center(data.points, radius=0.05, target=400,
                                 params=params, rng=seed)
            if result.found:
                error = np.linalg.norm(result.center - data.true_ball.center)
                successes += int(error <= 0.4)
        assert successes >= 6

    def test_jl_path_used_in_high_dimension(self):
        """In high dimension the projection dimension is strictly smaller than
        the ambient one (the JL path); whether the run succeeds depends on the
        budget, which at d=80 would need a far larger cluster (Lemma 3.7), so
        only the structural property is asserted here."""
        rng = np.random.default_rng(0)
        dimension = 80
        center = np.full(dimension, 0.5)
        cluster = center + rng.normal(0, 0.01, size=(900, dimension))
        noise = rng.uniform(0, 1, size=(300, dimension))
        points = np.vstack([cluster, noise])
        params = PrivacyParams(8.0, 1e-5)
        result = good_center(points, radius=0.15, target=700, params=params, rng=1)
        assert result.projected_dimension < dimension

    def test_rotation_path_succeeds_with_forced_projection(self):
        """Force a non-trivial JL projection (k < d) with a modest dimension
        and a generous budget so the rotation / per-axis-interval branch is
        exercised end to end."""
        rng = np.random.default_rng(3)
        dimension = 8
        center = np.full(dimension, 0.5)
        cluster = center + rng.normal(0, 0.015, size=(900, dimension))
        noise = rng.uniform(0, 1, size=(300, dimension))
        points = np.vstack([cluster, noise])
        config = GoodCenterConfig(jl_constant=0.3)
        params = PrivacyParams(16.0, 1e-4)
        successes = 0
        for seed in range(5):
            result = good_center(points, radius=0.1, target=700, params=params,
                                 config=config, rng=seed)
            if result.found:
                assert result.projected_dimension < dimension
                successes += int(np.linalg.norm(result.center - center) <= 1.0)
        assert successes >= 3

    def test_failure_is_graceful_for_tiny_budget(self, small_cluster_data):
        params = PrivacyParams(0.01, 1e-9)
        result = good_center(small_cluster_data.points, radius=0.05, target=200,
                             params=params, rng=0)
        # With a tiny budget the algorithm may abstain, but must not crash and
        # must report not-found coherently.
        if not result.found:
            assert result.center is None
            assert result.radius_bound == float("inf")

    def test_requires_positive_radius(self, small_cluster_data):
        with pytest.raises(ValueError):
            good_center(small_cluster_data.points, radius=0.0, target=100,
                        params=PrivacyParams(1.0, 1e-6))

    def test_requires_positive_delta(self, small_cluster_data):
        with pytest.raises(ValueError):
            good_center(small_cluster_data.points, radius=0.1, target=100,
                        params=PrivacyParams(1.0, 0.0))

    def test_ledger_within_budget(self, medium_cluster_data):
        params = PrivacyParams(8.0, 1e-5)
        ledger = PrivacyLedger()
        good_center(medium_cluster_data.points, radius=0.05, target=400,
                    params=params, rng=2, ledger=ledger)
        total = ledger.total_basic()
        assert total is not None
        assert total.epsilon <= params.epsilon + 1e-9
        assert total.delta <= params.delta + 1e-12

    def test_deterministic_with_seed(self, medium_cluster_data):
        params = PrivacyParams(8.0, 1e-5)
        a = good_center(medium_cluster_data.points, 0.05, 400, params, rng=7)
        b = good_center(medium_cluster_data.points, 0.05, 400, params, rng=7)
        assert a.found == b.found
        if a.found:
            assert np.allclose(a.center, b.center)
