"""Property-based cross-backend parity suite.

Randomised-but-seeded generators sweep dataset shapes the hand-picked cases
in ``test_neighbors.py`` / ``test_sharded.py`` cannot enumerate — sizes,
dimensions, duplicate blocks, colinear and fully degenerate point sets,
integer grids with exactly representable boundary distances — and assert the
library-wide contract *bitwise* on every draw: dense, chunked, tree and
sharded (any shard count, serial mode) backends return identical integer
counts, identical truncated statistics and ``L(r, S)`` scores, and identical
projected-view grid hashes.

Hypothesis runs derandomised (the suite is deterministic in CI); the point
generators draw a numpy seed and build arrays outside hypothesis for speed.
The hypothesis sweep classes are marked ``slow`` — they belong in the
dedicated parity/property CI job, and their budget (``max_examples``) can
grow there without dragging the tier-1 loop; the plain API-validation tests
at the bottom stay in tier-1.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.boxes import ShiftedBoxPartition, box_labels, interval_labels
from repro.geometry.jl import project_rows
from repro.neighbors import (
    BACKENDS,
    ChunkedBackend,
    DenseBackend,
    ShardedBackend,
    TreeBackend,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

SCENARIOS = ("uniform", "gaussian", "duplicates", "colinear", "identical",
             "integer")


def build_points(scenario: str, n: int, d: int, seed: int) -> np.ndarray:
    """Deterministically build an ``(n, d)`` dataset for one scenario."""
    rng = np.random.default_rng(seed)
    if scenario == "uniform":
        return rng.uniform(-2.0, 2.0, size=(n, d))
    if scenario == "gaussian":
        return rng.normal(0.0, rng.uniform(0.01, 10.0), size=(n, d))
    if scenario == "duplicates":
        # A handful of distinct rows, each repeated many times in shuffled
        # order — ties and repeated zero distances everywhere.
        distinct = rng.uniform(-1.0, 1.0, size=(max(2, n // 8), d))
        rows = distinct[rng.integers(0, distinct.shape[0], size=n)]
        return rows
    if scenario == "colinear":
        # All points on one line: every pairwise distance is a multiple of
        # the direction norm, exercising heavy boundary collisions.
        direction = rng.normal(size=d)
        offsets = rng.uniform(-3.0, 3.0, size=n)
        return offsets[:, None] * direction[None, :]
    if scenario == "identical":
        return np.tile(rng.uniform(-1.0, 1.0, size=(1, d)), (n, 1))
    if scenario == "integer":
        # Integer coordinates: squared distances are exact integers, so
        # boundary radii (below) hit representable values dead on.
        return rng.integers(-4, 5, size=(n, d)).astype(float)
    raise AssertionError(scenario)


def boundary_radii(points: np.ndarray, seed: int) -> np.ndarray:
    """Probe radii: negatives, zero, *exact* pairwise distances (boundary
    hits), the span, and uniform probes."""
    rng = np.random.default_rng(seed)
    sample = points[rng.integers(0, points.shape[0], size=min(12, points.shape[0]))]
    deltas = sample[:, None, :] - points[None, :, :]
    distances = np.sqrt(np.einsum("qnd,qnd->qn", deltas, deltas)).ravel()
    positive = distances[distances > 0]
    exact = (rng.choice(positive, size=min(6, positive.size), replace=False)
             if positive.size else np.empty(0))
    span = float(distances.max(initial=0.0))
    probes = rng.uniform(0.0, span * 1.1 + 0.1, size=5)
    return np.concatenate([[-1.0, -1e-12, 0.0, span], exact, probes])


def make_backends(points: np.ndarray, num_shards: int) -> dict:
    return {
        "dense": DenseBackend(points),
        "chunked": ChunkedBackend(points),
        "tree": TreeBackend(points),
        f"sharded[{num_shards}]": ShardedBackend(
            points, num_shards=num_shards, num_workers=0
        ),
    }


datasets = st.tuples(
    st.sampled_from(SCENARIOS),
    st.integers(min_value=2, max_value=90),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2 ** 16),
    st.integers(min_value=1, max_value=7),     # shard count
)


@pytest.mark.slow
class TestCountParity:
    @SETTINGS
    @given(case=datasets)
    def test_counts_and_batched_grid_bitwise_equal(self, case):
        scenario, n, d, seed, shards = case
        points = build_points(scenario, n, d, seed)
        radii = boundary_radii(points, seed + 1)
        centers = np.vstack([
            points[:: max(1, n // 5)],
            np.random.default_rng(seed + 2).uniform(-3, 3, size=(4, d)),
        ])
        backends = make_backends(points, shards)
        reference_many = backends["dense"].count_within_many(centers, radii)
        for name, backend in backends.items():
            for radius in radii[:4]:
                counts = backend.query_radius_counts(centers, float(radius))
                assert counts.dtype == np.int64, name
                assert np.array_equal(
                    counts,
                    backends["dense"].query_radius_counts(centers,
                                                          float(radius)),
                ), (name, scenario, radius)
            batched = backend.count_within_many(centers, radii)
            assert np.array_equal(batched, reference_many), (name, scenario)
            assert np.array_equal(
                backend.radius_counts(float(radii[-1])),
                backends["dense"].radius_counts(float(radii[-1])),
            ), (name, scenario)


@pytest.mark.slow
class TestStatisticParity:
    @SETTINGS
    @given(case=datasets)
    def test_truncated_statistic_and_scores_bitwise_equal(self, case):
        scenario, n, d, seed, shards = case
        points = build_points(scenario, n, d, seed)
        radii = boundary_radii(points, seed + 3)
        backends = make_backends(points, shards)
        targets = sorted({1, max(1, n // 3), max(1, int(0.9 * n)), n})
        for name, backend in backends.items():
            for target in targets:
                assert np.array_equal(
                    backend.capped_average_scores(radii, target),
                    backends["dense"].capped_average_scores(radii, target),
                ), (name, scenario, target)
            # The streaming walk is an independent evaluation strategy and
            # must agree bit for bit as well.
            target = targets[-2] if len(targets) > 1 else targets[0]
            assert np.array_equal(
                backend.capped_average_scores(radii, target, streaming=True),
                backends["dense"].capped_average_scores(radii, target,
                                                        streaming=False),
            ), (name, scenario)
            for k in (1, max(1, n // 2), n):
                assert np.array_equal(
                    backend.kth_distances(k),
                    backends["dense"].kth_distances(k),
                ), (name, scenario, k)


@pytest.mark.slow
class TestViewParity:
    @SETTINGS
    @given(case=datasets, image_dim=st.integers(min_value=1, max_value=4),
           identity=st.booleans())
    def test_view_grid_hashes_bitwise_equal(self, case, image_dim, identity):
        scenario, n, d, seed, shards = case
        points = build_points(scenario, n, d, seed)
        rng = np.random.default_rng(seed + 4)
        if identity:
            matrix = None
            image = points
            k = d
        else:
            matrix = rng.normal(size=(image_dim, d))
            image = project_rows(points, matrix)
            k = image_dim
        width = float(rng.uniform(0.05, 2.0))
        shifts = rng.uniform(0.0, width, size=(3, k))

        # In-parent reference: the same single-definition hashes GoodCenter's
        # no-backend path uses.
        reference_labels = box_labels(image, shifts[0], width)
        reference_counts = np.array([
            np.unique(box_labels(image, shift, width), axis=0,
                      return_counts=True)[1].max()
            for shift in shifts
        ])
        unique, first, counts = np.unique(reference_labels, axis=0,
                                          return_index=True,
                                          return_counts=True)
        order = np.argsort(first, kind="stable")
        reference_hist = (unique[order], counts[order])
        chosen = reference_hist[0][int(rng.integers(0, unique.shape[0]))]
        reference_mask = np.all(reference_labels == chosen[None, :], axis=1)
        rows = np.flatnonzero(reference_mask)
        reference_axis = interval_labels(image[rows], width)

        for name, backend in make_backends(points, shards).items():
            view = backend.view(matrix)
            assert view.image_dimension == k
            assert np.array_equal(
                view.heaviest_cell_counts(width, shifts), reference_counts
            ), (name, scenario)
            assert np.array_equal(
                view.label_array(width, shifts[0]), reference_labels
            ), (name, scenario)
            hist_labels, hist_counts = view.cell_histogram(width, shifts[0])
            assert np.array_equal(hist_labels, reference_hist[0]), (name,
                                                                    scenario)
            assert np.array_equal(hist_counts, reference_hist[1]), (name,
                                                                    scenario)
            assert np.array_equal(
                view.label_mask(width, shifts[0], chosen), reference_mask
            ), (name, scenario)
            # return_inverse: positions reconstruct every point's label and
            # encode the membership mask without a second hash pass.
            inv_labels, inv_counts, positions = view.cell_histogram(
                width, shifts[0], return_inverse=True
            )
            assert np.array_equal(inv_labels, reference_hist[0]), (name,
                                                                   scenario)
            assert np.array_equal(inv_counts, reference_hist[1]), (name,
                                                                   scenario)
            assert np.array_equal(inv_labels[positions], reference_labels), (
                name, scenario)
            chosen_position = int(np.flatnonzero(
                np.all(reference_hist[0] == chosen[None, :], axis=1)
            )[0])
            assert np.array_equal(positions == chosen_position,
                                  reference_mask), (name, scenario)
            assert np.array_equal(
                view.axis_interval_labels(width, rows=rows), reference_axis
            ), (name, scenario)

    @SETTINGS
    @given(case=datasets)
    def test_axis_labels_preserve_caller_row_order(self, case):
        scenario, n, d, seed, shards = case
        points = build_points(scenario, n, d, seed)
        rng = np.random.default_rng(seed + 5)
        basis = rng.normal(size=(d, d))
        rows = rng.permutation(n)[: max(1, n // 2)]   # deliberately unsorted
        reference = interval_labels(project_rows(points[rows], basis), 0.4)
        for name, backend in make_backends(points, shards).items():
            got = backend.view(basis).axis_interval_labels(0.4, rows=rows)
            assert np.array_equal(got, reference), (name, scenario)


@pytest.mark.slow
class TestPlanSubmitDeterminism:
    """Async plan submission is bitwise deterministic: any number of
    overlapped ``submit`` calls, resolved in any order, return exactly what
    a synchronous ``execute`` returns — which itself bitwise matches the
    dense backend's direct evaluation, across scenarios, shard counts and
    selection kinds."""

    @SETTINGS
    @given(case=datasets, image_dim=st.integers(min_value=1, max_value=3))
    def test_overlapped_submissions_bitwise_equal(self, case, image_dim):
        from repro.neighbors import QueryPlan

        scenario, n, d, seed, shards = case
        points = build_points(scenario, n, d, seed)
        rng = np.random.default_rng(seed + 6)
        matrix = rng.normal(size=(image_dim, d))
        basis = rng.normal(size=(d, d))
        width = float(rng.uniform(0.1, 1.5))
        shifts = rng.uniform(0.0, width, size=image_dim)
        labels = box_labels(project_rows(points, matrix), shifts, width)
        unique, counts = np.unique(labels, axis=0, return_counts=True)
        chosen = unique[int(np.argmax(counts))]
        centers = points[:: max(1, n // 4)]
        radii = np.asarray([0.0, float(rng.uniform(0.0, 3.0))])

        def build(backend):
            search = backend.view(matrix)
            frame = backend.view(basis)
            selection = search.box_selection(width, shifts, chosen)
            plan = QueryPlan()
            slots = (
                plan.masked_count(frame, selection),
                plan.masked_sum(frame, selection),
                plan.masked_axis_histograms(frame, selection, 0.5),
                plan.masked_clipped_sum(frame, selection, np.zeros(d), 1.0),
                plan.cell_histogram(search, width, shifts),
                plan.heaviest_cell_counts(search, width,
                                          shifts[None, :]),
                plan.count_within_many(centers, radii),
            )
            return plan, slots

        dense = DenseBackend(points)
        reference_plan, slots = build(dense)
        reference = dense.execute(reference_plan)
        for backend in (ChunkedBackend(points),
                        ShardedBackend(points, num_shards=shards,
                                       num_workers=0)):
            plan, other_slots = build(backend)
            assert other_slots == slots
            synchronous = backend.execute(plan)
            futures = [backend.submit(plan) for _ in range(2)]
            for future in reversed(futures):
                resolved = future.result()
                for slot in slots:
                    got, sync, expected = (resolved[slot], synchronous[slot],
                                           reference[slot])
                    if slot == slots[0]:          # masked_count
                        assert got == sync == expected
                    elif slot == slots[2]:        # per-axis histograms
                        for (gl, gc), (el, ec) in zip(got, expected):
                            assert np.array_equal(gl, el)
                            assert np.array_equal(gc, ec)
                    elif slot == slots[3]:        # clipped statistics
                        assert got.count == expected.count
                        assert np.array_equal(got.vector_sum,
                                              expected.vector_sum)
                    elif slot == slots[4]:        # cell histogram
                        for g, e in zip(got, expected):
                            assert np.array_equal(g, e)
                    else:
                        assert np.array_equal(got, expected)


class TestViewValidation:
    def test_matrix_shape_rejected(self):
        backend = DenseBackend(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            backend.view(np.zeros((2, 5)))

    def test_rows_out_of_range_rejected(self):
        points = np.arange(12.0).reshape(6, 2)
        for backend in (DenseBackend(points),
                        ShardedBackend(points, num_shards=2, num_workers=0)):
            view = backend.view(np.eye(2))
            with pytest.raises(ValueError):
                view.axis_interval_labels(1.0, rows=[0, 6])
            with pytest.raises(ValueError):
                view.axis_interval_labels(1.0, rows=[-1])

    def test_shift_dimension_rejected(self):
        backend = DenseBackend(np.zeros((4, 3)))
        view = backend.view(np.ones((2, 3)))
        with pytest.raises(ValueError):
            view.heaviest_cell_counts(1.0, np.zeros((1, 3)))

    def test_offset_view_matches_translation(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(30, 3))
        offset = np.array([1.5, -0.25, 3.0])
        shifted = points + offset[None, :]
        partition = ShiftedBoxPartition(dimension=3, width=0.9, rng=1)
        reference = box_labels(shifted, partition.shifts, 0.9)
        for backend in (DenseBackend(points),
                        ShardedBackend(points, num_shards=3, num_workers=0)):
            view = backend.view(offset=offset)
            assert np.array_equal(
                view.label_array(0.9, partition.shifts), reference
            )
