"""Tests for the distributed neighbor backend and its wire protocol.

The contract, in three layers:

* **Wire** (:mod:`repro.neighbors.rpc`): the tagged binary encoding
  round-trips every payload the backend ships — float64 *bit patterns*
  included — and rejects anything it cannot carry faithfully, so a value
  never changes by crossing a socket.
* **Parity**: a :class:`~repro.neighbors.distributed.DistributedBackend`
  over 1/2/3 loopback node servers releases *bitwise* the same values as
  the dense in-process reference — raw queries, fused plans, GoodRadius,
  GoodCenter (both projection paths, speculation on and off), and
  k_cluster through the config path.  Shard partials merge in shard order
  no matter which socket answered them, so this is parity by construction;
  these tests pin that the construction holds.
* **Failure**: with failover on (the default), a dead node is re-dialed
  (replaying ``init``) or its shards are adopted by the survivors in ring
  order, only its batch is replayed, and the release does not move a byte
  — a `good_center` run with a node killed mid-run is bitwise the healthy
  run.  With ``retries=0`` the PR 7 fail-fast contract holds: a dead node,
  a dropped connection, a truncated frame, or a blown per-call timeout
  raises a clean :class:`~repro.neighbors.BackendUnavailableError` — no
  hang, and never a merge of a subset of shards.

Plus the two scheduler features that ride along: work stealing within the
local pool's shard→worker affinity groups, and the tree-backed per-shard
truncated statistic (property-tested against the brute-force kernel).
"""

import os
import struct
import subprocess
import sys
import time
from contextlib import contextmanager

import numpy as np
import pytest

import repro.neighbors.sharded as sharded_module
from repro.accounting.params import PrivacyParams
from repro.clustering.k_cluster import k_cluster
from repro.core.config import OneClusterConfig
from repro.core.good_center import good_center
from repro.core.good_radius import good_radius
from repro.neighbors import (
    BackendUnavailableError,
    DenseBackend,
    QueryPlan,
    ShardedBackend,
    resolve_backend,
)
from repro.neighbors._distance import truncated_squared_cross
from repro.neighbors.distributed import DistributedBackend
from repro.neighbors.rpc import (
    NodeClient,
    PendingReply,
    decode,
    encode,
    parse_node_address,
)
from repro.neighbors.serve import NodeServer
from repro.neighbors.tree import TreeBackend

# `repro.core.__init__` re-exports the good_center *function* as an
# attribute of the package, shadowing the submodule on attribute lookup —
# go through sys.modules for the module object (the speculation seam).
good_center_module = sys.modules["repro.core.good_center"]

NODE_COUNTS = (1, 2, 3)

DATASETS = {
    "random-2d": np.random.default_rng(0).uniform(size=(120, 2)),
    "duplicates": np.vstack([
        np.zeros((7, 3)),
        np.ones((4, 3)),
        np.random.default_rng(3).uniform(size=(30, 3)),
        np.zeros((3, 3)),
    ]),
}


@contextmanager
def node_cluster(count):
    """``count`` in-thread loopback node servers; yields their addresses."""
    servers = [NodeServer().start() for _ in range(count)]
    try:
        yield [server.address for server in servers]
    finally:
        for server in servers:
            server.stop()


@contextmanager
def distributed_backend(points, num_nodes, **kwargs):
    """A DistributedBackend over fresh in-thread nodes, closed on exit."""
    with node_cluster(num_nodes) as addresses:
        backend = DistributedBackend(points, nodes=addresses, **kwargs)
        try:
            yield backend
        finally:
            backend.close()


def results_equal(a, b) -> bool:
    """Bitwise equality of query *results* across backends: exact array
    dtypes and bytes, recursive containers, plain ``==`` for scalars."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        return (a.dtype == b.dtype and a.shape == b.shape
                and a.tobytes() == b.tobytes())
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(map(results_equal, a, b))
    return bool(a == b)


def wire_equal(a, b) -> bool:
    """Structural equality for decoded wire values: exact types, exact
    array bits (``nan == nan`` included)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and a.shape == b.shape
                and a.tobytes() == b.tobytes())
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(map(wire_equal, a, b))
    if isinstance(a, dict):
        return (set(a) == set(b)
                and all(wire_equal(a[key], b[key]) for key in a))
    if isinstance(a, float):
        return struct.pack(">d", a) == struct.pack(">d", b)
    return a == b


class TestWireEncoding:
    """encode/decode is the identity on everything the backend ships."""

    def test_scalars_round_trip(self):
        values = [None, True, False, 0, -1, 7, 2**62, -(2**62),
                  2**200, -(2**200),  # beyond int64: decimal-text fallback
                  "", "shifted boxes — ω", b"", b"\x00\xff frame"]
        for value in values:
            assert wire_equal(decode(encode(value)), value), value

    def test_float_bit_patterns_survive(self):
        specials = [0.0, -0.0, 1.0 / 3.0, float("inf"), float("-inf"),
                    float("nan"), 5e-324, np.nextafter(1.0, 2.0)]
        for value in specials:
            out = decode(encode(value))
            assert struct.pack(">d", out) == struct.pack(">d", value)

    def test_containers_preserve_shape(self):
        value = {"a": [1, (2.5, None)], 3: ("rows", [True, b"x"]),
                 None: {}, 2.5: [[]], False: ()}
        out = decode(encode(value))
        assert wire_equal(out, value)
        # Tuples and lists are distinct on the wire: spec dispatch depends
        # on it.
        assert isinstance(decode(encode((1, 2))), tuple)
        assert isinstance(decode(encode([1, 2])), list)

    def test_arrays_round_trip(self):
        rng = np.random.default_rng(5)
        arrays = [
            rng.normal(size=(4, 3)),
            np.arange(6, dtype=np.int64).reshape(2, 3)[:, ::-1],  # non-C
            np.array([], dtype=float),
            np.array(True),                                        # 0-d
            np.float64(2.5),
            np.zeros((2, 0, 3)),
        ]
        for array in arrays:
            out = decode(encode(array))
            expected = np.asarray(array, order="C")
            assert out.dtype == expected.dtype
            assert out.shape == expected.shape
            assert out.tobytes() == expected.tobytes()
        # Decoded arrays are writable copies, never views of the buffer.
        out = decode(encode(np.zeros(3)))
        out[0] = 1.0

    def test_rejects_what_it_cannot_carry(self):
        with pytest.raises(TypeError):
            encode(object())
        with pytest.raises(TypeError):
            encode({(1, 2): "tuple keys do not round-trip"})
        with pytest.raises(TypeError):
            encode({"ok": {"nested": object()}})

    def test_box_selection_spec_round_trips_tokens(self):
        """The BoxSelection wire spec — selection token, view cache token,
        matrix, shifts, label — must cross the encoder unchanged, tokens
        explicitly included (they key worker-side membership memoisation,
        so a dropped or renumbered token silently kills the cache)."""
        points = DATASETS["random-2d"]
        backend = ShardedBackend(points, num_shards=3, num_workers=0)
        matrix = np.random.default_rng(11).normal(size=(2, 2))
        view = backend.view(matrix)
        selection = view.box_selection(0.25, np.zeros(2), [1, -2])
        spec = backend._selection_specs(selection)[0]
        out = decode(encode(spec))
        assert wire_equal(out, spec)
        assert out[0] == "box"
        assert out[1] == selection.token and isinstance(out[1], int)
        assert out[2] == view._token
        backend.close()

    def test_compiled_plan_payload_round_trips(self):
        """Every shard's full execute_plan payload survives the wire, and
        re-encoding the decoded payload is byte-identical (the encoding is
        canonical, so payloads can be compared and cached by bytes)."""
        points = DATASETS["duplicates"]
        backend = ShardedBackend(points, num_shards=3, num_workers=0)
        view = backend.view(None)
        selection = view.box_selection(0.5, np.zeros(points.shape[1]),
                                       np.zeros(points.shape[1]))
        plan = QueryPlan()
        plan.count_within_many(points[:4], [0.5, 1.0])
        plan.masked_count(view, selection)
        plan.masked_sum(view, selection)
        plan.masked_axis_histograms(view, selection, 0.5)
        compiled = backend._compile_plan(plan)
        for shard in range(backend.num_shards):
            payload = encode(compiled.shard_args(shard))
            assert wire_equal(decode(payload), compiled.shard_args(shard))
            assert encode(decode(payload)) == payload
        backend.close()

    def test_parse_node_address(self):
        table = {
            "127.0.0.1:7400": ("127.0.0.1", 7400),
            "node-7.cluster.local:65535": ("node-7.cluster.local", 65535),
            "[::1]:9000": ("::1", 9000),
            "[fe80::1%eth0]:7400": ("fe80::1%eth0", 7400),
            "[2001:db8::2]:1": ("2001:db8::2", 1),
        }
        for text, expected in table.items():
            assert parse_node_address(text) == expected, text
        assert parse_node_address(("::1", 7400)) == ("::1", 7400)
        assert parse_node_address(("host", "7400")) == ("host", 7400)

    def test_parse_node_address_rejections(self):
        bad = ["no-port", "", ":7400", "host:", "host:port", "host:0",
               "host:-1", "host:65536", "[::1]9000", "[::1]:", "[]:9000",
               ("host", 0), ("host", "nope")]
        for value in bad:
            with pytest.raises(ValueError):
                parse_node_address(value)
        # A bare IPv6 host is ambiguous (every colon is a candidate
        # separator) — the error must say how to fix it, not just fail.
        with pytest.raises(ValueError, match=r"bracket the host"):
            parse_node_address("::1:9000")


class TestLoopbackParity:
    """Releases are bitwise identical across 1/2/3-node topologies."""

    @pytest.mark.parametrize("name", sorted(DATASETS))
    @pytest.mark.parametrize("num_nodes", NODE_COUNTS)
    def test_raw_queries_identical(self, name, num_nodes):
        points = DATASETS[name]
        dense = DenseBackend(points)
        with distributed_backend(points, num_nodes, num_shards=5) as backend:
            assert backend.num_nodes == num_nodes
            for radius in (-1.0, 0.0, 0.3, 1.5, 10.0):
                assert np.array_equal(backend.radius_counts(radius),
                                      dense.radius_counts(radius))
            centers = points[:7] + 0.1
            assert np.array_equal(
                backend.query_radius_counts(centers, 0.4),
                dense.query_radius_counts(centers, 0.4),
            )
            radii = np.array([0.0, 0.2, 0.7, 3.0])
            for target in (1, 5, points.shape[0]):
                assert np.array_equal(
                    backend.capped_average_scores(radii, target),
                    dense.capped_average_scores(radii, target),
                )
            for k in (1, points.shape[0] // 2, points.shape[0]):
                assert np.array_equal(backend.kth_distances(k),
                                      dense.kth_distances(k))

    @pytest.mark.parametrize("num_nodes", NODE_COUNTS)
    def test_plan_execute_and_submit_identical(self, num_nodes):
        points = DATASETS["random-2d"]
        dense = DenseBackend(points)

        def build(backend):
            view = backend.view(np.eye(2)[::-1].copy())
            selection = view.box_selection(0.25, np.zeros(2), [1, 1])
            plan = QueryPlan()
            plan.count_within_many(points[:5], [0.3, 0.8])
            plan.heaviest_cell_counts(view, 0.25, np.zeros((3, 2)))
            plan.masked_count(view, selection)
            plan.masked_sum(view, selection)
            plan.masked_minmax(view, selection)
            plan.masked_axis_histograms(view, selection, 0.25)
            return plan

        reference = dense.execute(build(dense))
        with distributed_backend(points, num_nodes, num_shards=4) as backend:
            executed = backend.execute(build(backend))
            future = backend.submit(build(backend))
            submitted = future.result()
            assert future.done()
        for got in (executed, submitted):
            assert len(got) == len(reference)
            for slot, (value, expected) in enumerate(zip(got, reference)):
                assert results_equal(value, expected), slot

    @pytest.mark.parametrize("num_nodes", NODE_COUNTS)
    def test_good_radius_release_identical(self, small_cluster_data,
                                           loose_params, num_nodes):
        points = small_cluster_data.points
        reference = good_radius(points, 200, loose_params, rng=11,
                                backend="dense")
        with distributed_backend(points, num_nodes, num_shards=4) as backend:
            released = good_radius(points, 200, loose_params, rng=11,
                                   backend=backend)
        assert released.radius == reference.radius
        assert released.score == reference.score

    @pytest.mark.parametrize("num_nodes", NODE_COUNTS)
    def test_good_center_identity_path_release_identical(
            self, medium_cluster_data, num_nodes):
        points = medium_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        reference = good_center(points, radius=0.05, target=400,
                                params=params, rng=3)
        with distributed_backend(points, num_nodes, num_shards=4) as backend:
            released = good_center(points, radius=0.05, target=400,
                                   params=params, rng=3, backend=backend)
        assert released.projected_dimension == points.shape[1]
        assert released.found == reference.found
        assert released.attempts == reference.attempts
        if reference.found:
            assert np.array_equal(released.center, reference.center)
            assert released.radius_bound == reference.radius_bound

    @pytest.mark.parametrize("num_nodes", NODE_COUNTS)
    def test_good_center_jl_path_release_identical(self, jl_cluster_points,
                                                   num_nodes):
        from repro.core.config import GoodCenterConfig

        config = GoodCenterConfig(jl_constant=0.3)
        params = PrivacyParams(16.0, 1e-4)
        reference = good_center(jl_cluster_points, radius=0.1, target=700,
                                params=params, config=config, rng=1)
        with distributed_backend(jl_cluster_points, num_nodes,
                                 num_shards=3) as backend:
            released = good_center(jl_cluster_points, radius=0.1, target=700,
                                   params=params, config=config, rng=1,
                                   backend=backend)
        assert released.projected_dimension < jl_cluster_points.shape[1]
        assert released.found == reference.found
        assert released.attempts == reference.attempts
        if reference.found:
            assert np.array_equal(released.center, reference.center)
            assert released.radius_bound == reference.radius_bound

    @pytest.fixture(scope="class")
    def jl_cluster_points(self):
        rng = np.random.default_rng(3)
        dimension = 8
        center = np.full(dimension, 0.5)
        cluster = center + rng.normal(0, 0.015, size=(900, dimension))
        noise = rng.uniform(0, 1, size=(300, dimension))
        return np.vstack([cluster, noise])

    def test_speculation_does_not_change_release(self, medium_cluster_data,
                                                 monkeypatch):
        """DistributedBackend pipelines speculative plans onto the node
        sockets; hit or miss, the release must not move a byte."""
        points = medium_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        with distributed_backend(points, 2, num_shards=4) as backend:
            assert backend.supports_speculation
            speculated = good_center(points, radius=0.05, target=400,
                                     params=params, rng=3, backend=backend)
            stats = backend.pool_stats()["speculation"]
        monkeypatch.setattr(good_center_module, "_SPECULATIVE_PLANS", False)
        with distributed_backend(points, 2, num_shards=4) as backend:
            plain = good_center(points, radius=0.05, target=400,
                                params=params, rng=3, backend=backend)
        speculated_plans = sum(entry.get("hits", 0) + entry.get("misses", 0)
                               for entry in stats.values())
        assert speculated_plans > 0
        assert speculated.found == plain.found
        assert speculated.attempts == plain.attempts
        if plain.found:
            assert np.array_equal(speculated.center, plain.center)
            assert speculated.radius_bound == plain.radius_bound

    def test_k_cluster_release_identical_via_config(self):
        from repro.datasets.synthetic import gaussian_blobs

        points, _, _ = gaussian_blobs(n=500, d=2, k=2, spread=0.02, rng=6)
        params = PrivacyParams(10.0, 1e-5)
        reference = k_cluster(points, k=2, params=params, rng=9)
        with node_cluster(2) as addresses:
            config = OneClusterConfig(neighbor_backend="distributed",
                                      neighbor_nodes=tuple(addresses))
            released = k_cluster(points, k=2, params=params, rng=9,
                                 config=config)
        assert released.num_found == reference.num_found
        assert released.covered_fraction == reference.covered_fraction
        for ball, expected in zip(released.balls, reference.balls):
            assert np.array_equal(ball.center, expected.center)
            assert ball.radius == expected.radius

    def test_resolve_backend_requires_nodes(self):
        points = DATASETS["random-2d"]
        with pytest.raises(ValueError, match="node servers"):
            resolve_backend(points, "distributed")
        with pytest.raises(ValueError):
            OneClusterConfig(neighbor_backend="distributed")
        config = OneClusterConfig(neighbor_backend="distributed",
                                  neighbor_nodes=("127.0.0.1:1",),
                                  neighbor_workers=2)
        assert config.neighbor_backend_options() == {
            "nodes": ["127.0.0.1:1"], "node_workers": 2,
        }

    def test_resolve_backend_builds_distributed(self):
        points = DATASETS["random-2d"]
        with node_cluster(1) as addresses:
            backend = resolve_backend(points, "distributed",
                                      options={"nodes": addresses})
            try:
                assert isinstance(backend, DistributedBackend)
                assert backend.node_addresses == addresses
                assert np.array_equal(
                    backend.radius_counts(0.4),
                    DenseBackend(points).radius_counts(0.4),
                )
            finally:
                backend.close()

    def test_pool_stats_aggregates_nodes(self):
        points = DATASETS["random-2d"]
        with distributed_backend(points, 2, num_shards=4) as backend:
            backend.radius_counts(0.5)
            stats = backend.pool_stats()
        assert stats["num_nodes"] == 2
        assert len(stats["nodes"]) == 2
        assert all(entry is not None for entry in stats["nodes"])
        assert stats["fanouts"] >= 1
        assert stats["stolen_tasks"] == 0  # serial nodes never steal


class TestFaultInjection:
    """With ``retries=0`` (failover off — the PR 7 contract, preserved
    bit-for-bit) failures surface as clean errors: no hang, no partial
    merge, no redial, no adoption."""

    def test_per_call_timeout_fires(self, monkeypatch):
        """A stalled node must not hang the coordinator: the configured
        per-call timeout raises BackendUnavailableError and poisons the
        connection, so the next call fails fast too."""
        points = DATASETS["random-2d"]
        # In-thread server + serial node = the node's shard tasks run in
        # this process, so the _TASK_DELAY seam stalls shard 0 for real.
        monkeypatch.setattr(sharded_module, "_TASK_DELAY",
                            ("counts", 0, 2.0))
        with distributed_backend(points, 1, num_shards=2, timeout=0.4,
                                 retries=0) as backend:
            start = time.monotonic()
            with pytest.raises(BackendUnavailableError, match="timeout"):
                backend.radius_counts(0.5)
            assert time.monotonic() - start < 1.5
            start = time.monotonic()
            with pytest.raises(BackendUnavailableError):
                backend.radius_counts(0.5)  # poisoned: fails fast
            assert time.monotonic() - start < 0.1

    def test_dropped_connection_mid_read(self):
        """A node closing its socket instead of replying is a clean error,
        and diagnostics keep working around the dead node."""
        points = DATASETS["random-2d"]
        with distributed_backend(points, 2, num_shards=4,
                                 retries=0) as backend:
            backend._clients[0].send(("debug_drop",))
            # Depending on timing the OS reports the dead peer as a clean
            # EOF or a connection reset; both must surface as the same
            # clean error type.
            with pytest.raises(BackendUnavailableError, match="node"):
                backend.radius_counts(0.5)
            with pytest.raises(BackendUnavailableError):
                backend.kth_distances(2)  # still dead, still clean
            stats = backend.pool_stats()  # never raises
            assert stats["nodes"][0] is None
            assert stats["nodes"][1] is not None
            # Failover off: nothing was retried, adopted, or replayed.
            assert stats["redials"] == 0
            assert stats["adopted_shards"] == 0
            assert stats["replayed_tasks"] == 0

    def test_truncated_frame_mid_read(self):
        """A frame whose header promises more bytes than arrive (the peer
        died mid-write) surfaces as mid-message EOF, not a hang."""
        points = DATASETS["random-2d"]
        with distributed_backend(points, 2, num_shards=4,
                                 retries=0) as backend:
            backend._clients[1].send(("debug_truncate",))
            # Usually "mid-message" EOF; occasionally the server's close
            # RSTs the socket before the buffered half-frame is read.
            # Either way the error type must be the clean one.
            with pytest.raises(BackendUnavailableError, match="node"):
                backend.query_radius_counts(points[:3], 0.4)

    def test_no_partial_merge_on_submit(self):
        """A plan whose node died mid-flight raises from result() — it
        never merges the surviving shards' partials into a value."""
        points = DATASETS["random-2d"]
        with distributed_backend(points, 2, num_shards=4,
                                 retries=0) as backend:
            # Stall node 0 behind a long sleep, then drop it: the plan's
            # tasks for shards 0 and 2 are queued behind the sleep and the
            # connection dies before they answer.
            backend._clients[0].send(("debug_drop",))
            plan = QueryPlan()
            plan.count_within_many(points[:4], [0.5])
            future = backend.submit(plan)
            with pytest.raises(BackendUnavailableError):
                future.result()
            with pytest.raises(BackendUnavailableError):
                future.result()  # still an error on re-ask, never a value

    def test_read_timeout_is_total_deadline(self):
        """The per-call timeout is one overall deadline across every
        pipelined frame drained on the way to the awaited reply — not a
        per-frame budget.  Three sleeps of 0.35 s queued ahead of the
        target each deliver a frame *within* 0.5 s, so a per-frame timeout
        would happily wait ~1.05 s + reply; the total deadline must fire
        at ~0.5 s."""
        with node_cluster(1) as addresses:
            client = NodeClient(*parse_node_address(addresses[0]))
            try:
                for _ in range(3):
                    client.send(("debug_sleep", 0.35))
                pending = client.send(("ping",))
                start = time.monotonic()
                with pytest.raises(BackendUnavailableError, match="timeout"):
                    pending.wait(timeout=0.5)
                elapsed = time.monotonic() - start
                assert 0.3 < elapsed < 0.95, elapsed
            finally:
                client.close()

    def test_queries_after_close_raise(self):
        points = DATASETS["random-2d"]
        with node_cluster(1) as addresses:
            backend = DistributedBackend(points, nodes=addresses,
                                         num_shards=2)
            backend.close()
            with pytest.raises(BackendUnavailableError):
                backend.radius_counts(0.5)

    def test_init_failure_closes_clients(self):
        points = DATASETS["random-2d"]
        with pytest.raises((BackendUnavailableError, OSError)):
            DistributedBackend(points, nodes=["127.0.0.1:1"],
                               connect_timeout=0.5)

    def test_worker_exception_travels_without_killing_connection(self):
        """A node-side *computation* error is an op failure, not a
        transport failure: it raises RuntimeError with the node traceback
        and the connection keeps serving."""
        points = DATASETS["random-2d"]
        with distributed_backend(points, 1, num_shards=2) as backend:
            with pytest.raises(RuntimeError, match="failed"):
                backend._node_value(
                    0, backend._clients[0].call(("no_such_op",))
                )
            assert np.array_equal(
                backend.radius_counts(0.4),
                DenseBackend(points).radius_counts(0.4),
            )

    @pytest.mark.slow
    def test_killed_node_process_mid_plan(self):
        """The acceptance scenario: a real node *process* SIGKILLed while
        a plan is in flight.  With failover on (the default), result()
        recovers — the survivor adopts the dead node's shards and replays
        only its batch — and the plan's results are bitwise the dense
        reference's; the same backend keeps answering afterwards.  With
        ``retries=0`` the same kill raises cleanly instead."""
        points = DATASETS["random-2d"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

        def spawn_victim():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.neighbors.serve",
                 "--port", "0"],
                stdout=subprocess.PIPE, text=True, env=env, cwd=repo_root,
            )
            banner = proc.stdout.readline().split()
            assert banner[0] == "LISTENING"
            return proc, f"{banner[1]}:{banner[2]}"

        def build_plan():
            plan = QueryPlan()
            plan.count_within_many(points[:4], [0.5, 1.0])
            return plan

        dense = DenseBackend(points)
        reference = dense.execute(build_plan())

        # Failover on: the kill is absorbed, the results do not move.
        proc, victim = spawn_victim()
        try:
            with node_cluster(1) as survivors:
                backend = DistributedBackend(points,
                                             nodes=[victim, survivors[0]],
                                             num_shards=4,
                                             retry_backoff=0.05)
                try:
                    # Queue a long stall on the victim, then a plan behind
                    # it, then kill the process mid-flight.
                    backend._clients[0].send(("debug_sleep", 60.0))
                    future = backend.submit(build_plan())
                    proc.kill()
                    start = time.monotonic()
                    results = future.result()
                    assert time.monotonic() - start < 30.0
                    for slot, (value, expected) in enumerate(
                            zip(results, reference)):
                        assert results_equal(value, expected), slot
                    stats = backend.pool_stats()
                    assert stats["adopted_shards"] == 2  # shards 0 and 2
                    assert stats["replayed_tasks"] >= 2
                    assert stats["live_nodes"] == 1
                    # The backend keeps serving after the loss.
                    assert np.array_equal(backend.radius_counts(0.5),
                                          dense.radius_counts(0.5))
                finally:
                    backend.close()
        finally:
            proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()

        # Failover off: the same kill surfaces as a clean error within
        # seconds — no hang, no partial merge (the PR 7 contract).
        proc, victim = spawn_victim()
        try:
            with node_cluster(1) as survivors:
                backend = DistributedBackend(points,
                                             nodes=[victim, survivors[0]],
                                             num_shards=4, retries=0)
                try:
                    backend._clients[0].send(("debug_sleep", 60.0))
                    future = backend.submit(build_plan())
                    proc.kill()
                    start = time.monotonic()
                    with pytest.raises(BackendUnavailableError):
                        future.result()
                    assert time.monotonic() - start < 10.0
                finally:
                    backend.close()
                # The surviving node is unharmed: a fresh backend over it
                # alone still matches the dense reference.
                replacement = DistributedBackend(points, nodes=survivors,
                                                 num_shards=2)
                try:
                    assert np.array_equal(
                        replacement.radius_counts(0.5),
                        dense.radius_counts(0.5),
                    )
                finally:
                    replacement.close()
        finally:
            proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()


class TestFailover:
    """With retries on (the default) node death is absorbed: re-dial when
    the node comes back, ring-order shard adoption when it does not, replay
    of only the failed batch — and never a changed released bit."""

    def test_client_redial_and_ping(self):
        """NodeClient.redial() resets a poisoned client onto a fresh
        connection; ping() is the cheap health probe (False on a dead
        client or an unreachable server, never an exception)."""
        with node_cluster(1) as addresses:
            client = NodeClient(*parse_node_address(addresses[0]))
            try:
                assert client.ping()
                client.send(("debug_drop",))
                with pytest.raises(BackendUnavailableError):
                    client.call(("ping",))
                assert not client.alive
                assert client.ping() is False  # dead client: no exception
                client.redial()
                assert client.alive
                assert client.ping()
            finally:
                client.close()
        # Server gone: redial itself fails cleanly and leaves the client
        # poisoned with the re-dial error.
        with pytest.raises(BackendUnavailableError, match="re-dial"):
            client.redial(connect_timeout=0.5)
        assert not client.alive

    def test_redial_after_connection_drop(self):
        """A dropped connection with the server still up: the node is
        re-dialed (re-``init``), the failed batch replayed, nothing
        adopted — and the counts do not move a bit."""
        points = DATASETS["random-2d"]
        dense = DenseBackend(points)
        with distributed_backend(points, 2, num_shards=4,
                                 retry_backoff=0.01) as backend:
            before = backend.radius_counts(0.5)
            backend._clients[0].send(("debug_drop",))
            after = backend.radius_counts(0.5)
            assert results_equal(before, after)
            assert np.array_equal(after, dense.radius_counts(0.5))
            stats = backend.pool_stats()
            assert stats["redials"] == 1
            assert stats["adopted_shards"] == 0
            assert stats["replayed_tasks"] == 2  # node 0's shards 0 and 2
            assert stats["live_nodes"] == 2

    def test_replayed_init_is_idempotent(self):
        """The recovery path replays ``init`` on every fresh connection; a
        replay matching the connection's live backend must be a no-op
        (keeping warm caches), while a changed topology must rebuild."""
        points = DATASETS["random-2d"]
        with node_cluster(1) as addresses:
            client = NodeClient(*parse_node_address(addresses[0]))
            try:
                request = ("init", points, 4, 0, "auto")
                first = client.call(request)["value"]
                again = client.call(request)["value"]
                assert first["reused"] is False
                assert again["reused"] is True
                rebuilt = client.call(("init", points, 3, 0, "auto"))["value"]
                assert rebuilt["reused"] is False
                assert rebuilt["num_shards"] == 3
            finally:
                client.close()

    @pytest.mark.parametrize("num_nodes", (2, 3))
    def test_adoption_between_releases(self, small_cluster_data,
                                       loose_params, num_nodes):
        """A node killed *between* releases: the survivors adopt its
        shards and the next release is bitwise the healthy reference
        (2→1 and 3→2 topologies)."""
        points = small_cluster_data.points
        reference = good_radius(points, 200, loose_params, rng=11,
                                backend="dense")
        servers = [NodeServer().start() for _ in range(num_nodes)]
        try:
            backend = DistributedBackend(
                points, nodes=[server.address for server in servers],
                num_shards=4, retry_backoff=0.01,
            )
            try:
                healthy = good_radius(points, 200, loose_params, rng=11,
                                      backend=backend)
                servers[-1].stop()  # SIGKILL-equivalent for in-thread nodes
                # A fresh raw query first: the release below could be
                # answered from the coordinator's memoised statistic, and
                # the point here is to *hit* the dead node and adopt.
                assert np.array_equal(
                    backend.radius_counts(0.1234),
                    DenseBackend(points).radius_counts(0.1234),
                )
                degraded = good_radius(points, 200, loose_params, rng=11,
                                       backend=backend)
                stats = backend.pool_stats()
            finally:
                backend.close()
        finally:
            for server in servers:
                server.stop()
        for released in (healthy, degraded):
            assert released.radius == reference.radius
            assert released.score == reference.score
        assert stats["adopted_shards"] > 0
        assert stats["live_nodes"] == num_nodes - 1
        assert stats["nodes"][-1] is None

    def test_adoption_is_deterministic(self):
        """Same survivor set → same shard map: adoption follows the fixed
        next-live-node-in-ring-order rule, so two backends that lose the
        same node agree on every owner (same batching, same merges)."""
        points = DATASETS["random-2d"]
        owner_maps = []
        for _ in range(2):
            servers = [NodeServer().start() for _ in range(3)]
            try:
                backend = DistributedBackend(
                    points, nodes=[server.address for server in servers],
                    num_shards=7, retry_backoff=0.01,
                )
                try:
                    assert backend.shard_owners() == [
                        shard % 3 for shard in range(7)
                    ]
                    servers[1].stop()  # re-dial must fail: adoption, not retry
                    backend._recover_or_adopt(
                        1, BackendUnavailableError("test-injected failure")
                    )
                    owner_maps.append(backend.shard_owners())
                    assert backend.live_nodes == [0, 2]
                finally:
                    backend.close()
            finally:
                for server in servers:
                    server.stop()
        assert owner_maps[0] == owner_maps[1]
        # The ring rule, spelled out: home node 1 is dead, so its shards
        # (1 and 4) move to the next live node clockwise — node 2.
        assert owner_maps[0] == [0, 2, 2, 0, 2, 2, 0]

    def test_mid_plan_death_recovers(self):
        """A submitted (in-flight) plan whose node dies mid-flight:
        result() routes through the same recovery path and returns results
        bitwise identical to the healthy run's."""
        points = DATASETS["random-2d"]
        dense = DenseBackend(points)

        def build_plan():
            plan = QueryPlan()
            plan.count_within_many(points[:5], [0.3, 0.8])
            return plan

        reference = dense.execute(build_plan())
        with distributed_backend(points, 2, num_shards=4,
                                 retry_backoff=0.01) as backend:
            # The drop is queued *before* the plan: the server reads it
            # first and closes, so the plan's batch to node 1 is in flight
            # on a connection that will never answer (sending it after the
            # plan would be harmless — the server replies in order, so the
            # batch reply would already be on the wire).
            backend._clients[1].send(("debug_drop",))
            future = backend.submit(build_plan())
            results = future.result()
            assert future.done()
            for slot, (value, expected) in enumerate(zip(results, reference)):
                assert results_equal(value, expected), slot
            stats = backend.pool_stats()
            assert stats["redials"] == 1
            # Node 1's two tasks replay after the redial; in the rarer
            # race the *send* itself fails and the batch is re-routed
            # before it ever ran, which counts as nothing replayed.
            assert stats["replayed_tasks"] in (0, 2)

    def test_retry_exhaustion_raises_no_partial_merge(self):
        """Every node dead: recovery is exhausted and the collective
        raises the clean error — never a merge of the shards that did
        answer."""
        points = DATASETS["random-2d"]
        servers = [NodeServer().start() for _ in range(2)]
        backend = DistributedBackend(
            points, nodes=[server.address for server in servers],
            num_shards=4, retry_backoff=0.01,
        )
        try:
            future = backend.submit(QueryPlan())  # coordinator-only plan
            for server in servers:
                server.stop()
            start = time.monotonic()
            with pytest.raises(BackendUnavailableError):
                backend.radius_counts(0.5)
            assert time.monotonic() - start < 10.0
            with pytest.raises(BackendUnavailableError):
                backend.kth_distances(2)  # stays dead, stays clean
            assert future.result() == []  # empty plans never touch nodes
        finally:
            backend.close()
            for server in servers:
                server.stop()

    def test_good_center_release_survives_node_kill(self,
                                                    medium_cluster_data,
                                                    monkeypatch):
        """The acceptance pin: a `good_center` release with a node killed
        mid-run is byte-identical to the healthy-topology release.  The
        kill lands between collectives of the same run (while speculative
        plans may be in flight), so both the synchronous and the
        submitted-plan recovery paths are exercised."""
        points = medium_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        reference = good_center(points, radius=0.05, target=400,
                                params=params, rng=3)
        servers = [NodeServer().start() for _ in range(3)]
        calls = {"n": 0}
        original = DistributedBackend._send_batches

        def killing_send(self, tasks, indices, guard):
            calls["n"] += 1
            if calls["n"] == 4:  # mid-run: after init, before the end
                servers[1].stop()
            return original(self, tasks, indices, guard)

        monkeypatch.setattr(DistributedBackend, "_send_batches",
                            killing_send)
        try:
            backend = DistributedBackend(
                points, nodes=[server.address for server in servers],
                num_shards=6, retry_backoff=0.01,
            )
            try:
                released = good_center(points, radius=0.05, target=400,
                                       params=params, rng=3,
                                       backend=backend)
                stats = backend.pool_stats()
            finally:
                backend.close()
        finally:
            for server in servers:
                server.stop()
        assert calls["n"] >= 4, "the kill never landed; rotate the trigger"
        assert stats["adopted_shards"] == 2  # node 1's shards 1 and 4
        assert stats["replayed_tasks"] > 0
        assert stats["live_nodes"] == 2
        assert released.found == reference.found
        assert released.attempts == reference.attempts
        if reference.found:
            assert np.array_equal(released.center, reference.center)
            assert released.radius_bound == reference.radius_bound

    def test_iter_shards_wave_fills_node_workers(self, monkeypatch):
        """The streaming wave defaults to num_nodes × node_workers — one
        task per node-local worker slot per wave — so a node's whole pool
        is busy during a streaming walk, not just one worker."""
        points = DATASETS["random-2d"]
        # Server-side override keeps the nodes serial (cheap) while the
        # coordinator still *believes* node_workers=3, which is the side
        # the wave default must read.
        servers = [NodeServer(num_workers=0).start() for _ in range(2)]
        try:
            backend = DistributedBackend(
                points, nodes=[server.address for server in servers],
                node_workers=3, num_shards=12,
            )
            try:
                batches = []

                def fake_dispatch(self, tasks):
                    batches.append(len(tasks))
                    return [None] * len(tasks)

                monkeypatch.setattr(DistributedBackend, "_dispatch_tasks",
                                    fake_dispatch)
                drained = list(backend._iter_shards("counts", (0.5,)))
                assert len(drained) == 12
                assert batches == [6, 6]  # 2 nodes × 3 workers per wave
            finally:
                monkeypatch.undo()
                backend.close()
        finally:
            for server in servers:
                server.stop()

    def test_pool_stats_pipelines_requests(self, monkeypatch):
        """pool_stats writes every node's request before reading any
        reply (the init pattern), so the round trips overlap instead of
        serialising."""
        points = DATASETS["random-2d"]
        with distributed_backend(points, 3, num_shards=3) as backend:
            events = []
            original_send = NodeClient.send
            original_wait = PendingReply.wait

            def spy_send(self, request):
                if isinstance(request, tuple) and request \
                        and request[0] == "pool_stats":
                    events.append("send")
                return original_send(self, request)

            def spy_wait(self, timeout=None):
                events.append("wait")
                return original_wait(self, timeout)

            monkeypatch.setattr(NodeClient, "send", spy_send)
            monkeypatch.setattr(PendingReply, "wait", spy_wait)
            stats = backend.pool_stats()
            assert len(stats["nodes"]) == 3
            assert all(entry is not None for entry in stats["nodes"])
            assert events == ["send"] * 3 + ["wait"] * 3

    def test_config_threads_retry_knobs(self):
        """OneClusterConfig carries the failover knobs through to the
        backend constructor options (and validates them)."""
        config = OneClusterConfig(neighbor_backend="distributed",
                                  neighbor_nodes=("127.0.0.1:1",),
                                  neighbor_node_retries=0,
                                  neighbor_node_retry_backoff=0.25)
        assert config.neighbor_backend_options() == {
            "nodes": ["127.0.0.1:1"], "retries": 0, "retry_backoff": 0.25,
        }
        defaults = OneClusterConfig(neighbor_backend="distributed",
                                    neighbor_nodes=("127.0.0.1:1",))
        options = defaults.neighbor_backend_options()
        assert "retries" not in options and "retry_backoff" not in options
        with pytest.raises(ValueError, match="neighbor_node_retries"):
            OneClusterConfig(neighbor_node_retries=-1)
        with pytest.raises(ValueError, match="neighbor_node_retry_backoff"):
            OneClusterConfig(neighbor_node_retry_backoff=-0.1)


class TestWorkStealing:
    """Shard→worker affinity with stealing: idle slots drain the longest
    queue's tail, and stealing never moves a released byte."""

    def test_serial_backend_never_steals(self):
        points = DATASETS["random-2d"]
        backend = ShardedBackend(points, num_shards=6, num_workers=0)
        backend.radius_counts(0.5)
        assert backend.pool_stats()["stolen_tasks"] == 0
        backend.close()

    @pytest.mark.slow
    def test_pool_steals_from_slow_shard_and_matches_serial(self,
                                                            monkeypatch):
        """Shards ≫ workers with one seam-stalled shard: the idle slot
        steals the stalled slot's queued shards, pool_stats records it, and
        every count is bitwise the serial run's."""
        points = np.random.default_rng(8).uniform(size=(400, 3))
        radii = (0.0, 0.3, 0.8)
        serial = ShardedBackend(points, num_shards=8, num_workers=0)
        expected = [serial.radius_counts(r) for r in radii]
        serial.close()
        # Shard 0 (slot 0) stalls; slot 1 finishes its own shards and must
        # steal from slot 0's queue.  The seam is consulted inside the
        # forked workers, so it is set before the pool is created.
        monkeypatch.setattr(sharded_module, "_TASK_DELAY",
                            ("counts", 0, 0.75))
        pool = ShardedBackend(points, num_shards=8, num_workers=2)
        try:
            got = [pool.radius_counts(r) for r in radii]
            stats = pool.pool_stats()
        finally:
            pool.close()
        assert stats["parallel"], "pool fell back to serial; seam untested"
        assert stats["stolen_tasks"] > 0
        for counts, reference in zip(got, expected):
            assert np.array_equal(counts, reference)

    @pytest.mark.slow
    def test_stealing_disabled_keeps_affinity(self, monkeypatch):
        monkeypatch.setattr(ShardedBackend, "WORK_STEALING", False)
        monkeypatch.setattr(sharded_module, "_TASK_DELAY",
                            ("counts", 0, 0.25))
        points = np.random.default_rng(9).uniform(size=(200, 2))
        pool = ShardedBackend(points, num_shards=6, num_workers=2)
        try:
            counts = pool.radius_counts(0.4)
            stats = pool.pool_stats()
        finally:
            pool.close()
        assert stats["stolen_tasks"] == 0
        assert np.array_equal(counts, DenseBackend(points).radius_counts(0.4))


class TestTreeTruncatedCross:
    """The tree-backed per-shard truncated statistic is bitwise the
    brute-force kernel on every input — duplicates, boundary ties, d=1,
    d=24 — because the tree only *selects* the k nearest rows; the squared
    distances are recomputed by the same gather kernel and row-sorted."""

    def test_matches_bruteforce_on_fixed_cases(self):
        for name, points in DATASETS.items():
            backend = TreeBackend(points)
            queries = np.vstack([points[:9], points[:3] + 0.125])
            for k in (1, 2, points.shape[0] // 2, points.shape[0]):
                got = backend.truncated_squared_cross(queries, k)
                expected = truncated_squared_cross(queries, points, k, 64)
                assert got.tobytes() == expected.tobytes(), (name, k)

    def test_sharded_tree_inner_matches_chunked_inner(self):
        points = np.random.default_rng(4).uniform(size=(90, 2))
        radii = np.array([0.0, 0.2, 0.6, 2.0])
        tree = ShardedBackend(points, num_shards=3, num_workers=0,
                              inner_backend="tree")
        chunked = ShardedBackend(points, num_shards=3, num_workers=0,
                                 inner_backend="chunked")
        for target in (1, 9, 45, 90):
            assert np.array_equal(
                tree.capped_average_scores(radii, target),
                chunked.capped_average_scores(radii, target),
            )
        tree.close()
        chunked.close()

    def test_property_parity_with_oracle(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        coord = st.sampled_from([-1.0, -0.5, 0.0, 0.25, 0.5, 1.0, 3.0])

        @st.composite
        def cases(draw):
            d = draw(st.sampled_from([1, 2, 24]))
            n = draw(st.integers(min_value=1, max_value=25))
            rows = draw(st.lists(
                st.lists(coord, min_size=d, max_size=d),
                min_size=n, max_size=n,
            ))
            k = draw(st.integers(min_value=1, max_value=n + 3))
            q = draw(st.integers(min_value=1, max_value=n))
            return np.array(rows, dtype=float), k, q

        @settings(max_examples=40, deadline=None)
        @given(cases())
        def run(case):
            points, k, q = case
            backend = TreeBackend(points)
            queries = points[:q]
            got = backend.truncated_squared_cross(queries, k)
            expected = truncated_squared_cross(
                queries, points, min(k, points.shape[0]), 32
            )
            assert got.shape == expected.shape
            assert got.tobytes() == expected.tobytes()

        run()


class TestNodeServerBookkeeping:
    def test_finished_connections_are_pruned(self):
        # Regression: the server used to append every accepted connection
        # (and its thread) to its bookkeeping lists and only release them in
        # stop() — on a long-lived node, one dead socket + one finished
        # Thread object leaked per coordinator that ever dialed in.
        server = NodeServer().start()
        try:
            for _ in range(12):
                client = NodeClient(server.host, server.port)
                assert client.ping()
                client.close()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with server._lock:
                    if not server._connections and not server._threads:
                        break
                time.sleep(0.01)
            with server._lock:
                assert server._connections == []
                assert server._threads == []
        finally:
            server.stop()

    def test_live_connection_stays_tracked(self):
        # Pruning must only cover *finished* connections: a live one stays
        # in the lists so stop() can still shut it down.
        server = NodeServer().start()
        try:
            client = NodeClient(server.host, server.port)
            assert client.ping()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with server._lock:
                    if len(server._connections) == 1:
                        break
                time.sleep(0.01)
            with server._lock:
                assert len(server._connections) == 1
                assert len(server._threads) == 1
            client.close()
        finally:
            server.stop()
