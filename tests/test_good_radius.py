"""Tests for Algorithm GoodRadius (Lemma 3.6)."""

import numpy as np
import pytest

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.good_radius import RadiusScore, good_radius
from repro.datasets.adversarial import split_cluster_configuration
from repro.datasets.synthetic import identical_points_cluster, planted_cluster
from repro.geometry.balls import capped_average_score, counts_around_points
from repro.geometry.grid import GridDomain
from repro.geometry.minimal_ball import smallest_ball_two_approx


class TestRadiusScore:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(size=(80, 3))
        score = RadiusScore(points, target=25)
        for radius in (0.0, 0.1, 0.4, 1.0):
            direct = capped_average_score(points, radius, target=25)
            assert score.evaluate_single(radius) == pytest.approx(direct)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(size=(60, 2))
        score = RadiusScore(points, target=20)
        radii = np.linspace(0, 1.5, 37)
        batch = score.evaluate(radii)
        singles = np.array([score.evaluate_single(r) for r in radii])
        assert np.allclose(batch, singles)

    def test_negative_radius_gives_zero(self):
        points = np.random.default_rng(2).uniform(size=(20, 2))
        score = RadiusScore(points, target=5)
        assert score.evaluate(np.array([-0.5]))[0] == 0.0

    def test_monotone_in_radius(self):
        points = np.random.default_rng(3).uniform(size=(70, 2))
        score = RadiusScore(points, target=30)
        values = score.evaluate(np.linspace(0, 2, 50))
        assert np.all(np.diff(values) >= -1e-9)

    def test_capped_at_target(self):
        points = np.zeros((40, 2))
        score = RadiusScore(points, target=10)
        assert score.evaluate_single(1.0) == pytest.approx(10.0)

    def test_target_validation(self):
        points = np.zeros((10, 2))
        with pytest.raises(ValueError):
            RadiusScore(points, target=11)
        with pytest.raises(ValueError):
            RadiusScore(points, target=0)

    def test_split_cluster_sensitivity_example(self):
        """Section 3.1: the capped-average score barely moves on the
        adversarial split-cluster instance where the naive max-count score
        would drop by Omega(t)."""
        target = 100
        points = split_cluster_configuration(target)
        neighbour = points.copy()
        # Move the single middle point to join the right blob.
        middle_index = target // 2
        neighbour[middle_index] = 2.0
        before = capped_average_score(points, 1.0, target)
        after = capped_average_score(neighbour, 1.0, target)
        assert abs(before - after) <= 2.0 + 1e-9


class TestGoodRadius:
    def test_radius_close_to_optimal(self, medium_cluster_data, loose_params):
        data = medium_cluster_data
        target = 400
        reference = smallest_ball_two_approx(data.points, target)
        result = good_radius(data.points, target, loose_params, rng=3)
        assert not result.zero_cluster
        # Lemma 3.6: radius <= 4 r_opt <= 4 * (2-approx radius).
        assert result.radius <= 4.0 * reference.radius + 1e-9
        # And some ball of that radius must capture close to the target.
        best = int(np.max(counts_around_points(data.points, result.radius)))
        assert best >= target - 2 * result.gamma

    def test_radius_not_absurdly_small(self, medium_cluster_data, loose_params):
        data = medium_cluster_data
        target = 400
        result = good_radius(data.points, target, loose_params, rng=5)
        best = int(np.max(counts_around_points(data.points, result.radius)))
        assert best >= 100

    def test_zero_radius_cluster_detected(self, loose_params):
        points = identical_points_cluster(n=500, d=2, cluster_size=400, rng=0)
        result = good_radius(points, target=300, params=loose_params, rng=1)
        assert result.zero_cluster
        assert result.radius == 0.0

    def test_binary_search_method(self, medium_cluster_data, loose_params):
        data = medium_cluster_data
        config = OneClusterConfig(radius_method="binary_search")
        result = good_radius(data.points, 400, loose_params, config=config, rng=2)
        assert result.method == "binary_search"
        assert result.radius >= 0.0
        assert np.isfinite(result.radius)

    def test_explicit_domain(self, small_cluster_data, loose_params):
        domain = GridDomain.unit_cube(dimension=2, side=257)
        result = good_radius(small_cluster_data.points, 200, loose_params,
                             domain=domain, rng=4)
        assert result.radius <= domain.diameter

    def test_domain_dimension_mismatch(self, small_cluster_data, loose_params):
        domain = GridDomain.unit_cube(dimension=3, side=17)
        with pytest.raises(ValueError):
            good_radius(small_cluster_data.points, 200, loose_params, domain=domain)

    def test_requires_positive_delta(self, small_cluster_data):
        with pytest.raises(ValueError):
            good_radius(small_cluster_data.points, 200, PrivacyParams(1.0, 0.0))

    def test_target_validation(self, small_cluster_data, loose_params):
        with pytest.raises(ValueError):
            good_radius(small_cluster_data.points, 10 ** 6, loose_params)

    def test_ledger_records_spend(self, small_cluster_data, loose_params):
        ledger = PrivacyLedger()
        good_radius(small_cluster_data.points, 200, loose_params, rng=0,
                    ledger=ledger)
        total = ledger.total_basic()
        assert total is not None
        assert total.epsilon <= loose_params.epsilon + 1e-9

    def test_paper_constants_gamma_larger(self, small_cluster_data):
        params = PrivacyParams(2.0, 1e-6)
        practical = good_radius(small_cluster_data.points, 200, params, rng=0)
        paper = good_radius(small_cluster_data.points, 200, params, rng=0,
                            config=OneClusterConfig.paper())
        assert paper.gamma > practical.gamma

    def test_deterministic_with_seed(self, small_cluster_data, loose_params):
        a = good_radius(small_cluster_data.points, 200, loose_params, rng=42)
        b = good_radius(small_cluster_data.points, 200, loose_params, rng=42)
        assert a.radius == b.radius
