"""Documentation checks: README doctests and intra-repo link integrity.

The README's quickstart block is executable documentation — it must keep
passing ``python -m doctest`` (CI runs the same check in its docs job), and
every relative link in the top-level markdown files must point at a file or
directory that actually exists.
"""

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = ("README.md", "ARCHITECTURE.md", "ROADMAP.md")

#: Markdown inline links: [text](target); external and anchor links excluded.
_LINK = re.compile(r"\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def relative_links(text):
    for target in _LINK.findall(text):
        if not target.startswith(("http://", "https://", "mailto:")):
            yield target


@pytest.mark.parametrize("doc", DOC_FILES)
def test_relative_links_resolve(doc):
    path = REPO_ROOT / doc
    assert path.exists(), f"{doc} is missing"
    broken = [
        target for target in relative_links(path.read_text())
        if not (REPO_ROOT / target).exists()
    ]
    assert not broken, f"{doc} has broken relative links: {broken}"


def test_readme_quickstart_doctest():
    results = doctest.testfile(
        str(REPO_ROOT / "README.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, "README lost its doctest quickstart"
    assert results.failed == 0


def test_package_docstring_doctest():
    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
