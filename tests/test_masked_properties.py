"""Property-based parity suite for the masked aggregate queries.

The PR-4 extension of the ``test_parity_properties.py`` harness: the same
seeded dataset generators (duplicates, colinear, degenerate, integer grids)
sweep the *masked* view queries — ``masked_count`` / ``masked_sum`` /
``masked_minmax`` / ``masked_clipped_sum`` / ``masked_axis_histograms`` —
over a zoo of selections (empty, full, singleton, duplicate row multisets,
boolean masks, box-label predicates) and boundary clip radii (exact
point-to-centre distances, so the sphere mask hits representable values dead
on), asserting the library-wide contract *bitwise* on every draw: dense,
chunked, tree, and sharded (any shard count) backends — on identity and
projected views alike — return identical counts, identical correctly-rounded
exact sums, and identical first-occurrence-ordered histograms.

The float sums are the novel part: they are exact fixed-point reductions
(:mod:`repro.utils.exactsum`), so the reference below recomputes them
independently with ``fractions.Fraction`` arithmetic — not with numpy — and
the sweep doubles as a proof that every backend implements the *canonical*
(partition-independent) value, not merely the same accident of rounding.

Hypothesis runs derandomised and the sweep classes are marked ``slow`` (the
dedicated parity/property CI job); the plain validation tests at the bottom
stay in tier-1.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from test_parity_properties import SETTINGS, build_points, datasets, make_backends

from repro.geometry.balls import ball_membership
from repro.geometry.boxes import box_labels, interval_labels
from repro.geometry.jl import project_rows
from repro.neighbors import DenseBackend, ShardedBackend
from repro.neighbors.base import first_occurrence_cells


def exact_reference_sums(matrix: np.ndarray) -> np.ndarray:
    """Correctly-rounded per-column sums via ``Fraction`` arithmetic — an
    implementation entirely independent of :mod:`repro.utils.exactsum`."""
    columns = []
    for column in range(matrix.shape[1]):
        exact = sum((Fraction(float(v)) for v in matrix[:, column]),
                    Fraction(0))
        columns.append(float(exact))
    return np.asarray(columns, dtype=float)


def make_selections(view_factory, image: np.ndarray, seed: int) -> list:
    """The selection zoo, each entry ``(name, per-view selection factory)``.

    A factory takes the view it will be queried through and returns the
    selection object — row arrays and masks are view-independent, while a
    BoxSelection must be built from a view of the *queried* backend.
    """
    rng = np.random.default_rng(seed)
    n, k = image.shape
    width = float(rng.uniform(0.3, 1.5))
    shifts = rng.uniform(0.0, width, size=k)
    labels = box_labels(image, shifts, width)
    unique, counts = np.unique(labels, axis=0, return_counts=True)
    chosen = unique[int(np.argmax(counts))]
    box_mask = np.all(labels == chosen[None, :], axis=1)

    duplicated = rng.integers(0, n, size=min(2 * n, 64))
    singleton = np.asarray([int(rng.integers(0, n))], dtype=np.int64)
    random_mask = rng.uniform(size=n) < 0.4
    selections = [
        ("empty-rows", lambda view: np.empty(0, dtype=np.int64)),
        ("empty-mask", lambda view: np.zeros(n, dtype=bool)),
        ("full", lambda view: np.arange(n, dtype=np.int64)),
        ("singleton", lambda view: singleton.copy()),
        ("duplicate-rows", lambda view: duplicated.copy()),
        ("mask", lambda view: random_mask.copy()),
        ("box-mask", lambda view: box_mask.copy()),
        ("box-predicate",
         lambda view: view.box_selection(width, shifts, chosen)),
    ]
    return selections


def selection_reference_rows(selection, image, view) -> np.ndarray:
    from repro.neighbors.base import BoxSelection

    if isinstance(selection, BoxSelection):
        labels = box_labels(image, selection.shifts, selection.width)
        return np.flatnonzero(
            np.all(labels == selection.label[None, :], axis=1)
        )
    array = np.asarray(selection)
    if array.dtype == np.bool_:
        return np.flatnonzero(array)
    return np.sort(array, kind="stable")


@pytest.mark.slow
class TestMaskedAggregateParity:
    @SETTINGS
    @given(case=datasets, image_dim=st.integers(min_value=1, max_value=4),
           identity=st.booleans())
    def test_masked_aggregates_bitwise_equal(self, case, image_dim, identity):
        scenario, n, d, seed, shards = case
        points = build_points(scenario, n, d, seed)
        rng = np.random.default_rng(seed + 6)
        if identity:
            matrix = None
            image = points
            k = d
        else:
            matrix = rng.normal(size=(image_dim, d))
            image = project_rows(points, matrix)
            k = image_dim
        hist_width = float(rng.uniform(0.1, 1.0))
        backends = make_backends(points, shards)

        for name, factory in make_selections(None, image, seed + 7):
            # In-parent reference, independent of the backend layer.
            reference_view = backends["dense"].view(matrix)
            rows = selection_reference_rows(factory(reference_view), image,
                                            reference_view)
            selected = image[rows]
            ref_count = int(rows.shape[0])
            ref_sum = exact_reference_sums(selected)
            if ref_count:
                ref_minmax = np.vstack([selected.min(axis=0),
                                        selected.max(axis=0)])
            else:
                ref_minmax = np.vstack([np.full(k, np.inf),
                                        np.full(k, -np.inf)])
            # Clip at an *exact* point-to-centre distance so the sphere
            # boundary is hit dead on (<= must include it).
            center = (selected[0].copy() if ref_count
                      else np.zeros(k))
            if ref_count:
                distances = np.linalg.norm(selected - center[None, :],
                                           axis=1)
                positive = np.sort(distances[distances > 0])
                clip = float(positive[len(positive) // 2]) if positive.size \
                    else 0.0
            else:
                clip = 1.0
            inside = ball_membership(selected, center, clip)
            ref_clip_count = int(np.count_nonzero(inside))
            ref_clip_sum = exact_reference_sums(
                selected[inside] - center[None, :]
            )
            labels = interval_labels(selected, hist_width)
            ref_hists = [first_occurrence_cells(labels[:, axis])
                         for axis in range(k)]

            for backend_name, backend in backends.items():
                view = backend.view(matrix)
                selection = factory(view)
                context = (backend_name, scenario, name)
                assert view.masked_count(selection) == ref_count, context
                assert np.array_equal(view.masked_sum(selection),
                                      ref_sum), context
                assert np.array_equal(view.masked_minmax(selection),
                                      ref_minmax), context
                clipped = view.masked_clipped_sum(selection, center, clip)
                assert clipped.count == ref_clip_count, context
                assert np.array_equal(clipped.vector_sum,
                                      ref_clip_sum), context
                hists = view.masked_axis_histograms(selection, hist_width)
                assert len(hists) == k, context
                for axis in range(k):
                    assert np.array_equal(hists[axis][0],
                                          ref_hists[axis][0]), context
                    assert np.array_equal(hists[axis][1],
                                          ref_hists[axis][1]), context

    @SETTINGS
    @given(case=datasets)
    def test_cross_view_box_predicate(self, case):
        """A BoxSelection built over one view (the partition-search image)
        selects the same rows when evaluated through *another* view of the
        same backend (the rotated frame) — the shape GoodCenter steps 8-11
        rely on."""
        scenario, n, d, seed, shards = case
        points = build_points(scenario, n, d, seed)
        rng = np.random.default_rng(seed + 8)
        search_matrix = rng.normal(size=(min(3, d), d))
        basis = rng.normal(size=(d, d))
        search_image = project_rows(points, search_matrix)
        width = float(rng.uniform(0.3, 1.5))
        shifts = rng.uniform(0.0, width, size=search_image.shape[1])
        labels = box_labels(search_image, shifts, width)
        unique, counts = np.unique(labels, axis=0, return_counts=True)
        chosen = unique[int(np.argmax(counts))]
        rows = np.flatnonzero(np.all(labels == chosen[None, :], axis=1))
        rotated = project_rows(points, basis)[rows]
        ref_sum = exact_reference_sums(rotated)

        for name, backend in make_backends(points, shards).items():
            selection = backend.view(search_matrix).box_selection(
                width, shifts, chosen
            )
            rotated_view = backend.view(basis)
            assert rotated_view.masked_count(selection) == rows.shape[0], name
            assert np.array_equal(rotated_view.masked_sum(selection),
                                  ref_sum), name


class TestMaskedValidation:
    def test_bool_mask_shape_rejected(self):
        for backend in (DenseBackend(np.zeros((6, 2))),
                        ShardedBackend(np.zeros((6, 2)), num_shards=2,
                                       num_workers=0)):
            view = backend.view()
            with pytest.raises(ValueError):
                view.masked_count(np.zeros(4, dtype=bool))

    def test_rows_out_of_range_rejected(self):
        for backend in (DenseBackend(np.zeros((6, 2))),
                        ShardedBackend(np.zeros((6, 2)), num_shards=2,
                                       num_workers=0)):
            view = backend.view()
            with pytest.raises(ValueError):
                view.masked_sum(np.asarray([0, 6]))
            with pytest.raises(ValueError):
                view.masked_sum(np.asarray([-1]))

    def test_foreign_box_selection_rejected(self):
        points = np.arange(12.0).reshape(6, 2)
        selection = DenseBackend(points).view().box_selection(
            1.0, np.zeros(2), np.zeros(2, dtype=np.int64)
        )
        for backend in (DenseBackend(points),
                        ShardedBackend(points, num_shards=2, num_workers=0)):
            with pytest.raises(ValueError):
                backend.view().masked_count(selection)

    def test_clip_center_dimension_rejected(self):
        backend = DenseBackend(np.zeros((6, 3)))
        view = backend.view(np.ones((2, 3)))
        with pytest.raises(ValueError):
            view.masked_clipped_sum(np.arange(6), np.zeros(3), 1.0)

    def test_bad_label_shape_rejected(self):
        backend = DenseBackend(np.zeros((6, 3)))
        view = backend.view(np.ones((2, 3)))
        with pytest.raises(ValueError):
            view.box_selection(1.0, np.zeros(2), np.zeros(3, dtype=np.int64))

    def test_empty_selection_identities(self):
        for backend in (DenseBackend(np.arange(12.0).reshape(6, 2)),
                        ShardedBackend(np.arange(12.0).reshape(6, 2),
                                       num_shards=3, num_workers=0)):
            view = backend.view()
            empty = np.zeros(6, dtype=bool)
            assert view.masked_count(empty) == 0
            assert np.array_equal(view.masked_sum(empty), np.zeros(2))
            minmax = view.masked_minmax(empty)
            assert np.all(minmax[0] == np.inf)
            assert np.all(minmax[1] == -np.inf)
            clipped = view.masked_clipped_sum(empty, np.zeros(2), 1.0)
            assert clipped.count == 0
            assert np.array_equal(clipped.vector_sum, np.zeros(2))
            hists = view.masked_axis_histograms(empty, 0.5)
            assert all(labels.size == 0 and counts.size == 0
                       for labels, counts in hists)
