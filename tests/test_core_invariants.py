"""Property-based tests of core invariants used by the paper's analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting.params import PrivacyParams
from repro.core.config import GoodCenterConfig, OneClusterConfig
from repro.core.good_radius import RadiusScore
from repro.geometry.balls import pairwise_distances
from repro.geometry.grid import GridDomain
from repro.quasiconcave.quality import is_quasi_concave


points_strategy = st.integers(min_value=3, max_value=40).flatmap(
    lambda n: st.tuples(st.just(n), st.integers(min_value=1, max_value=4),
                        st.integers(min_value=0, max_value=10 ** 6))
)


class TestGoodRadiusQualityInvariants:
    @settings(max_examples=20, deadline=None)
    @given(points_strategy)
    def test_quality_function_is_quasi_concave(self, spec):
        """The GoodRadius quality Q(r) = 0.5*min(t - L(r/2), L(r) - t + 4Γ)
        must be quasi-concave in r (Lemma 4.6's argument) for RecConcave's
        guarantees to apply.  Verified on random instances over the full
        candidate-radius grid."""
        n, d, seed = spec
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(n, d))
        target = int(rng.integers(1, n + 1))
        gamma = float(rng.uniform(0.5, 5.0))
        score = RadiusScore(points, target)
        radii = np.linspace(0, np.sqrt(d), 80)
        l_at_r = score.evaluate(radii)
        l_at_half = score.evaluate(radii / 2.0)
        quality = 0.5 * np.minimum(target - l_at_half,
                                   l_at_r - target + 4.0 * gamma)
        assert is_quasi_concave(quality, tolerance=1e-7)

    @settings(max_examples=20, deadline=None)
    @given(points_strategy)
    def test_score_monotone_and_bounded(self, spec):
        n, d, seed = spec
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(n, d))
        target = int(rng.integers(1, n + 1))
        score = RadiusScore(points, target)
        radii = np.linspace(0, np.sqrt(d) + 0.5, 50)
        values = score.evaluate(radii)
        assert np.all(np.diff(values) >= -1e-9)
        assert np.all(values >= 0.0)
        assert np.all(values <= target + 1e-9)
        # At the domain diameter every point sees every other point.
        assert values[-1] == pytest.approx(target)


class TestGeometryInvariants:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=25),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_pairwise_distances_metric_properties(self, n, d, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-5, 5, size=(n, d))
        distances = pairwise_distances(points)
        assert np.allclose(distances, distances.T, atol=1e-7)
        assert np.allclose(np.diag(distances), 0.0)
        # Triangle inequality on a random triple.
        i, j, k = rng.integers(0, n, size=3)
        assert distances[i, k] <= distances[i, j] + distances[j, k] + 1e-7

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=3, max_value=65),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_grid_snap_is_idempotent_and_nearest(self, d, side, seed):
        rng = np.random.default_rng(seed)
        domain = GridDomain(dimension=d, side=side, low=-1.0, high=3.0)
        points = rng.uniform(-1.5, 3.5, size=(10, d))
        snapped = domain.snap(points)
        assert np.allclose(domain.snap(snapped), snapped, atol=1e-9)
        clipped = np.clip(points, domain.low, domain.high)
        assert np.all(np.abs(snapped - clipped) <= domain.step / 2 + 1e-9)


class TestConfigurationInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.001, max_value=0.5),
           st.integers(min_value=1, max_value=64),
           st.floats(min_value=0.001, max_value=1.0))
    def test_adaptive_box_width_always_fits_cluster(self, capture, k, radius):
        """The adaptively sized box is always strictly wider than the
        projected cluster's diameter, so capture is always possible."""
        config = GoodCenterConfig(capture_probability_target=capture)
        width = config.box_width(radius, k, identity_projection=True)
        assert width > 2.0 * radius

    def test_one_cluster_config_with_center_override(self):
        config = OneClusterConfig().with_center(jl_constant=10.0)
        assert config.center.jl_constant == 10.0
        # The original default is untouched (frozen dataclasses).
        assert OneClusterConfig().center.jl_constant != 10.0

    def test_budget_split_epsilons_sum_within_budget(self):
        config = GoodCenterConfig.practical()
        params = PrivacyParams(3.0, 1e-6)
        total = sum(fraction * params.epsilon for fraction in config.budget_split)
        assert total <= params.epsilon + 1e-12
