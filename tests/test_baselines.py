"""Tests for the Table-1 baseline solvers."""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.baselines.exponential_ball import (
    exponential_baseline_loss_bound,
    exponential_mechanism_cluster,
)
from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.baselines.private_aggregation import private_aggregation_cluster
from repro.baselines.threshold_release import (
    HierarchicalThresholdRelease,
    threshold_release_cluster_1d,
)
from repro.datasets.synthetic import planted_cluster
from repro.geometry.grid import GridDomain


class TestNonPrivate:
    def test_exact_in_1d(self):
        values = np.concatenate([np.random.default_rng(0).uniform(0.4, 0.45, 50),
                                 np.random.default_rng(1).uniform(0, 1, 100)])
        result = nonprivate_one_cluster(values.reshape(-1, 1), target=50)
        assert result.found
        assert result.ball.radius <= 0.03
        assert result.ball.count(values.reshape(-1, 1), slack=1e-9) >= 50

    def test_two_approx_in_higher_dimension(self, medium_cluster_data):
        data = medium_cluster_data
        result = nonprivate_one_cluster(data.points, target=400)
        assert result.ball.count(data.points, slack=1e-9) >= 400
        # The planted ball certifies r_opt <= 0.05, so the 2-approx is <= 0.1.
        assert result.ball.radius <= 2 * 0.05 + 1e-6

    def test_invalid_target(self, small_cluster_data):
        with pytest.raises(ValueError):
            nonprivate_one_cluster(small_cluster_data.points, target=10 ** 6)


class TestExponentialMechanismBaseline:
    def test_finds_cluster_on_small_grid(self):
        domain = GridDomain.unit_cube(dimension=2, side=17)
        data = planted_cluster(n=500, d=2, cluster_size=250, cluster_radius=0.05,
                               center=[0.5, 0.5], rng=0)
        snapped = domain.snap(np.clip(data.points, 0, 1))
        result = exponential_mechanism_cluster(snapped, target=200,
                                               params=PrivacyParams(4.0, 1e-6),
                                               domain=domain, rng=1)
        assert result.found
        error = np.linalg.norm(result.ball.center - np.array([0.5, 0.5]))
        assert error <= 0.2
        assert result.ball.count(snapped, slack=1e-9) >= 100

    def test_guards_against_huge_grids(self):
        domain = GridDomain.unit_cube(dimension=6, side=64)
        points = np.zeros((10, 6))
        with pytest.raises(ValueError):
            exponential_mechanism_cluster(points, 5, PrivacyParams(1.0), domain)

    def test_loss_bound_positive(self):
        domain = GridDomain.unit_cube(dimension=2, side=33)
        assert exponential_baseline_loss_bound(domain, PrivacyParams(1.0)) > 0


class TestPrivateAggregationBaseline:
    def test_works_for_majority_cluster(self):
        data = planted_cluster(n=800, d=2, cluster_size=700, cluster_radius=0.05,
                               center=[0.5, 0.5], rng=2)
        result = private_aggregation_cluster(data.points, target=500,
                                             params=PrivacyParams(4.0, 1e-6), rng=3)
        assert result.found
        error = np.linalg.norm(result.ball.center - np.array([0.5, 0.5]))
        assert error <= 0.2

    def test_fails_for_minority_cluster(self):
        """The documented weakness: with no majority cluster the trimmed-mean
        centre lands far from the (minority) planted cluster."""
        data = planted_cluster(n=2000, d=2, cluster_size=400,
                               cluster_radius=0.02, center=[0.15, 0.85], rng=4)
        result = private_aggregation_cluster(data.points, target=350,
                                             params=PrivacyParams(4.0, 1e-6), rng=5)
        error = np.linalg.norm(result.ball.center - np.array([0.15, 0.85]))
        assert error > 0.1  # centre pulled toward the global trimmed mean

    def test_result_structure(self, small_cluster_data):
        result = private_aggregation_cluster(small_cluster_data.points, 200,
                                             PrivacyParams(2.0, 1e-6), rng=0)
        assert result.radius_result.method == "private_aggregation"
        assert result.target == 200


class TestThresholdRelease:
    def test_tree_counts_close_to_truth(self):
        domain = GridDomain(dimension=1, side=257, low=0.0, high=1.0)
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, size=3000)
        release = HierarchicalThresholdRelease(domain, PrivacyParams(2.0), rng=1)
        release.fit(values)
        # Interval [0, 0.5] should contain roughly half the points.
        half_cell = 128
        count = release.interval_count(0, half_cell)
        assert abs(count - np.count_nonzero(values <= 0.5)) <= 200

    def test_prefix_counts_monotone_up_to_noise(self):
        domain = GridDomain(dimension=1, side=129, low=0.0, high=1.0)
        values = np.random.default_rng(1).uniform(0, 1, size=2000)
        release = HierarchicalThresholdRelease(domain, PrivacyParams(2.0), rng=2)
        release.fit(values)
        prefix = release.prefix_counts()
        assert prefix[-1] >= prefix[0]

    def test_query_before_fit_raises(self):
        domain = GridDomain(dimension=1, side=17, low=0.0, high=1.0)
        release = HierarchicalThresholdRelease(domain, PrivacyParams(1.0))
        with pytest.raises(RuntimeError):
            release.interval_count(0, 5)

    def test_rejects_multidimensional_domain(self):
        with pytest.raises(ValueError):
            HierarchicalThresholdRelease(GridDomain.unit_cube(2, 17),
                                         PrivacyParams(1.0))

    def test_cluster_recovery_1d(self):
        data = planted_cluster(n=3000, d=1, cluster_size=1200,
                               cluster_radius=0.03, center=[0.4], rng=3)
        result = threshold_release_cluster_1d(data.points, target=1000,
                                              params=PrivacyParams(2.0, 1e-6),
                                              rng=4)
        assert result.found
        assert abs(result.ball.center[0] - 0.4) <= 0.1
        # w = 1 regime: the released radius is close to the optimal one.
        assert result.ball.radius <= 0.1

    def test_error_bound_reported(self):
        domain = GridDomain(dimension=1, side=1025, low=0.0, high=1.0)
        release = HierarchicalThresholdRelease(domain, PrivacyParams(1.0))
        assert release.error_bound() > 0
