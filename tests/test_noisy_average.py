"""Tests for Algorithm NoisyAVG (Appendix A)."""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.mechanisms.noisy_average import noisy_average, noisy_average_error_bound


class TestNoisyAverage:
    def test_recovers_mean_with_many_points(self):
        rng = np.random.default_rng(0)
        points = rng.normal(0.5, 0.01, size=(3000, 3))
        result = noisy_average(points, diameter=1.0,
                               params=PrivacyParams(2.0, 1e-6), rng=1)
        assert result.found
        assert np.linalg.norm(result.value - 0.5) < 0.1

    def test_abstains_on_tiny_selected_set(self):
        points = np.zeros((3, 2))
        result = noisy_average(points, diameter=1.0,
                               params=PrivacyParams(0.5, 1e-8), rng=0)
        assert not result.found
        assert result.value is None

    def test_predicate_filters_points(self):
        inliers = np.full((2000, 2), 0.2)
        outliers = np.full((500, 2), 5.0)
        points = np.vstack([inliers, outliers])
        result = noisy_average(
            points, diameter=1.0, params=PrivacyParams(2.0, 1e-6),
            predicate=lambda pts: np.linalg.norm(pts, axis=1) < 1.0, rng=0,
        )
        assert result.found
        assert result.true_count == 2000
        assert np.linalg.norm(result.value - 0.2) < 0.2

    def test_center_recentring(self):
        center = np.array([10.0, 10.0])
        points = center + np.random.default_rng(0).normal(0, 0.01, size=(2000, 2))
        result = noisy_average(points, diameter=1.0,
                               params=PrivacyParams(2.0, 1e-6),
                               center=center, rng=1)
        assert result.found
        assert np.linalg.norm(result.value - center) < 0.2

    def test_requires_positive_delta(self):
        with pytest.raises(ValueError):
            noisy_average(np.zeros((10, 2)), 1.0, PrivacyParams(1.0, 0.0))

    def test_requires_positive_diameter(self):
        with pytest.raises(ValueError):
            noisy_average(np.zeros((10, 2)), 0.0, PrivacyParams(1.0, 1e-6))

    def test_bad_predicate_shape_rejected(self):
        with pytest.raises(ValueError):
            noisy_average(np.zeros((10, 2)), 1.0, PrivacyParams(1.0, 1e-6),
                          predicate=lambda pts: np.ones(3, dtype=bool))

    def test_noise_shrinks_with_count(self):
        params = PrivacyParams(1.0, 1e-6)
        small = noisy_average_error_bound(1.0, count=100, dimension=4,
                                          params=params, beta=0.1)
        large = noisy_average_error_bound(1.0, count=10_000, dimension=4,
                                          params=params, beta=0.1)
        assert large < small

    def test_sigma_reported(self):
        points = np.zeros((5000, 2))
        result = noisy_average(points, diameter=1.0,
                               params=PrivacyParams(1.0, 1e-6), rng=0)
        assert result.found
        assert result.sigma > 0
