"""Tests for repro.utils: iterated logs, RNG plumbing, validation, exact sums."""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.exactsum import (
    SCALE_BITS,
    exact_column_sums,
    fixed_point_column_sums,
    fixed_point_sum,
    fixed_point_to_float,
    merge_fixed_point,
)
from repro.utils.iterated_log import log_star, log_star_factor, tower
from repro.utils.rng import as_generator, permuted, random_unit_vector, spawn_generators
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_points,
    check_positive,
    check_probability,
)


class TestExactSum:
    """The fixed-point kernel is checked against an independent oracle:
    ``fractions.Fraction`` arithmetic over the exact binary values."""

    def test_matches_fraction_arithmetic(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            values = rng.normal(size=int(rng.integers(0, 200)))
            values *= 10.0 ** rng.integers(-200, 200)
            total = fixed_point_sum(values)
            exact = sum((Fraction(float(v)) for v in values), Fraction(0))
            assert Fraction(total, 1 << SCALE_BITS) == exact
            assert fixed_point_to_float(total) == float(exact)

    def test_partition_independent(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=137) * 1e120
        values[::7] = 5e-324          # subnormals mixed with huge values
        total = fixed_point_sum(values)
        for pieces in (2, 3, 7, 137):
            bounds = np.linspace(0, values.size, pieces + 1).astype(int)
            partials = [fixed_point_sum(values[low:high])
                        for low, high in zip(bounds, bounds[1:])]
            assert sum(partials) == total

    def test_catastrophic_cancellation_is_exact(self):
        # Plain float summation loses the 1.0 entirely; the exact kernel
        # must not.
        values = np.array([1e300, 1.0, -1e300])
        assert fixed_point_to_float(fixed_point_sum(values)) == 1.0

    def test_empty_and_zero(self):
        assert fixed_point_sum(np.empty(0)) == 0
        assert fixed_point_sum(np.zeros(5)) == 0
        assert fixed_point_to_float(0) == 0.0

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_sum(np.array([1.0, np.inf]))
        with pytest.raises(ValueError):
            fixed_point_sum(np.array([np.nan]))

    def test_column_sums_and_merge(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(60, 3))
        totals = fixed_point_column_sums(matrix)
        merged = merge_fixed_point([
            fixed_point_column_sums(matrix[:17]),
            fixed_point_column_sums(matrix[17:44]),
            fixed_point_column_sums(matrix[44:]),
        ])
        assert merged == totals
        floats = exact_column_sums(matrix)
        assert np.array_equal(
            floats,
            np.asarray([fixed_point_to_float(t) for t in totals]),
        )
        with pytest.raises(ValueError):
            fixed_point_column_sums(np.zeros(4))
        with pytest.raises(ValueError):
            merge_fixed_point([[1, 2], [3]])


class TestLogStar:
    def test_values_at_small_arguments(self):
        assert log_star(0.5) == 0
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_huge_argument_is_still_tiny(self):
        assert log_star(2 ** 64) <= 6

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            log_star(10, base=1.0)

    @given(st.floats(min_value=1.0, max_value=1e300))
    def test_monotone_nondecreasing(self, value):
        assert log_star(value) <= log_star(value * 2 + 1)

    def test_factor(self):
        assert log_star_factor(16, base=9.0) == pytest.approx(9.0 ** 3)


class TestTower:
    def test_small_heights(self):
        assert tower(0) == 1
        assert tower(1) == 2
        assert tower(2) == 4
        assert tower(3) == 16
        assert tower(4) == 65536

    def test_overflow_returns_inf(self):
        assert tower(7) == math.inf

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            tower(-1)

    def test_inverse_of_log_star(self):
        for height in range(5):
            assert log_star(tower(height)) == height


class TestRng:
    def test_as_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_as_generator_from_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_spawn_generators_independent(self):
        children = spawn_generators(0, 3)
        assert len(children) == 3
        draws = [child.integers(0, 10 ** 9) for child in children]
        assert len(set(draws)) == 3

    def test_spawn_generators_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_random_unit_vector_is_unit(self):
        vector = random_unit_vector(10, rng=0)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_permuted_preserves_elements(self):
        items = list(range(20))
        shuffled = permuted(items, rng=0)
        assert sorted(shuffled) == items


class TestValidation:
    def test_check_points_reshapes_1d(self):
        points = check_points([1.0, 2.0, 3.0])
        assert points.shape == (3, 1)

    def test_check_points_dimension_mismatch(self):
        with pytest.raises(ValueError):
            check_points(np.zeros((5, 3)), dimension=2)

    def test_check_points_rejects_nan(self):
        with pytest.raises(ValueError):
            check_points(np.array([[0.0, np.nan]]))

    def test_check_points_rejects_empty(self):
        with pytest.raises(ValueError):
            check_points(np.zeros((0, 2)))

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(0.0, "p")
        assert check_probability(0.0, "p", allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_probability(1.0, "p")

    def test_check_in_range(self):
        assert check_in_range(3, "x", 1, 5) == 3
        with pytest.raises(ValueError):
            check_in_range(6, "x", 1, 5)

    def test_check_integer(self):
        assert check_integer(5, "k") == 5
        assert check_integer(5.0, "k") == 5
        with pytest.raises(ValueError):
            check_integer(5.5, "k")
        with pytest.raises(TypeError):
            check_integer(True, "k")
        with pytest.raises(ValueError):
            check_integer(0, "k", minimum=1)
