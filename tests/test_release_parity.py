"""Seeded release-parity regression tests.

The repo's central invariant: the neighbor-backend choice is *pure
performance* — at a fixed seed, every private release is bit-identical
whether the distance/grid-hash queries run in the parent, through an
in-process backend, or merged across shards.  These tests pin that contract
for the end-to-end algorithms (``good_center`` on both projection paths,
``good_radius``, ``one_cluster``) by comparing each named backend against
the in-parent reference at fixed seeds; the low-level query parity behind it
is covered property-style in ``test_parity_properties.py``.
"""

import sys

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.core.config import GoodCenterConfig, OneClusterConfig
from repro.core.good_center import good_center
from repro.core.good_radius import good_radius
from repro.core.one_cluster import one_cluster

# The repro.core package rebinds the name ``good_center`` to the function, so
# the module object (whose _REUSE_SEARCH_LABELS seam the reuse test flips)
# must be fetched from sys.modules.
good_center_module = sys.modules["repro.core.good_center"]


@pytest.fixture(scope="module")
def jl_cluster_points():
    """A d=8 planted cluster used with a small ``jl_constant`` so GoodCenter
    takes the non-identity (JL + rotated-axis) path."""
    rng = np.random.default_rng(3)
    dimension = 8
    center = np.full(dimension, 0.5)
    cluster = center + rng.normal(0, 0.015, size=(900, dimension))
    noise = rng.uniform(0, 1, size=(300, dimension))
    return np.vstack([cluster, noise])


JL_CONFIG = GoodCenterConfig(jl_constant=0.3)
LOOSE = PrivacyParams(8.0, 1e-5)
GENEROUS = PrivacyParams(16.0, 1e-4)


def assert_same_center_release(reference, other):
    """Bitwise equality of two GoodCenterResults."""
    assert other.found == reference.found
    assert other.attempts == reference.attempts
    assert other.projected_dimension == reference.projected_dimension
    if reference.found:
        assert np.array_equal(other.center, reference.center)
        assert other.radius_bound == reference.radius_bound
        assert other.captured_count == reference.captured_count
    else:
        assert other.center is None
        assert other.radius_bound == float("inf")


class TestGoodCenterReleaseParity:
    def test_identity_path(self, medium_cluster_data, neighbor_backend):
        points = medium_cluster_data.points
        for seed in (0, 7):
            reference = good_center(points, radius=0.05, target=400,
                                    params=LOOSE, rng=seed)
            assert reference.projected_dimension == points.shape[1]
            result = good_center(points, radius=0.05, target=400,
                                 params=LOOSE, rng=seed,
                                 backend=neighbor_backend(points))
            assert_same_center_release(reference, result)

    def test_jl_path(self, jl_cluster_points, neighbor_backend):
        points = jl_cluster_points
        for seed in (1, 4):
            reference = good_center(points, radius=0.1, target=700,
                                    params=GENEROUS, config=JL_CONFIG,
                                    rng=seed)
            assert reference.projected_dimension < points.shape[1]
            result = good_center(points, radius=0.1, target=700,
                                 params=GENEROUS, config=JL_CONFIG, rng=seed,
                                 backend=neighbor_backend(points))
            assert_same_center_release(reference, result)

    def test_partition_batch_size_is_invisible(self, jl_cluster_points):
        """Releases are independent of the view batch size (the shift and
        AboveThreshold-noise streams are split precisely so batched lookahead
        cannot reorder any draw)."""
        points = jl_cluster_points
        reference = good_center(points, radius=0.1, target=700,
                                params=GENEROUS, config=JL_CONFIG, rng=2)
        for batch in (1, 3, 16):
            config = GoodCenterConfig(jl_constant=0.3,
                                      partition_batch_size=batch)
            result = good_center(points, radius=0.1, target=700,
                                 params=GENEROUS, config=config, rng=2,
                                 backend="chunked")
            assert_same_center_release(reference, result)


class TestStep7LabelReuse:
    def test_release_byte_identical_with_and_without_reuse(
            self, medium_cluster_data, jl_cluster_points, monkeypatch):
        """The step-7 fix: the in-parent search hands its winning attempt's
        label array to the box choice instead of rehashing the projected
        points.  Disabling the reuse (forcing the historical recompute) must
        not move a byte of the release — on either projection path."""
        cases = [
            (medium_cluster_data.points, 0.05, 400, LOOSE, None),
            (jl_cluster_points, 0.1, 700, GENEROUS, JL_CONFIG),
        ]
        for points, radius, target, params, config in cases:
            with_reuse = good_center(points, radius=radius, target=target,
                                     params=params, config=config, rng=7)
            monkeypatch.setattr(good_center_module, "_REUSE_SEARCH_LABELS",
                                False)
            without_reuse = good_center(points, radius=radius, target=target,
                                        params=params, config=config, rng=7)
            monkeypatch.setattr(good_center_module, "_REUSE_SEARCH_LABELS",
                                True)
            assert_same_center_release(with_reuse, without_reuse)

    def test_search_does_not_rehash_for_step_7(self, medium_cluster_data,
                                               monkeypatch):
        """label_array runs once per search attempt and never again: step 7
        consumes the winning attempt's array."""
        from repro.geometry.boxes import ShiftedBoxPartition

        calls = []
        original = ShiftedBoxPartition.label_array

        def spy(self, points):
            calls.append(self)
            return original(self, points)

        monkeypatch.setattr(ShiftedBoxPartition, "label_array", spy)
        result = good_center(medium_cluster_data.points, radius=0.05,
                             target=400, params=LOOSE, rng=7)
        assert result.found
        assert len(calls) == result.attempts


class TestRotatedStageMigration:
    """The steps 8-11 migration seam: with a backend, the rotated stage runs
    shard-side (label-predicate selection, merged per-axis histograms,
    NoisyAVG from merged exact-sum statistics).  Disabling the seam forces
    the historical in-parent rotated stage; because the merged statistics
    are canonical (exact fixed-point sums, first-occurrence histogram
    order), flipping the flag must not move a byte of any release — on
    either projection path, on every backend."""

    def test_release_byte_identical_with_and_without_shard_side(
            self, medium_cluster_data, jl_cluster_points, neighbor_backend,
            monkeypatch):
        cases = [
            (medium_cluster_data.points, 0.05, 400, LOOSE, None),
            (jl_cluster_points, 0.1, 700, GENEROUS, JL_CONFIG),
        ]
        for points, radius, target, params, config in cases:
            backend = neighbor_backend(points)
            shard_side = good_center(points, radius=radius, target=target,
                                     params=params, config=config, rng=7,
                                     backend=backend)
            monkeypatch.setattr(good_center_module,
                                "_SHARD_SIDE_ROTATED_STAGE", False)
            in_parent = good_center(points, radius=radius, target=target,
                                    params=params, config=config, rng=7,
                                    backend=backend)
            monkeypatch.setattr(good_center_module,
                                "_SHARD_SIDE_ROTATED_STAGE", True)
            assert_same_center_release(in_parent, shard_side)

    def test_noisy_avg_abstain_branch_parity(self, jl_cluster_points,
                                             neighbor_backend, monkeypatch):
        """Starving NoisyAVG's budget slice makes its pessimistic count go
        non-positive, so GoodCenter reaches step 11 and abstains.  The
        abstain decision depends on the merged selected count and the
        Laplace draw — both must match the in-parent path bit for bit, on
        both seam settings."""
        starved = GoodCenterConfig(jl_constant=0.3,
                                   budget_split=(0.4, 0.4, 0.15, 0.001))
        points = jl_cluster_points
        reference = good_center(points, radius=0.1, target=700,
                                params=GENEROUS, config=starved, rng=4)
        assert not reference.found
        # Sanity: only the starved NoisyAVG slice makes this seed fail.
        control = good_center(points, radius=0.1, target=700, params=GENEROUS,
                              config=JL_CONFIG, rng=4)
        assert control.found
        for shard_side in (True, False):
            monkeypatch.setattr(good_center_module,
                                "_SHARD_SIDE_ROTATED_STAGE", shard_side)
            result = good_center(points, radius=0.1, target=700,
                                 params=GENEROUS, config=starved, rng=4,
                                 backend=neighbor_backend(points))
            assert_same_center_release(reference, result)
        monkeypatch.setattr(good_center_module, "_SHARD_SIDE_ROTATED_STAGE",
                            True)


class TestFusedPlanSeam:
    """The PR 5 migration seam: with a backend, every GoodCenter stage rides
    a fused :class:`~repro.neighbors.QueryPlan` (one round trip per shard
    per stage).  Disabling the seam forces the PR 4 per-query fan-outs;
    because plans change transport only — the serial evaluator runs the
    identical primitives and the sharded merges are the same shard-order
    folds — flipping the flag must not move a byte of any release, on
    either projection path, on every backend."""

    def test_release_byte_identical_with_and_without_plans(
            self, medium_cluster_data, jl_cluster_points, neighbor_backend,
            monkeypatch):
        cases = [
            (medium_cluster_data.points, 0.05, 400, LOOSE, None),
            (jl_cluster_points, 0.1, 700, GENEROUS, JL_CONFIG),
        ]
        for points, radius, target, params, config in cases:
            backend = neighbor_backend(points)
            fused = good_center(points, radius=radius, target=target,
                                params=params, config=config, rng=7,
                                backend=backend)
            monkeypatch.setattr(good_center_module, "_FUSED_QUERY_PLANS",
                                False)
            unfused = good_center(points, radius=radius, target=target,
                                  params=params, config=config, rng=7,
                                  backend=backend)
            monkeypatch.setattr(good_center_module, "_FUSED_QUERY_PLANS",
                                True)
            assert_same_center_release(fused, unfused)


class TestGoodRadiusReleaseParity:
    def test_release_identical(self, small_cluster_data, loose_params,
                               neighbor_backend):
        points = small_cluster_data.points
        reference = good_radius(points, 200, loose_params, rng=11,
                                backend="dense")
        result = good_radius(points, 200, loose_params, rng=11,
                             backend=neighbor_backend(points))
        assert result.radius == reference.radius
        assert result.score == reference.score
        assert result.zero_cluster == reference.zero_cluster


class TestOneClusterReleaseParity:
    def test_release_identical(self, small_cluster_data, neighbor_backend):
        points = small_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        reference = one_cluster(points, target=250, params=params, rng=4,
                                backend="dense")
        result = one_cluster(points, target=250, params=params, rng=4,
                             backend=neighbor_backend(points))
        assert result.found == reference.found
        assert (result.radius_result.radius
                == reference.radius_result.radius)
        assert_same_center_release(reference.center_result,
                                   result.center_result)
        if reference.found:
            assert np.array_equal(result.ball.center, reference.ball.center)
            assert result.ball.radius == reference.ball.radius

    def test_config_backend_selection_identical(self, small_cluster_data):
        """Selecting the backend through OneClusterConfig releases the same
        ball as the explicit backend= argument."""
        points = small_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        reference = one_cluster(points, target=250, params=params, rng=9,
                                backend="chunked")
        config = OneClusterConfig(neighbor_backend="chunked")
        result = one_cluster(points, target=250, params=params, rng=9,
                             config=config)
        assert result.found == reference.found
        if reference.found:
            assert np.array_equal(result.ball.center, reference.ball.center)
            assert result.ball.radius == reference.ball.radius
