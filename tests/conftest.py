"""Shared fixtures for the test suite.

Tests of the private algorithms use generous privacy budgets and fixed seeds
so that the (randomised) utility assertions hold deterministically; the
privacy-accounting tests exercise the budget arithmetic separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.datasets.synthetic import planted_cluster

#: The ``backend=`` selections the ``neighbor_backend`` fixture cycles
#: through.  "reference" is the in-parent path (``backend=None``); "sharded"
#: builds a 3-shard serial instance so the fan-out/merge code runs without a
#: worker pool (pool transport itself is covered by the slow suite).
BACKEND_CHOICES = ("reference", "dense", "chunked", "tree", "sharded")


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        choices=BACKEND_CHOICES,
        help="restrict tests using the neighbor_backend fixture to one "
             "backend (default: run them across all of them)",
    )


def pytest_generate_tests(metafunc):
    if "neighbor_backend" in metafunc.fixturenames:
        option = metafunc.config.getoption("--backend")
        names = [option] if option else list(BACKEND_CHOICES)
        metafunc.parametrize("neighbor_backend", names, indirect=True)


@pytest.fixture
def neighbor_backend(request):
    """A per-backend factory: ``neighbor_backend(points)`` returns the value
    to pass as ``backend=`` for the parametrized backend name.

    End-to-end tests take this fixture to run once per backend without
    duplicating their bodies; ``pytest --backend dense`` (etc.) restricts the
    sweep to a single strategy.  The selected name is exposed as
    ``neighbor_backend.backend_name``.
    """
    name = request.param

    def factory(points):
        if name == "reference":
            return None
        if name == "sharded":
            from repro.neighbors import ShardedBackend

            return ShardedBackend(points, num_shards=3, num_workers=0)
        return name

    factory.backend_name = name
    return factory


@pytest.fixture
def rng():
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def loose_params():
    """A generous privacy budget used for utility assertions."""
    return PrivacyParams(epsilon=8.0, delta=1e-5)


@pytest.fixture
def standard_params():
    """A typical budget used for accounting / plumbing tests."""
    return PrivacyParams(epsilon=1.0, delta=1e-6)


@pytest.fixture
def small_cluster_data():
    """A small planted-cluster dataset (n=600, d=2) shared across tests."""
    return planted_cluster(n=600, d=2, cluster_size=250, cluster_radius=0.05,
                           center=[0.5, 0.5], rng=7)


@pytest.fixture
def medium_cluster_data():
    """A medium planted-cluster dataset (n=1200, d=4)."""
    return planted_cluster(n=1200, d=4, cluster_size=500, cluster_radius=0.05,
                           center=[0.5, 0.5, 0.5, 0.5], rng=11)
