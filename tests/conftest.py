"""Shared fixtures for the test suite.

Tests of the private algorithms use generous privacy budgets and fixed seeds
so that the (randomised) utility assertions hold deterministically; the
privacy-accounting tests exercise the budget arithmetic separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.datasets.synthetic import planted_cluster


@pytest.fixture
def rng():
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def loose_params():
    """A generous privacy budget used for utility assertions."""
    return PrivacyParams(epsilon=8.0, delta=1e-5)


@pytest.fixture
def standard_params():
    """A typical budget used for accounting / plumbing tests."""
    return PrivacyParams(epsilon=1.0, delta=1e-6)


@pytest.fixture
def small_cluster_data():
    """A small planted-cluster dataset (n=600, d=2) shared across tests."""
    return planted_cluster(n=600, d=2, cluster_size=250, cluster_radius=0.05,
                           center=[0.5, 0.5], rng=7)


@pytest.fixture
def medium_cluster_data():
    """A medium planted-cluster dataset (n=1200, d=4)."""
    return planted_cluster(n=1200, d=4, cluster_size=500, cluster_radius=0.05,
                           center=[0.5, 0.5, 0.5, 0.5], rng=11)
