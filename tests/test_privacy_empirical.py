"""Empirical differential-privacy sanity checks.

These tests estimate output distributions of the primitive mechanisms on a
pair of neighbouring databases and verify that no event's probability ratio
wildly exceeds ``exp(epsilon)`` (allowing for Monte-Carlo slack and the
``delta`` term).  They are sanity checks on the implementations' noise
calibration — a true privacy proof is analytical — but they reliably catch
calibration regressions such as dropping a factor of two in a scale.
"""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.histogram import stable_histogram_choice
from repro.mechanisms.laplace import laplace_counting_query
from repro.geometry.balls import capped_average_score


def _event_probability(samples, event) -> float:
    samples = np.asarray(samples)
    return float(np.mean(event(samples)))


class TestLaplaceCalibration:
    def test_counting_query_ratio_bounded(self):
        epsilon = 1.0
        params = PrivacyParams(epsilon)
        trials = 4000
        # Neighbouring counts differ by 1 (sensitivity of a counting query).
        a = np.array([laplace_counting_query(100, params, rng=seed)
                      for seed in range(trials)])
        b = np.array([laplace_counting_query(101, params, rng=seed + trials)
                      for seed in range(trials)])
        for threshold in (99.0, 100.0, 101.0, 102.0):
            p_a = max(_event_probability(a, lambda s: s >= threshold), 1.0 / trials)
            p_b = max(_event_probability(b, lambda s: s >= threshold), 1.0 / trials)
            ratio = max(p_a / p_b, p_b / p_a)
            # exp(epsilon) = 2.72; allow generous Monte-Carlo slack.
            assert ratio <= np.exp(epsilon) * 1.6

    def test_wrong_calibration_would_fail(self):
        """The same check applied to deliberately under-noised outputs fails,
        demonstrating that the test has teeth."""
        epsilon = 1.0
        trials = 4000
        rng = np.random.default_rng(0)
        # Noise 10x too small relative to the claimed epsilon.
        a = 100 + rng.laplace(0, 0.1 / epsilon, size=trials)
        b = 101 + rng.laplace(0, 0.1 / epsilon, size=trials)
        threshold = 100.5
        p_a = max(_event_probability(a, lambda s: s >= threshold), 1.0 / trials)
        p_b = max(_event_probability(b, lambda s: s >= threshold), 1.0 / trials)
        assert max(p_a / p_b, p_b / p_a) > np.exp(epsilon) * 1.6


class TestExponentialMechanismCalibration:
    def test_selection_probability_ratio(self):
        epsilon = 1.0
        params = PrivacyParams(epsilon)
        trials = 3000
        # Neighbouring quality vectors: each score moves by at most 1.
        scores_a = [5.0, 4.0, 0.0]
        scores_b = [4.0, 5.0, 1.0]
        picks_a = np.array([exponential_mechanism(scores_a, params, rng=seed)
                            for seed in range(trials)])
        picks_b = np.array([exponential_mechanism(scores_b, params, rng=seed + trials)
                            for seed in range(trials)])
        for candidate in range(3):
            p_a = max(float(np.mean(picks_a == candidate)), 1.0 / trials)
            p_b = max(float(np.mean(picks_b == candidate)), 1.0 / trials)
            ratio = max(p_a / p_b, p_b / p_a)
            assert ratio <= np.exp(epsilon) * 1.6


class TestHistogramStability:
    def test_unreleased_cell_stays_unreleased_on_neighbour(self):
        """A cell with a single occupant must (essentially) never be released,
        on either of two neighbouring databases — this is the delta-event the
        stability argument controls."""
        params = PrivacyParams(1.0, 1e-6)
        labels_a = ["big"] * 300 + ["rare"]
        labels_b = ["big"] * 301
        releases = 0
        for seed in range(300):
            choice_a = stable_histogram_choice(labels_a, params, rng=seed)
            choice_b = stable_histogram_choice(labels_b, params, rng=seed)
            releases += int(choice_a.key == "rare") + int(choice_b.key == "rare")
        assert releases == 0


class TestScoreSensitivityUnderSwap:
    @pytest.mark.parametrize("seed", range(5))
    def test_capped_average_score_swap_sensitivity(self, seed):
        """Lemma 4.5 (swap model): replacing one point changes L by <= 2."""
        rng = np.random.default_rng(seed)
        n = 40
        points = rng.uniform(size=(n, 3))
        for _ in range(10):
            neighbour = points.copy()
            neighbour[rng.integers(0, n)] = rng.uniform(size=3)
            target = int(rng.integers(1, n + 1))
            radius = float(rng.uniform(0, 1.0))
            delta = abs(capped_average_score(points, radius, target)
                        - capped_average_score(neighbour, radius, target))
            assert delta <= 2.0 + 1e-9
