"""Tests for the synthetic and adversarial dataset generators."""

import numpy as np
import pytest

from repro.datasets.adversarial import (
    figure1_cross_configuration,
    figure2_interval_configuration,
    split_cluster_configuration,
)
from repro.datasets.synthetic import (
    clustered_with_outliers,
    gaussian_blobs,
    geospatial_hotspots,
    identical_points_cluster,
    mixture_of_gaussians,
    planted_cluster,
    uniform_background,
)


class TestPlantedCluster:
    def test_shapes_and_bookkeeping(self):
        data = planted_cluster(n=500, d=3, cluster_size=200, cluster_radius=0.05,
                               rng=0)
        assert data.points.shape == (500, 3)
        assert data.n == 500
        assert data.dimension == 3
        assert data.cluster_size == 200
        assert data.cluster_points.shape == (200, 3)

    def test_cluster_members_inside_true_ball(self):
        data = planted_cluster(n=400, d=4, cluster_size=150, cluster_radius=0.07,
                               rng=1)
        assert np.all(data.true_ball.contains(data.cluster_points, slack=1e-9))

    def test_explicit_center(self):
        data = planted_cluster(n=300, d=2, cluster_size=100, cluster_radius=0.05,
                               center=[0.2, 0.8], rng=2)
        assert np.allclose(data.true_ball.center, [0.2, 0.8])

    def test_deterministic_with_seed(self):
        a = planted_cluster(n=100, d=2, cluster_size=40, cluster_radius=0.1, rng=3)
        b = planted_cluster(n=100, d=2, cluster_size=40, cluster_radius=0.1, rng=3)
        assert np.array_equal(a.points, b.points)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            planted_cluster(n=10, d=2, cluster_size=20, cluster_radius=0.1)
        with pytest.raises(ValueError):
            planted_cluster(n=10, d=2, cluster_size=5, cluster_radius=0.0)


class TestOtherGenerators:
    def test_uniform_background_bounds(self):
        points = uniform_background(200, 3, low=-1.0, high=2.0, rng=0)
        assert points.shape == (200, 3)
        assert points.min() >= -1.0
        assert points.max() <= 2.0

    def test_gaussian_blobs(self):
        points, labels, centers = gaussian_blobs(n=300, d=2, k=3, rng=1)
        assert points.shape == (300, 2)
        assert labels.shape == (300,)
        assert centers.shape == (3, 2)
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_gaussian_blobs_weights(self):
        points, labels, _ = gaussian_blobs(n=2000, d=2, k=2,
                                           weights=[0.9, 0.1], rng=2)
        assert np.mean(labels == 0) > 0.7

    def test_clustered_with_outliers(self):
        points, is_outlier = clustered_with_outliers(n=500, d=2,
                                                     outlier_fraction=0.2, rng=3)
        assert points.shape == (500, 2)
        assert int(np.count_nonzero(is_outlier)) == 100

    def test_outliers_are_far_from_inliers(self):
        points, is_outlier = clustered_with_outliers(n=500, d=2,
                                                     outlier_fraction=0.1,
                                                     cluster_spread=0.02, rng=4)
        inlier_center = points[~is_outlier].mean(axis=0)
        inlier_dist = np.linalg.norm(points[~is_outlier] - inlier_center, axis=1)
        outlier_dist = np.linalg.norm(points[is_outlier] - inlier_center, axis=1)
        assert np.median(outlier_dist) > 3 * np.median(inlier_dist)

    def test_geospatial_hotspots(self):
        points, centers = geospatial_hotspots(n=600, num_hotspots=3, rng=5)
        assert points.shape == (600, 2)
        assert centers.shape == (3, 2)
        assert points.min() >= 0 and points.max() <= 1

    def test_identical_points_cluster(self):
        points = identical_points_cluster(n=200, d=2, cluster_size=120, rng=6)
        values, counts = np.unique(points, axis=0, return_counts=True)
        assert counts.max() == 120

    def test_mixture_of_gaussians(self):
        points, labels = mixture_of_gaussians(n=500, d=2,
                                              means=[[0.2, 0.2], [0.8, 0.8]],
                                              weights=[0.5, 0.5], rng=7)
        assert points.shape == (500, 2)
        assert set(np.unique(labels)) <= {0, 1}

    def test_mixture_invalid_means(self):
        with pytest.raises(ValueError):
            mixture_of_gaussians(n=10, d=3, means=[[0.0, 0.0]])


class TestAdversarialConfigurations:
    def test_figure1_cross_has_empty_center_box(self):
        points = figure1_cross_configuration(points_per_arm=300, rng=0)
        assert points.shape == (600, 2)
        # The per-axis heavy regions are around 0.1 and 0.9; their
        # intersection boxes (0.1, 0.1) and (0.9, 0.9) hold no data.
        near_corner = np.all(np.abs(points - 0.1) < 0.05, axis=1)
        assert np.count_nonzero(near_corner) == 0

    def test_figure2_cluster_straddles_boundary(self):
        values, offset = figure2_interval_configuration(cluster_size=200, rng=1)
        assert values.shape == (200, 1)
        boundary = 0.5
        assert np.any(values < boundary) and np.any(values > boundary)

    def test_split_cluster_configuration(self):
        points = split_cluster_configuration(target=50)
        assert points.shape == (51, 1)
        assert np.count_nonzero(points == 0.0) == 25
        assert np.count_nonzero(points == 2.0) == 25
        assert np.count_nonzero(points == 1.0) == 1
