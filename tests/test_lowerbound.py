"""Tests for the interior-point problem and the IntPoint reduction (Section 5)."""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.lowerbound.int_point import int_point, int_point_sample_size
from repro.lowerbound.interior_point import (
    interior_point_sample_complexity_lower_bound,
    is_interior_point,
    nonprivate_interior_point,
)


class TestInteriorPoint:
    def test_is_interior_point(self):
        database = [1.0, 5.0, 9.0]
        assert is_interior_point(5.0, database)
        assert is_interior_point(1.0, database)
        assert not is_interior_point(0.5, database)
        assert not is_interior_point(9.5, database)

    def test_interior_point_need_not_be_member(self):
        assert is_interior_point(4.0, [1.0, 9.0])

    def test_nonprivate_median_is_interior(self):
        rng = np.random.default_rng(0)
        database = rng.uniform(10, 20, size=101)
        assert is_interior_point(nonprivate_interior_point(database), database)

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            is_interior_point(0.0, [])
        with pytest.raises(ValueError):
            nonprivate_interior_point([])

    def test_lower_bound_grows_with_domain(self):
        assert (interior_point_sample_complexity_lower_bound(2 ** 32)
                >= interior_point_sample_complexity_lower_bound(2 ** 4))


class TestIntPointReduction:
    def test_reduction_produces_interior_point(self):
        rng = np.random.default_rng(1)
        values = rng.integers(1000, 2000, size=500).astype(float)
        params = PrivacyParams(8.0, 1e-5)
        successes = 0
        for seed in range(5):
            result = int_point(values, cluster_size=250, params=params, rng=seed)
            successes += int(is_interior_point(result.value, values))
        assert successes >= 4

    def test_identical_values_zero_radius_branch(self):
        values = np.full(300, 42.0)
        params = PrivacyParams(8.0, 1e-5)
        result = int_point(values, cluster_size=150, params=params, rng=0)
        assert result.is_zero_radius
        assert result.value == pytest.approx(42.0, abs=1.0)

    def test_sample_size_formula(self):
        params = PrivacyParams(1.0, 1e-6)
        m = int_point_sample_size(n=100, w=4.0, params=params, beta=0.1)
        assert m > 100

    def test_sample_size_grows_with_w(self):
        params = PrivacyParams(1.0, 1e-6)
        assert (int_point_sample_size(100, w=2 ** 16, params=params, beta=0.1)
                > int_point_sample_size(100, w=4.0, params=params, beta=0.1))

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            int_point(np.zeros(10), cluster_size=10, params=PrivacyParams(1.0, 1e-6))

    def test_custom_solver_is_used(self):
        calls = []

        def fake_solver(points, target, params, beta=0.1, rng=None, **kwargs):
            calls.append(len(points))
            from repro.baselines.nonprivate import nonprivate_one_cluster
            return nonprivate_one_cluster(points, target)

        values = np.random.default_rng(2).uniform(0, 100, size=200)
        result = int_point(values, cluster_size=100, params=PrivacyParams(4.0, 1e-6),
                           cluster_solver=fake_solver, rng=0)
        assert calls == [100]
        assert is_interior_point(result.value, values)
