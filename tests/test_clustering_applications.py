"""Tests for the downstream applications: k-clustering and outlier screening."""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.clustering.k_cluster import k_cluster
from repro.clustering.outliers import outlier_ball
from repro.core.config import OneClusterConfig
from repro.datasets.synthetic import clustered_with_outliers, gaussian_blobs


class TestKCluster:
    def test_covers_well_separated_blobs(self):
        points, labels, centers = gaussian_blobs(n=1500, d=2, k=3, spread=0.02,
                                                 rng=0)
        params = PrivacyParams(12.0, 1e-5)
        result = k_cluster(points, k=3, params=params, rng=1)
        assert result.num_found >= 2
        assert result.covered_fraction >= 0.5

    def test_single_cluster_degenerates_to_one_cluster(self):
        points, _, centers = gaussian_blobs(n=800, d=2, k=1, spread=0.02, rng=2)
        params = PrivacyParams(8.0, 1e-5)
        result = k_cluster(points, k=1, params=params, rng=3)
        assert result.num_found == 1
        assert np.linalg.norm(result.balls[0].center - centers[0]) <= 0.3

    def test_respects_k_rounds(self):
        points, _, _ = gaussian_blobs(n=900, d=2, k=2, spread=0.02, rng=4)
        params = PrivacyParams(8.0, 1e-5)
        result = k_cluster(points, k=2, params=params, rng=5)
        assert len(result.results) <= 2
        assert result.num_found <= 2

    def test_invalid_k(self):
        points = np.zeros((50, 2))
        with pytest.raises(ValueError):
            k_cluster(points, k=0, params=PrivacyParams(1.0, 1e-6))

    def test_results_and_balls_lengths_consistent(self):
        points, _, _ = gaussian_blobs(n=600, d=2, k=2, spread=0.03, rng=6)
        result = k_cluster(points, k=2, params=PrivacyParams(8.0, 1e-5), rng=7)
        assert result.num_found == len(result.balls)
        assert len(result.results) >= result.num_found


class TestKClusterBackends:
    """End-to-end k-clustering across the neighbor backends.

    k_cluster takes backend *selections* (names / classes / config), not
    instances — the point set shrinks between iterations — so the
    ``neighbor_backend`` fixture's name is mapped onto the matching
    selection style: the sharded strategy goes through
    ``OneClusterConfig(neighbor_backend=..., neighbor_workers=...)``, which
    is also the only way to pin its worker count.
    """

    @staticmethod
    def _run(points, name, *, workers=0, rng=9):
        params = PrivacyParams(10.0, 1e-5)
        if name == "sharded":
            config = OneClusterConfig(neighbor_backend="sharded",
                                      neighbor_workers=workers)
            return k_cluster(points, k=2, params=params, rng=rng,
                             config=config)
        backend = None if name == "reference" else name
        return k_cluster(points, k=2, params=params, rng=rng, backend=backend)

    def test_release_identical_across_backends(self, neighbor_backend):
        points, _, _ = gaussian_blobs(n=500, d=2, k=2, spread=0.02, rng=6)
        reference = self._run(points, "reference")
        result = self._run(points, neighbor_backend.backend_name)
        assert result.num_found == reference.num_found
        assert result.covered_fraction == reference.covered_fraction
        for ball, expected in zip(result.balls, reference.balls):
            assert np.array_equal(ball.center, expected.center)
            assert ball.radius == expected.radius

    def test_iterations_close_their_backends(self, monkeypatch):
        """Each iteration's internally built backend is closed before
        k_cluster returns (the sharded pool / shared-memory lifecycle gap
        this test originally exposed: cleanup used to ride on GC)."""
        from repro.neighbors.sharded import ShardedBackend

        built = []
        closed = []
        original_init = ShardedBackend.__init__
        original_close = ShardedBackend.close

        def spy_init(self, *args, **kwargs):
            built.append(self)
            return original_init(self, *args, **kwargs)

        def spy_close(self):
            if self not in closed:
                closed.append(self)
            return original_close(self)

        monkeypatch.setattr(ShardedBackend, "__init__", spy_init)
        monkeypatch.setattr(ShardedBackend, "close", spy_close)
        points, _, _ = gaussian_blobs(n=400, d=2, k=2, spread=0.02, rng=8)
        self._run(points, "sharded", workers=0)
        assert built, "the sharded backend was never selected"
        assert set(id(b) for b in built) <= set(id(c) for c in closed)

    @pytest.mark.slow
    def test_two_worker_pool_release_identical(self):
        """A real 2-process pool behind k_cluster: bitwise the serial
        release, pools torn down between iterations."""
        points, _, _ = gaussian_blobs(n=500, d=2, k=2, spread=0.02, rng=6)
        serial = self._run(points, "sharded", workers=0)
        pooled = self._run(points, "sharded", workers=2)
        assert pooled.num_found == serial.num_found
        assert pooled.covered_fraction == serial.covered_fraction
        for ball, expected in zip(pooled.balls, serial.balls):
            assert np.array_equal(ball.center, expected.center)
            assert ball.radius == expected.radius


class TestOutlierScreen:
    def test_flags_injected_outliers(self):
        points, is_outlier = clustered_with_outliers(n=1200, d=2,
                                                     outlier_fraction=0.1, rng=0)
        params = PrivacyParams(8.0, 1e-5)
        screen = outlier_ball(points, params, inlier_fraction=0.85, rng=1)
        assert screen.found
        flagged = screen.outlier_mask(points)
        recall = np.count_nonzero(flagged & is_outlier) / np.count_nonzero(is_outlier)
        assert recall >= 0.5

    def test_predicate_is_postprocessing(self):
        points, _ = clustered_with_outliers(n=800, d=2, outlier_fraction=0.1, rng=2)
        params = PrivacyParams(8.0, 1e-5)
        screen = outlier_ball(points, params, inlier_fraction=0.85, rng=3)
        # The predicate can be evaluated on arbitrary new points.
        fresh = np.random.default_rng(4).uniform(size=(100, 2))
        mask = screen.predicate(fresh)
        assert mask.shape == (100,)

    def test_guaranteed_mode_uses_larger_ball(self):
        points, _ = clustered_with_outliers(n=800, d=2, outlier_fraction=0.1, rng=5)
        params = PrivacyParams(8.0, 1e-5)
        effective = outlier_ball(points, params, inlier_fraction=0.85,
                                 radius_mode="effective", rng=6)
        guaranteed = outlier_ball(points, params, inlier_fraction=0.85,
                                  radius_mode="guaranteed", rng=6)
        if effective.found and guaranteed.found:
            assert guaranteed.ball.radius >= effective.ball.radius

    def test_invalid_radius_mode(self):
        points = np.zeros((50, 2))
        with pytest.raises(ValueError):
            outlier_ball(points, PrivacyParams(1.0, 1e-6), radius_mode="bogus")

    def test_unfound_screen_keeps_everything(self):
        points, _ = clustered_with_outliers(n=400, d=2, outlier_fraction=0.1, rng=7)
        screen = outlier_ball(points, PrivacyParams(0.01, 1e-9), rng=8)
        if not screen.found:
            assert np.all(screen.predicate(points))
