"""Memory guards for the shard-side rotated stage and the bounded merge.

Two promises from the steps 8-11 migration are checked here with real
numbers rather than code inspection:

* at ``n >= 20k`` the *parent* process never materialises an ``O(n * d)``
  (or ``O(|selected| * d)``) rotated copy while GoodCenter runs steps 8-11
  over a pooled sharded backend — tracemalloc sees only the parent, which is
  exactly the asymmetry the shard-side stage buys;
* the heaviest-cell partition search's parent scratch is bounded by
  ``shards * top_k`` candidate cells per attempt, with the exact-recount
  certification keeping the returned maxima bitwise equal to the full merge
  even when the global argmax is in *no* shard's top-k.

Marked ``slow`` (n = 20k work + a real worker pool): these run in the
dedicated ``-m slow`` CI job, not the tier-1 loop.
"""

import sys
import tracemalloc

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.core.config import GoodCenterConfig
from repro.core.good_center import good_center
from repro.datasets.synthetic import planted_cluster
from repro.neighbors import DenseBackend, ShardedBackend

good_center_module = sys.modules["repro.core.good_center"]


@pytest.mark.slow
class TestRotatedStageMemoryGuard:
    """Parent peak allocation during a full good_center call, n = 20k."""

    N = 20000
    D = 8
    TARGET = 10000

    @pytest.fixture(scope="class")
    def big_cluster(self):
        return planted_cluster(n=self.N, d=self.D, cluster_size=12000,
                               cluster_radius=0.05, center=[0.5] * self.D,
                               rng=3).points

    def _run(self, points, backend):
        # jl_constant=0.3 forces the JL + rotated-axis path at d=8.
        config = GoodCenterConfig(jl_constant=0.3)
        backend.radius_counts(0.01)      # warm the pool outside the window
        tracemalloc.start()
        try:
            result = good_center(points, radius=0.05, target=self.TARGET,
                                 params=PrivacyParams(8.0, 1e-5),
                                 config=config, rng=5, backend=backend)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, peak

    def test_parent_never_holds_rotated_copy(self, big_cluster, monkeypatch):
        points = big_cluster
        rotated_copy_bytes = self.TARGET * self.D * 8

        with ShardedBackend(points, num_shards=4, num_workers=2) as backend:
            result, shard_side_peak = self._run(points, backend)
        assert result.found
        assert result.projected_dimension < self.D     # rotated stage ran
        assert result.captured_count >= self.TARGET

        # The historical in-parent stage (seam off) holds the selected set,
        # its rotation, the label matrix and the membership arrays — several
        # rotated-copy multiples.
        monkeypatch.setattr(good_center_module, "_SHARD_SIDE_ROTATED_STAGE",
                            False)
        with ShardedBackend(points, num_shards=4, num_workers=2) as backend:
            historical, historical_peak = self._run(points, backend)
        monkeypatch.setattr(good_center_module, "_SHARD_SIDE_ROTATED_STAGE",
                            True)
        # Identical release either way (the parity contract), wildly
        # different parent footprints.
        assert np.array_equal(historical.center, result.center)
        assert historical_peak > 2 * rotated_copy_bytes
        assert shard_side_peak < rotated_copy_bytes / 2
        assert shard_side_peak * 8 < historical_peak, (
            f"shard-side stage peaked at {shard_side_peak / 1e6:.2f} MB vs "
            f"{historical_peak / 1e6:.2f} MB in-parent"
        )


class TestHeaviestCellMergeGuard:
    """The bounded top-K merge: bounded worker returns, exact maxima.

    Small-n and serial, so it stays in the tier-1 loop (unlike the 20k
    tracemalloc guard above)."""

    @staticmethod
    def adversarial_points():
        """Two shards whose *global* heaviest cell is in neither shard's
        top-2: cell [0, 1) holds 5 points in each shard (10 globally) while
        six per-shard filler cells hold 6 each."""
        shard1 = np.concatenate([
            np.full(5, 0.5),
            np.repeat(np.arange(1, 7) + 0.5, 6),
        ])
        shard2 = np.concatenate([
            np.full(5, 0.5),
            np.repeat(np.arange(11, 17) + 0.5, 6),
        ])
        return np.concatenate([shard1, shard2]).reshape(-1, 1)

    def test_worker_returns_bounded_by_top_k(self):
        points = self.adversarial_points()
        backend = ShardedBackend(points, num_shards=2, num_workers=0)
        shifts = np.zeros((1, 1))
        for top_k in (1, 2, 4):
            for shard in range(2):
                results = backend._shards.view_heaviest_cells(
                    shard, None, None, None, 1.0, shifts, top_k
                )
                labels, counts, cap = results[0]
                assert labels.shape[0] <= top_k
                assert counts.shape[0] <= top_k
                # The cap bounds every truncated cell: nothing this shard
                # dropped can exceed its k-th largest kept count.
                assert cap == 0 or cap <= counts.min()

    def test_recount_certifies_global_argmax_outside_every_top_k(self):
        points = self.adversarial_points()
        reference = DenseBackend(points).view().heaviest_cell_counts(
            1.0, np.zeros((1, 1))
        )
        assert reference[0] == 10      # the split cell, heaviest only merged
        backend = ShardedBackend(points, num_shards=2, num_workers=0)
        calls = []
        original = backend._map_shards

        def spy(method, args):
            calls.append(method)
            return original(method, args)

        backend._map_shards = spy
        backend.HEAVIEST_CELL_TOP_K = 2
        got = backend.view().heaviest_cell_counts(1.0, np.zeros((1, 1)))
        assert np.array_equal(got, reference)
        # Round 1 (top-2 lists + recount) cannot certify — the filler-cell
        # best (6) is below the cap bound (12) — so the merge must have
        # escalated into at least a second heaviest-cells round.
        assert calls.count("view_count_labels") >= 1
        assert calls.count("view_heaviest_cells") >= 2

    @pytest.mark.parametrize("top_k", [None, 1, 2, 3, 64])
    def test_bounded_merge_bitwise_equal_on_random_data(self, top_k):
        rng = np.random.default_rng(11)
        points = rng.uniform(0, 30, size=(400, 2))
        shifts = rng.uniform(0, 1.0, size=(5, 2))
        reference = DenseBackend(points).view().heaviest_cell_counts(1.0,
                                                                     shifts)
        for shards in (1, 2, 5):
            backend = ShardedBackend(points, num_shards=shards, num_workers=0)
            backend.HEAVIEST_CELL_TOP_K = top_k
            got = backend.view().heaviest_cell_counts(1.0, shifts)
            assert np.array_equal(got, reference), (shards, top_k)
