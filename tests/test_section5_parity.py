"""Bitwise release parity for the Section-5/6 backend threading (PR 10).

Sample-and-aggregate, the quasi-concave depth selection, and the IntPoint
reduction now route their block/score evaluations through the
``NeighborBackend``/``QueryPlan`` stack.  These tests pin the contract that
made the threading admissible: for every backend — parent-side ``None``,
dense, serial-sharded, and (slow tier) a real 2-worker sharded pool — the
*released* values are bitwise identical, and the plan/fan-out accounting
shows the pipelined paths submit exactly the expected plans over one
long-lived backend (no silent per-trial rebuilds).  Mirrors the seeded
comparison pattern of ``tests/test_release_parity.py``.
"""

import math

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.experiments import PipelinedRuns, run_table1
from repro.lowerbound import int_point, interior_depths
from repro.neighbors import QueryPlan, resolve_backend
from repro.neighbors.base import depth_count_pairs
from repro.neighbors.sharded import ShardedBackend
from repro.quasiconcave import ArrayQuality, PlanQuality, rec_concave
from repro.sample_aggregate import (
    BlockMean,
    component_assignment,
    empirical_stability,
    private_mean_estimator,
)


@pytest.fixture
def gaussian_points():
    rng = np.random.default_rng(0)
    return rng.normal(loc=[0.4, 0.6], scale=0.05, size=(6000, 2))


@pytest.fixture
def line_values():
    rng = np.random.default_rng(1)
    return np.sort(rng.normal(500.0, 40.0, size=400))


PARAMS = PrivacyParams(12.0, 1e-4)
SA_KWARGS = dict(alpha=0.8, subsample_fraction=1.0 / 3.0)


def sa_backends(points):
    """The fast-tier backend sweep: dense and serial-sharded instances."""
    return [
        resolve_backend(points, "dense"),
        ShardedBackend(points, num_shards=3, num_workers=0),
    ]


class TestSampleAggregateParity:
    def test_release_bitwise_across_backends(self, gaussian_points):
        base = private_mean_estimator(gaussian_points, 10, PARAMS, rng=1,
                                      **SA_KWARGS)
        assert base.found
        for backend in sa_backends(gaussian_points):
            result = private_mean_estimator(gaussian_points, 10, PARAMS,
                                            backend=backend, rng=1, **SA_KWARGS)
            assert result.found
            assert np.array_equal(result.point, base.point)
            assert result.target == base.target
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    def test_backend_name_matches_parent_path(self, gaussian_points):
        base = private_mean_estimator(gaussian_points, 10, PARAMS, rng=1,
                                      **SA_KWARGS)
        named = private_mean_estimator(gaussian_points, 10, PARAMS,
                                       backend="dense", rng=1, **SA_KWARGS)
        assert np.array_equal(named.point, base.point)

    @pytest.mark.slow
    def test_release_bitwise_on_worker_pool(self, gaussian_points):
        base = private_mean_estimator(gaussian_points, 10, PARAMS, rng=1,
                                      **SA_KWARGS)
        backend = ShardedBackend(gaussian_points, num_shards=4, num_workers=2)
        try:
            result = private_mean_estimator(gaussian_points, 10, PARAMS,
                                            backend=backend, rng=1, **SA_KWARGS)
        finally:
            backend.close()
        assert np.array_equal(result.point, base.point)

    def test_stability_distances_bitwise(self, gaussian_points):
        candidate = np.array([0.4, 0.6])
        base = empirical_stability(gaussian_points, BlockMean(), candidate,
                                   10, 0.1, repetitions=15, rng=5)
        for backend in sa_backends(gaussian_points):
            estimate = empirical_stability(gaussian_points, BlockMean(),
                                           candidate, 10, 0.1, repetitions=15,
                                           backend=backend, rng=5)
            assert np.array_equal(estimate.distances, base.distances)
            assert estimate.probability == base.probability
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    def test_block_mean_matches_masked_sum_plan(self, gaussian_points):
        """The two BlockMean paths are the same exact sum, bit for bit."""
        analysis = BlockMean()
        backend = ShardedBackend(gaussian_points, num_shards=3, num_workers=0)
        rows = np.random.default_rng(2).integers(0, gaussian_points.shape[0],
                                                 size=25)
        plan = QueryPlan()
        token = analysis.compile(plan, backend.view(), rows)
        planned = analysis.resolve(backend.execute(plan), token, rows.size)
        assert np.array_equal(planned, analysis(gaussian_points[rows]))

    def test_component_assignment_matches_dense_broadcast(self):
        for trial in range(10):
            rng = np.random.default_rng(trial)
            block = rng.normal(size=(150, 3))
            centers = rng.normal(size=(4, 3))
            dense = np.argmin(
                np.linalg.norm(block[:, None, :] - centers[None, :, :], axis=2),
                axis=1,
            )
            assert np.array_equal(component_assignment(block, centers), dense)


class TestSampleAggregateAccounting:
    def test_one_plan_per_block_no_rebuilds(self, gaussian_points):
        """Every subsample block is exactly one plan = one fan-out =
        ``num_shards`` shard tasks on the caller's long-lived backend."""
        backend = ShardedBackend(gaussian_points, num_shards=3, num_workers=0)
        before = backend.pool_stats()
        result = private_mean_estimator(gaussian_points, 10, PARAMS,
                                        backend=backend, rng=1, **SA_KWARGS)
        after = backend.pool_stats()
        num_blocks = result.num_blocks
        assert after["plans"] - before["plans"] == num_blocks
        assert after["fanouts"] - before["fanouts"] == num_blocks
        assert after["shard_tasks"] - before["shard_tasks"] == num_blocks * 3


class TestLowerBoundParity:
    def test_interior_depths_matches_naive_counts(self, line_values):
        thresholds = np.linspace(line_values.min() - 1.0,
                                 line_values.max() + 1.0, 41)
        naive = np.array([
            min(float(np.count_nonzero(line_values <= t)),
                float(np.count_nonzero(line_values >= t)))
            for t in thresholds
        ])
        assert np.array_equal(interior_depths(line_values, thresholds), naive)

    def test_depth_counts_plan_matches_helper(self, line_values):
        column = line_values.reshape(-1, 1)
        thresholds = np.linspace(line_values.min(), line_values.max(), 9)
        expected = depth_count_pairs(line_values, thresholds)
        for backend in sa_backends(column):
            plan = QueryPlan()
            slot = plan.depth_counts(thresholds)
            assert np.array_equal(backend.execute(plan)[slot], expected)
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    def test_int_point_release_bitwise_across_backends(self, line_values):
        params = PrivacyParams(2.0, 1e-6)
        base = int_point(line_values, 200, params, rng=7)
        for backend in sa_backends(line_values.reshape(-1, 1)):
            result = int_point(line_values, 200, params, backend=backend,
                               rng=7)
            assert result.value == base.value
            assert result.candidate_count == base.candidate_count
            close = getattr(backend, "close", None)
            if close is not None:
                close()

    @pytest.mark.slow
    def test_int_point_release_bitwise_on_worker_pool(self, line_values):
        params = PrivacyParams(2.0, 1e-6)
        base = int_point(line_values, 200, params, rng=7)
        backend = ShardedBackend(line_values.reshape(-1, 1), num_shards=4,
                                 num_workers=2)
        try:
            result = int_point(line_values, 200, params, backend=backend,
                               rng=7)
        finally:
            backend.close()
        assert result.value == base.value


class TestQuasiconcavePlanQuality:
    def make_quality(self, backend, endpoints):
        def compile_depths(plan, indices):
            return plan.depth_counts(endpoints[indices])

        def resolve_depths(results, token, indices):
            counts = results[token]
            return np.minimum(counts[:, 0], counts[:, 1]).astype(float)

        return PlanQuality(backend, endpoints.size, compile_depths,
                           resolve_depths)

    def test_values_match_array_quality(self, line_values):
        endpoints = np.linspace(line_values.min(), line_values.max(), 17)
        reference = ArrayQuality(interior_depths(line_values, endpoints))
        backend = ShardedBackend(line_values.reshape(-1, 1), num_shards=3,
                                 num_workers=0)
        quality = self.make_quality(backend, endpoints)
        indices = np.arange(endpoints.size)
        assert np.array_equal(quality.values(indices),
                              reference.values(indices))
        assert quality.value(3) == reference.value(3)

    def test_prefetch_is_one_async_plan(self, line_values):
        endpoints = np.linspace(line_values.min(), line_values.max(), 17)
        backend = ShardedBackend(line_values.reshape(-1, 1), num_shards=3,
                                 num_workers=0)
        quality = self.make_quality(backend, endpoints)
        before = backend.pool_stats()
        quality.prefetch(np.arange(endpoints.size))
        submitted = backend.pool_stats()
        assert submitted["plans"] - before["plans"] == 1
        # Already-announced indices never resubmit.
        quality.prefetch(np.arange(endpoints.size))
        assert backend.pool_stats()["plans"] - before["plans"] == 1
        quality.values(np.arange(endpoints.size))
        assert backend.pool_stats()["plans"] - before["plans"] == 1
        assert quality.evaluations == endpoints.size

    def test_rec_concave_release_matches_array_path(self, line_values):
        endpoints = np.linspace(line_values.min(), line_values.max(), 33)
        scores = interior_depths(line_values, endpoints)
        params = PrivacyParams(2.0, 1e-6)
        promise = float(scores.max())
        base = rec_concave(ArrayQuality(scores), promise=promise, alpha=0.5,
                           params=params, rng=11)
        backend = ShardedBackend(line_values.reshape(-1, 1), num_shards=3,
                                 num_workers=0)
        planned = rec_concave(self.make_quality(backend, endpoints),
                              promise=promise, alpha=0.5, params=params,
                              rng=11)
        assert planned.index == base.index
        assert planned.quality == base.quality
        assert planned.chosen_length == base.chosen_length


def _strip_seconds(rows):
    return [{key: value for key, value in row.items()
             if "seconds" not in key} for row in rows]


def _rows_equal(left, right):
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if set(a) != set(b):
            return False
        for key in a:
            va, vb = a[key], b[key]
            if (isinstance(va, float) and isinstance(vb, float)
                    and math.isnan(va) and math.isnan(vb)):
                continue
            if va != vb:
                return False
    return True


class TestPipelinedTable1:
    def test_rows_byte_identical_across_backends(self):
        base = run_table1(n=400, repetitions=2, rng=3, backend="dense")
        with PipelinedRuns("sharded",
                           options={"num_shards": 3, "num_workers": 0}) as runs:
            sharded = run_table1(n=400, repetitions=2, rng=3, runs=runs)
        assert _rows_equal(_strip_seconds(base), _strip_seconds(sharded))

    @pytest.mark.slow
    def test_rows_byte_identical_on_worker_pool(self):
        base = run_table1(n=400, repetitions=2, rng=3, backend="dense")
        with PipelinedRuns("sharded",
                           options={"num_shards": 4, "num_workers": 2}) as runs:
            pooled = run_table1(n=400, repetitions=2, rng=3, runs=runs)
        assert _rows_equal(_strip_seconds(base), _strip_seconds(pooled))

    def test_one_backend_per_dataset_and_fanout_accounting(self):
        """The pipelined sweep resolves one backend per dataset (points +
        snapped grid per repetition — no silent per-trial rebuilds) and
        issues exactly one fan-out per submitted plan."""
        repetitions = 2
        with PipelinedRuns("sharded",
                           options={"num_shards": 3, "num_workers": 0}) as runs:
            rows = run_table1(n=400, repetitions=repetitions, rng=3, runs=runs)
            stats = runs.stats()
        assert len(rows) == 4 * repetitions
        assert runs.num_backends == 0  # closed helpers forget their engines
        assert stats["backends"] == 2 * repetitions
        # Plan submissions are a subset of the fan-outs (solvers also fan out
        # their non-plan queries), and every fan-out hits every shard once.
        assert stats["plans"] >= 4 * repetitions  # >= one coverage plan/row
        assert stats["fanouts"] >= stats["plans"]
        assert stats["shard_tasks"] == stats["fanouts"] * 3
