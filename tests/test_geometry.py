"""Tests for the geometry substrate: grid, balls, capped score, minimal balls."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.balls import (
    Ball,
    capped_average_score,
    capped_counts_around_points,
    count_in_ball,
    counts_around_points,
    pairwise_distances,
)
from repro.geometry.grid import GridDomain
from repro.geometry.minimal_ball import (
    optimal_radius_lower_bound,
    smallest_ball_exact_1d,
    smallest_ball_exhaustive,
    smallest_ball_two_approx,
    smallest_interval_1d,
)


class TestGridDomain:
    def test_unit_cube_properties(self):
        domain = GridDomain.unit_cube(dimension=3, side=101)
        assert domain.step == pytest.approx(0.01)
        assert domain.axis_length == pytest.approx(1.0)
        assert domain.diameter == pytest.approx(np.sqrt(3.0))
        assert domain.num_points == pytest.approx(101 ** 3)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            GridDomain(dimension=0, side=10)
        with pytest.raises(ValueError):
            GridDomain(dimension=1, side=1)
        with pytest.raises(ValueError):
            GridDomain(dimension=1, side=10, low=1.0, high=0.0)

    def test_snap_and_contains(self):
        domain = GridDomain.unit_cube(dimension=2, side=11)
        raw = np.array([[0.234, 0.861]])
        snapped = domain.snap(raw)
        assert domain.contains(snapped)
        assert np.allclose(snapped, [[0.2, 0.9]])

    def test_snap_clips_out_of_range(self):
        domain = GridDomain.unit_cube(dimension=1, side=11)
        snapped = domain.snap(np.array([[1.7], [-0.3]]))
        assert snapped.max() <= 1.0
        assert snapped.min() >= 0.0

    def test_candidate_radii_cover_diameter(self):
        domain = GridDomain.unit_cube(dimension=2, side=17)
        radii = domain.candidate_radii()
        assert radii[0] == 0.0
        assert radii[-1] >= domain.diameter - domain.step
        assert np.all(np.diff(radii) > 0)

    def test_sample_uniform_on_grid(self):
        domain = GridDomain.unit_cube(dimension=2, side=5)
        sample = domain.sample_uniform(50, rng=0)
        assert domain.contains(sample)

    def test_log_star_factor(self):
        domain = GridDomain.unit_cube(dimension=4, side=1025)
        assert domain.log_star_factor() >= 9.0


class TestBall:
    def test_contains_and_count(self):
        ball = Ball(center=np.array([0.0, 0.0]), radius=1.0)
        points = np.array([[0.0, 0.5], [2.0, 0.0], [0.0, 1.0]])
        assert ball.contains(points).tolist() == [True, False, True]
        assert ball.count(points) == 2

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Ball(center=np.zeros(2), radius=-0.1)

    def test_scaled(self):
        ball = Ball(center=np.zeros(2), radius=1.0).scaled(3.0)
        assert ball.radius == pytest.approx(3.0)

    def test_slack(self):
        ball = Ball(center=np.zeros(1), radius=1.0)
        points = np.array([[1.05]])
        assert ball.count(points) == 0
        assert ball.count(points, slack=0.1) == 1


class TestCounting:
    def test_pairwise_distances_match_direct(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(size=(30, 3))
        distances = pairwise_distances(points)
        direct = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=2)
        # The Gram-matrix formulation loses a few digits to cancellation, so
        # compare at single-precision-ish tolerance.
        assert np.allclose(distances, direct, atol=1e-7)

    def test_count_in_ball(self):
        points = np.array([[0.0], [0.5], [2.0]])
        assert count_in_ball(points, np.array([0.0]), 1.0) == 2
        assert count_in_ball(points, np.array([0.0]), -1.0) == 0

    def test_counts_around_points(self):
        points = np.array([[0.0], [0.1], [5.0]])
        counts = counts_around_points(points, radius=0.2)
        assert counts.tolist() == [2, 2, 1]

    def test_capped_counts(self):
        points = np.zeros((10, 1))
        counts = capped_counts_around_points(points, radius=0.1, cap=4)
        assert np.all(counts == 4)


class TestCappedAverageScore:
    def test_equals_t_when_cluster_exists(self):
        points = np.vstack([np.zeros((50, 2)), np.full((10, 2), 5.0)])
        score = capped_average_score(points, radius=0.1, target=40)
        assert score == pytest.approx(40.0)

    def test_zero_for_negative_radius(self):
        points = np.random.default_rng(0).uniform(size=(20, 2))
        assert capped_average_score(points, radius=-1.0, target=5) == 0.0

    def test_monotone_in_radius(self):
        points = np.random.default_rng(0).uniform(size=(60, 2))
        radii = [0.0, 0.1, 0.3, 0.6, 1.5]
        scores = [capped_average_score(points, r, target=20) for r in radii]
        assert all(a <= b + 1e-9 for a, b in zip(scores, scores[1:]))

    def test_invalid_target(self):
        points = np.zeros((5, 1))
        with pytest.raises(ValueError):
            capped_average_score(points, 0.1, target=0)
        with pytest.raises(ValueError):
            capped_average_score(points, 0.1, target=6)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10 ** 6))
    def test_sensitivity_at_most_two(self, n, seed):
        """Paper Lemma 4.5: swapping one point changes L(r, S) by at most 2."""
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(n, 2))
        neighbour = points.copy()
        neighbour[rng.integers(0, n)] = rng.uniform(size=2)
        target = int(rng.integers(1, n + 1))
        radius = float(rng.uniform(0, 1.5))
        a = capped_average_score(points, radius, target)
        b = capped_average_score(neighbour, radius, target)
        assert abs(a - b) <= 2.0 + 1e-9


class TestMinimalBall:
    def test_two_approx_captures_target(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(size=(100, 3))
        ball = smallest_ball_two_approx(points, target=30)
        assert ball.count(points, slack=1e-9) >= 30

    def test_two_approx_factor_versus_exact_1d(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(size=200)
        exact = smallest_ball_exact_1d(values, target=60)
        approx = smallest_ball_two_approx(values.reshape(-1, 1), target=60)
        assert exact.radius <= approx.radius + 1e-12
        assert approx.radius <= 2.0 * exact.radius + 1e-9

    def test_smallest_interval_exact(self):
        values = np.array([0.0, 0.1, 0.2, 5.0, 5.05, 5.1, 9.0])
        low, high = smallest_interval_1d(values, target=3)
        assert (low, high) == (5.0, 5.1)

    def test_lower_bound_below_exact(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(size=150)
        exact = smallest_ball_exact_1d(values, target=50)
        bound = optimal_radius_lower_bound(values.reshape(-1, 1), target=50)
        assert bound <= exact.radius + 1e-9

    def test_exhaustive_beats_or_matches_two_approx(self):
        rng = np.random.default_rng(4)
        points = rng.uniform(size=(40, 2))
        approx = smallest_ball_two_approx(points, target=15)
        exhaustive = smallest_ball_exhaustive(points, target=15,
                                              candidate_centers=points)
        assert exhaustive.radius <= approx.radius + 1e-9

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            smallest_ball_two_approx(np.zeros((5, 2)), target=6)
        with pytest.raises(ValueError):
            smallest_interval_1d(np.zeros(5), target=0)
