"""The fused query-plan layer: parity, memoisation, and fan-out accounting.

Three contracts are pinned here:

* **Plan parity.**  ``backend.execute(plan)`` returns, slot for slot,
  exactly what the corresponding direct method calls return — on every
  backend, because the serial evaluator *is* the direct calls and the
  sharded path reuses the per-query shard partials and shard-order merges.
* **One round trip per shard.**  On the sharded backend a whole plan is a
  single ``execute_plan`` task per shard, counted by the ``pool_stats()``
  instrumentation; ``good_center``'s stages (the partition-search batch,
  the step-7 histogram, the step-9 axis histograms, the steps-10-11
  NoisyAVG statistics) each cost exactly one fan-out.
* **Async determinism.**  ``submit`` overlaps plans without moving a bit:
  futures resolve to the same values as synchronous ``execute`` no matter
  how many are in flight or in which order they are resolved, and the
  releases of plan-driven algorithms are bitwise those of the per-query
  fan-out path (the ``_FUSED_QUERY_PLANS`` seam).
"""

import sys

import numpy as np
import pytest

import repro.neighbors.sharded as sharded_module
from repro.accounting.params import PrivacyParams
from repro.clustering.k_cluster import k_cluster
from repro.core.config import GoodCenterConfig
from repro.core.good_center import good_center
from repro.core.good_radius import RadiusScore
from repro.experiments.harness import (
    coverage_counts_result,
    submit_coverage_counts,
)
from repro.geometry.boxes import box_labels
from repro.geometry.jl import project_rows
from repro.neighbors import (
    BACKENDS,
    DenseBackend,
    PlanFuture,
    QueryPlan,
    ShardedBackend,
)

good_center_module = sys.modules["repro.core.good_center"]


def make_backend(name, points, shards=3):
    if name == "sharded":
        return ShardedBackend(points, num_shards=shards, num_workers=0)
    return BACKENDS[name](points)


@pytest.fixture(scope="module")
def plan_fixture():
    """A dataset with two non-identity views, a heavy box, and a selection."""
    rng = np.random.default_rng(7)
    points = rng.normal(size=(220, 6))
    matrix = rng.normal(size=(3, 6))
    basis = rng.normal(size=(6, 6))
    width = 0.9
    shifts = rng.uniform(0.0, width, size=3)
    labels = box_labels(project_rows(points, matrix), shifts, width)
    unique, counts = np.unique(labels, axis=0, return_counts=True)
    chosen = unique[int(np.argmax(counts))]
    rows = np.flatnonzero(np.all(labels == chosen[None, :], axis=1))
    return {
        "points": points, "matrix": matrix, "basis": basis, "width": width,
        "shifts": shifts, "chosen": chosen, "rows": rows,
        "center": project_rows(points, basis)[rows].mean(axis=0),
    }


def build_plan(backend, fx):
    """One plan exercising every operation; returns (plan, slots, views)."""
    search = backend.view(fx["matrix"])
    frame = backend.view(fx["basis"])
    selection = search.box_selection(fx["width"], fx["shifts"], fx["chosen"])
    batch = np.stack([fx["shifts"], fx["shifts"] + 0.13])
    plan = QueryPlan()
    slots = {
        "count": plan.masked_count(frame, selection),
        "sum": plan.masked_sum(frame, selection),
        "minmax": plan.masked_minmax(frame, selection),
        "clipped": plan.masked_clipped_sum(frame, selection, fx["center"],
                                           1.5),
        "hists": plan.masked_axis_histograms(frame, selection, 0.4),
        "heaviest": plan.heaviest_cell_counts(search, fx["width"], batch),
        "cell": plan.cell_histogram(search, fx["width"], fx["shifts"],
                                    return_inverse=True),
        "axis": plan.axis_interval_labels(frame, 0.4, rows=fx["rows"]),
        "grid": plan.count_within_many(fx["points"][:5], [0.4, 1.1]),
        "scores": plan.capped_average_scores([0.3, 0.8], 40),
    }
    return plan, slots, (search, frame, selection)


def reference_results(fx):
    """The direct-call reference, computed on the dense backend."""
    backend = DenseBackend(fx["points"])
    search = backend.view(fx["matrix"])
    frame = backend.view(fx["basis"])
    rows = fx["rows"]
    batch = np.stack([fx["shifts"], fx["shifts"] + 0.13])
    return {
        "count": frame.masked_count(rows),
        "sum": frame.masked_sum(rows),
        "minmax": frame.masked_minmax(rows),
        "clipped": frame.masked_clipped_sum(rows, fx["center"], 1.5),
        "hists": frame.masked_axis_histograms(rows, 0.4),
        "heaviest": search.heaviest_cell_counts(fx["width"], batch),
        "cell": search.cell_histogram(fx["width"], fx["shifts"],
                                      return_inverse=True),
        "axis": frame.axis_interval_labels(0.4, rows=rows),
        "grid": backend.count_within_many(fx["points"][:5], [0.4, 1.1]),
        "scores": backend.capped_average_scores([0.3, 0.8], 40),
    }


def assert_matches(key, got, expected):
    if key == "clipped":
        assert got.count == expected.count, key
        assert np.array_equal(got.vector_sum, expected.vector_sum), key
    elif key == "hists":
        for (gl, gc), (el, ec) in zip(got, expected):
            assert np.array_equal(gl, el), key
            assert np.array_equal(gc, ec), key
    elif key == "cell":
        for g, e in zip(got, expected):
            assert np.array_equal(g, e), key
    elif key == "count":
        assert got == expected, key
    else:
        assert np.array_equal(got, expected), key


class TestPlanParity:
    """execute(plan) == the direct calls, bitwise, on every backend."""

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_all_ops_match_direct_calls(self, plan_fixture, name):
        expected = reference_results(plan_fixture)
        backend = make_backend(name, plan_fixture["points"])
        plan, slots, _ = build_plan(backend, plan_fixture)
        results = backend.execute(plan)
        assert len(results) == len(plan)
        for key, slot in slots.items():
            assert_matches(key, results[slot], expected[key])

    @pytest.mark.parametrize("shards", (1, 2, 7))
    def test_sharded_shard_count_invisible(self, plan_fixture, shards):
        expected = reference_results(plan_fixture)
        backend = make_backend("sharded", plan_fixture["points"],
                               shards=shards)
        plan, slots, _ = build_plan(backend, plan_fixture)
        results = backend.execute(plan)
        for key, slot in slots.items():
            assert_matches(key, results[slot], expected[key])

    def test_mask_and_row_selections(self, plan_fixture):
        """Boolean-mask and row-multiset selections ride plans too."""
        fx = plan_fixture
        rows = fx["rows"]
        mask = np.zeros(fx["points"].shape[0], dtype=bool)
        mask[rows] = True
        expected = DenseBackend(fx["points"]).view(fx["basis"]).masked_sum(
            rows
        )
        for name in ("dense", "sharded"):
            backend = make_backend(name, fx["points"])
            frame = backend.view(fx["basis"])
            plan = QueryPlan()
            by_mask = plan.masked_sum(frame, mask)
            by_rows = plan.masked_sum(frame, rows)
            results = backend.execute(plan)
            assert np.array_equal(results[by_mask], expected), name
            assert np.array_equal(results[by_rows], expected), name


class TestSubmitDeterminism:
    """Overlapped submission cannot move a bit; resolution order is free."""

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_submit_matches_execute(self, plan_fixture, name):
        backend = make_backend(name, plan_fixture["points"])
        plan, slots, _ = build_plan(backend, plan_fixture)
        synchronous = backend.execute(plan)
        futures = [backend.submit(plan) for _ in range(3)]
        assert all(isinstance(future, PlanFuture) for future in futures)
        # Resolve out of submission order: merge order is shard order, not
        # completion or resolution order, so nothing may change.
        for future in reversed(futures):
            results = future.result()
            for key, slot in slots.items():
                assert_matches(key, results[slot], synchronous[slot])
        # A future's result list is memoised.
        assert futures[0].result() is futures[0].result()
        assert futures[0].done()

    def test_radius_score_submit_overlap(self, plan_fixture):
        """RadiusScore.submit overlaps grids and matches evaluate bitwise."""
        points = plan_fixture["points"]
        score = RadiusScore(points, target=60, backend="chunked")
        grids = [np.linspace(0.0, 2.5, 17), np.linspace(0.1, 1.3, 9)]
        futures = [score.submit(grid) for grid in grids]
        for grid, future in zip(grids, futures):
            assert np.array_equal(future.result()[0], score.evaluate(grid))


class TestPlanValidation:
    def test_foreign_view_rejected(self, plan_fixture):
        points = plan_fixture["points"]
        backend = make_backend("dense", points)
        other = make_backend("chunked", points)
        plan = QueryPlan()
        plan.cell_histogram(other.view(plan_fixture["matrix"]),
                            plan_fixture["width"], plan_fixture["shifts"])
        with pytest.raises(ValueError, match="different backend"):
            backend.execute(plan)
        sharded = make_backend("sharded", points)
        with pytest.raises(ValueError, match="different backend"):
            sharded.execute(plan)

    def test_eager_argument_validation(self, plan_fixture):
        backend = make_backend("dense", plan_fixture["points"])
        view = backend.view(plan_fixture["matrix"])
        plan = QueryPlan()
        with pytest.raises(TypeError):
            plan.masked_count("not-a-view", [0, 1])
        with pytest.raises(ValueError, match="selection"):
            plan.masked_sum(view, None)
        with pytest.raises(ValueError, match="center"):
            plan.masked_clipped_sum(view, [0, 1], np.zeros(7), 1.0)
        with pytest.raises(ValueError, match="shifts"):
            plan.heaviest_cell_counts(view, 1.0, np.zeros((2, 5)))
        with pytest.raises(ValueError, match="rows"):
            plan.axis_interval_labels(view, 1.0, rows=[-1])
        assert len(plan) == 0

    def test_selection_slots_deduplicate_by_identity(self, plan_fixture):
        backend = make_backend("dense", plan_fixture["points"])
        view = backend.view(plan_fixture["matrix"])
        selection = view.box_selection(plan_fixture["width"],
                                       plan_fixture["shifts"],
                                       plan_fixture["chosen"])
        plan = QueryPlan()
        plan.masked_count(view, selection)
        plan.masked_sum(view, selection)
        plan.masked_minmax(view, plan_fixture["rows"])
        assert len(plan.selections) == 2
        assert len(plan.views) == 1


class TestFanOutInstrumentation:
    """pool_stats counters: one round trip per shard per plan."""

    def test_plan_is_one_fanout(self, plan_fixture):
        backend = make_backend("sharded", plan_fixture["points"], shards=4)
        backend.HEAVIEST_CELL_TOP_K = None    # no truncation → no recount
        plan, _, _ = build_plan(backend, plan_fixture)
        before = backend.pool_stats()
        backend.execute(plan)
        after = backend.pool_stats()
        # The bundle is one fan-out; the coordinator op in the plan
        # (capped_average_scores) runs its own internal fan-out (the
        # truncated-statistic build), so the delta is exactly two.
        assert after["plans"] - before["plans"] == 1
        assert after["fanouts"] - before["fanouts"] == 2
        assert after["shard_tasks"] - before["shard_tasks"] == 2 * 4

    def test_bundle_only_plan_is_exactly_one_fanout(self, plan_fixture):
        fx = plan_fixture
        backend = make_backend("sharded", fx["points"], shards=4)
        backend.HEAVIEST_CELL_TOP_K = None
        frame = backend.view(fx["basis"])
        search = backend.view(fx["matrix"])
        selection = search.box_selection(fx["width"], fx["shifts"],
                                         fx["chosen"])
        plan = QueryPlan()
        plan.masked_count(frame, selection)
        plan.masked_axis_histograms(frame, selection, 0.4)
        plan.masked_clipped_sum(frame, selection, fx["center"], 1.5)
        plan.count_within_many(fx["points"][:3], [0.5])
        before = backend.pool_stats()
        backend.execute(plan)
        after = backend.pool_stats()
        assert after["fanouts"] - before["fanouts"] == 1
        assert after["shard_tasks"] - before["shard_tasks"] == 4

    def test_pool_stats_serial_reports_parent_caches(self, plan_fixture):
        backend = make_backend("sharded", plan_fixture["points"], shards=2)
        backend.radius_counts(0.5)
        stats = backend.pool_stats()
        assert stats["parallel"] is False
        assert stats["num_shards"] == 2
        [worker] = stats["workers"]
        assert worker["built_shards"] == [0, 1]


class TestGoodCenterRoundTrips:
    """The acceptance criterion: each GoodCenter stage is one plan, one
    round trip per shard — search batches included — and the selection's
    membership is derived exactly once per shard for all of steps 8-11."""

    JL_CONFIG = GoodCenterConfig(jl_constant=0.3)
    PARAMS = PrivacyParams(16.0, 1e-4)

    @pytest.fixture(scope="class")
    def jl_points(self):
        rng = np.random.default_rng(3)
        dimension = 8
        center = np.full(dimension, 0.5)
        cluster = center + rng.normal(0, 0.015, size=(900, dimension))
        noise = rng.uniform(0, 1, size=(300, dimension))
        return np.vstack([cluster, noise])

    def run_counted(self, points, monkeypatch, **kwargs):
        derivations = []
        original = sharded_module._ShardSet.view_label_mask

        def spy(self, shard, *args):
            derivations.append(shard)
            return original(self, shard, *args)

        monkeypatch.setattr(sharded_module._ShardSet, "view_label_mask", spy)
        # Speculation off: these tests pin the *unspeculated* per-stage plan
        # counts (speculation's own accounting — plans = these + misses — is
        # TestSpeculativePlans' job, and a hit/miss depends on noise).
        monkeypatch.setattr(good_center_module, "_SPECULATIVE_PLANS", False)
        backend = ShardedBackend(points, num_shards=3, num_workers=0)
        backend.HEAVIEST_CELL_TOP_K = None
        result = good_center(points, params=self.PARAMS, backend=backend,
                             **kwargs)
        return result, backend.pool_stats(), derivations

    def test_jl_path_one_round_trip_per_stage(self, jl_points, monkeypatch):
        result, stats, derivations = self.run_counted(
            jl_points, monkeypatch, radius=0.1, target=700,
            config=self.JL_CONFIG, rng=1,
        )
        assert result.found
        assert result.projected_dimension < jl_points.shape[1]
        batch = ShardedBackend.HEAVIEST_CELL_BATCH
        search_plans = -(-result.attempts // batch)     # ceil
        # One plan per search batch + step 7 + steps 8-9 + steps 10-11,
        # each exactly one fan-out (= one round trip per shard).
        assert stats["plans"] == search_plans + 3
        assert stats["fanouts"] == stats["plans"]
        assert stats["shard_tasks"] == stats["fanouts"] * 3
        # The BoxSelection membership is derived exactly once per shard for
        # the whole rotated stage (the steps-10-11 plan hits the token
        # cache), never re-derived per masked query.
        assert sorted(derivations) == [0, 1, 2]

    def test_identity_path_one_round_trip_per_stage(self, medium_cluster_data,
                                                    monkeypatch):
        points = medium_cluster_data.points
        result, stats, derivations = self.run_counted(
            points, monkeypatch, radius=0.05, target=400, rng=0,
        )
        assert result.found
        assert result.projected_dimension == points.shape[1]
        batch = ShardedBackend.HEAVIEST_CELL_BATCH
        search_plans = -(-result.attempts // batch)
        # Identity path skips steps 8-9: search batches + step 7 + the
        # steps-10-11 statistics plan.
        assert stats["plans"] == search_plans + 2
        assert stats["fanouts"] == stats["plans"]
        # Membership: once per shard, for the single masked plan.
        assert sorted(derivations) == [0, 1, 2]

    def test_abstain_branch_same_round_trips(self, jl_points, monkeypatch):
        """The NoisyAVG abstain branch issues the same single statistics
        round trip (the abstain decision happens in the parent)."""
        starved = GoodCenterConfig(jl_constant=0.3,
                                   budget_split=(0.4, 0.4, 0.15, 0.001))
        result, stats, derivations = self.run_counted(
            jl_points, monkeypatch, radius=0.1, target=700, config=starved,
            rng=4,
        )
        assert not result.found
        batch = ShardedBackend.HEAVIEST_CELL_BATCH
        search_plans = -(-result.attempts // batch)
        assert stats["plans"] == search_plans + 3
        assert stats["fanouts"] == stats["plans"]
        assert sorted(derivations) == [0, 1, 2]


class TestSpeculativePlans:
    """_SPECULATIVE_PLANS: in-flight predicted plans must never move a byte
    of any release — hit or miss — and the accounting must close: the
    speculated run issues exactly the unspeculated run's plans plus one per
    recorded miss (a hit *replaces* the stage's real plan, a discarded miss
    rides alongside it)."""

    JL_CONFIG = GoodCenterConfig(jl_constant=0.3)
    PARAMS = PrivacyParams(16.0, 1e-4)
    STAGES = {"search->box", "box->axes", "box->avg", "axes->avg"}

    @pytest.fixture(scope="class")
    def jl_points(self):
        rng = np.random.default_rng(3)
        dimension = 8
        center = np.full(dimension, 0.5)
        cluster = center + rng.normal(0, 0.015, size=(900, dimension))
        noise = rng.uniform(0, 1, size=(300, dimension))
        return np.vstack([cluster, noise])

    def run(self, points, **kwargs):
        backend = ShardedBackend(points, num_shards=3, num_workers=0)
        backend.HEAVIEST_CELL_TOP_K = None
        result = good_center(points, params=self.PARAMS, backend=backend,
                             **kwargs)
        return result, backend.pool_stats()

    @staticmethod
    def totals(stats):
        spec = stats["speculation"]
        hits = sum(counters["hits"] for counters in spec.values())
        misses = sum(counters["misses"] for counters in spec.values())
        return spec, hits, misses

    @staticmethod
    def assert_same_release(ours, theirs):
        assert ours.found == theirs.found
        assert ours.attempts == theirs.attempts
        if ours.found:
            assert np.array_equal(ours.center, theirs.center)
            assert ours.radius_bound == theirs.radius_bound
            assert ours.captured_count == theirs.captured_count

    def test_jl_speculation_release_neutral_accounting_closes(
            self, jl_points, monkeypatch):
        kwargs = dict(radius=0.1, target=700, config=self.JL_CONFIG, rng=1)
        spec_result, spec_stats = self.run(jl_points, **kwargs)
        monkeypatch.setattr(good_center_module, "_SPECULATIVE_PLANS", False)
        base_result, base_stats = self.run(jl_points, **kwargs)
        self.assert_same_release(spec_result, base_result)
        spec, hits, misses = self.totals(spec_stats)
        assert base_stats["speculation"] == {}
        assert set(spec) <= self.STAGES
        # Every noise gate of the JL path was speculated at.
        assert hits + misses >= 3
        assert spec_stats["plans"] == base_stats["plans"] + misses

    def test_identity_speculation_release_neutral(self, medium_cluster_data,
                                                  monkeypatch):
        points = medium_cluster_data.points
        kwargs = dict(radius=0.05, target=400, rng=0)
        spec_result, spec_stats = self.run(points, **kwargs)
        monkeypatch.setattr(good_center_module, "_SPECULATIVE_PLANS", False)
        base_result, base_stats = self.run(points, **kwargs)
        self.assert_same_release(spec_result, base_result)
        spec, hits, misses = self.totals(spec_stats)
        assert set(spec) <= {"search->box", "box->avg"}
        assert "box->avg" in spec
        assert spec_stats["plans"] == base_stats["plans"] + misses

    def test_full_mispredict_streak_release_identical(self, jl_points,
                                                      monkeypatch):
        """A pathological predictor (the *lightest* slot) forces a miss at
        every histogram gate; the discarded in-flight plans must leave the
        release bitwise untouched and each miss must cost exactly one extra
        plan."""
        kwargs = dict(radius=0.1, target=700, config=self.JL_CONFIG, rng=1)
        monkeypatch.setattr(good_center_module, "_SPECULATIVE_PLANS", False)
        base_result, base_stats = self.run(jl_points, **kwargs)
        monkeypatch.setattr(good_center_module, "_SPECULATIVE_PLANS", True)
        monkeypatch.setattr(
            good_center_module, "_predict_slot",
            lambda counts: int(np.argmin(np.asarray(counts))),
        )
        spec_result, spec_stats = self.run(jl_points, **kwargs)
        self.assert_same_release(spec_result, base_result)
        spec, hits, misses = self.totals(spec_stats)
        assert spec["box->axes"] == {"hits": 0, "misses": 1}
        assert spec["axes->avg"] == {"hits": 0, "misses": 1}
        assert spec_stats["plans"] == base_stats["plans"] + misses

    def test_non_sharded_backends_never_speculate(self, jl_points):
        """supports_speculation gates the whole subsystem: serial backends
        evaluate submit() eagerly, so speculating there is pure waste."""
        backend = BACKENDS["dense"](jl_points)
        result = good_center(jl_points, radius=0.1, target=700,
                             params=self.PARAMS, config=self.JL_CONFIG,
                             rng=1, backend=backend)
        assert result.found
        assert backend.speculation_stats() == {}


class TestKClusterAsyncCoverage:
    """k_cluster's submitted coverage plans: deterministic, release-neutral."""

    def test_ball_coverages_deterministic_and_release_neutral(
            self, small_cluster_data):
        points = small_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        plain = k_cluster(points, k=2, params=params, rng=7)
        assert plain.ball_coverages is None
        with_backend = k_cluster(points, k=2, params=params, rng=7,
                                 backend="chunked")
        other_backend = k_cluster(points, k=2, params=params, rng=7,
                                  backend="dense")
        # The diagnostics are pure post-processing: releases are bitwise
        # unchanged with and without them.
        assert with_backend.num_found == plain.num_found
        for ours, theirs in zip(with_backend.balls, plain.balls):
            assert np.array_equal(ours.center, theirs.center)
            assert ours.radius == theirs.radius
        assert with_backend.covered_fraction == plain.covered_fraction
        # And backend-independent.
        assert with_backend.ball_coverages == other_backend.ball_coverages
        assert len(with_backend.ball_coverages) == with_backend.num_found

    def test_matches_synchronous_harness_counts(self, small_cluster_data):
        points = small_cluster_data.points
        params = PrivacyParams(8.0, 1e-5)
        result = k_cluster(points, k=2, params=params, rng=7,
                           backend="chunked")
        backend = BACKENDS["chunked"](points)
        future = submit_coverage_counts(backend, result.balls)
        assert coverage_counts_result(future) == result.ball_coverages


class TestFusedPlanSeam:
    """_FUSED_QUERY_PLANS off forces the PR 4 per-query fan-outs; releases
    must not move a byte (the transport-only contract)."""

    def test_unfused_issues_more_fanouts_same_release(self, monkeypatch):
        rng = np.random.default_rng(3)
        dimension = 8
        center = np.full(dimension, 0.5)
        points = np.vstack([
            center + rng.normal(0, 0.015, size=(900, dimension)),
            rng.uniform(0, 1, size=(300, dimension)),
        ])
        config = GoodCenterConfig(jl_constant=0.3)
        params = PrivacyParams(16.0, 1e-4)

        def run():
            backend = ShardedBackend(points, num_shards=3, num_workers=0)
            backend.HEAVIEST_CELL_TOP_K = None
            result = good_center(points, radius=0.1, target=700,
                                 params=params, config=config, rng=1,
                                 backend=backend)
            return result, backend.pool_stats()

        fused_result, fused_stats = run()
        monkeypatch.setattr(good_center_module, "_FUSED_QUERY_PLANS", False)
        unfused_result, unfused_stats = run()
        monkeypatch.setattr(good_center_module, "_FUSED_QUERY_PLANS", True)
        assert fused_result.found and unfused_result.found
        assert np.array_equal(fused_result.center, unfused_result.center)
        assert fused_result.radius_bound == unfused_result.radius_bound
        assert fused_result.attempts == unfused_result.attempts
        assert unfused_stats["plans"] == 0
        assert unfused_stats["fanouts"] >= fused_stats["fanouts"]
