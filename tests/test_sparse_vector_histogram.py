"""Tests for AboveThreshold (sparse vector) and the stability-based histogram."""

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.mechanisms.above_threshold import AboveThreshold, sparse_vector_first_above
from repro.mechanisms.histogram import (
    bucketize,
    choosing_mechanism_loss,
    choosing_mechanism_requirement,
    noisy_histogram,
    release_threshold,
    stable_histogram_choice,
)


class TestAboveThreshold:
    def test_fires_on_clearly_above_query(self):
        mechanism = AboveThreshold(threshold=100.0, params=PrivacyParams(4.0),
                                   max_queries=10, rng=0)
        result = mechanism.query(1000.0)
        assert result.above
        assert mechanism.halted

    def test_does_not_fire_on_clearly_below_queries(self):
        mechanism = AboveThreshold(threshold=1000.0, params=PrivacyParams(4.0),
                                   max_queries=20, rng=0)
        answers = [mechanism.query(0.0).above for _ in range(20)]
        assert not any(answers)

    def test_raises_after_halt(self):
        mechanism = AboveThreshold(threshold=0.0, params=PrivacyParams(4.0), rng=0)
        mechanism.query(1000.0)
        with pytest.raises(RuntimeError):
            mechanism.query(1000.0)

    def test_query_index_increments(self):
        mechanism = AboveThreshold(threshold=1e9, params=PrivacyParams(1.0),
                                   max_queries=5, rng=0)
        indices = [mechanism.query(0.0).query_index for _ in range(5)]
        assert indices == [0, 1, 2, 3, 4]

    def test_accuracy_bound_monotone(self):
        mechanism = AboveThreshold(threshold=0.0, params=PrivacyParams(1.0),
                                   max_queries=100, rng=0)
        assert mechanism.accuracy_bound(0.01) > mechanism.accuracy_bound(0.1)

    def test_first_above_helper_finds_jump(self):
        values = [0.0] * 10 + [500.0] + [0.0] * 5
        index = sparse_vector_first_above(values, threshold=100.0,
                                          params=PrivacyParams(4.0), rng=0)
        assert index == 10

    def test_first_above_helper_returns_none(self):
        index = sparse_vector_first_above([0.0] * 10, threshold=1e6,
                                          params=PrivacyParams(4.0), rng=0)
        assert index is None

    def test_invalid_max_queries(self):
        with pytest.raises(ValueError):
            AboveThreshold(0.0, PrivacyParams(1.0), max_queries=0)


class TestStableHistogram:
    def test_finds_dominant_cell(self):
        labels = ["heavy"] * 500 + ["light"] * 3
        choice = stable_histogram_choice(labels, PrivacyParams(1.0, 1e-6), rng=0)
        assert choice.found
        assert choice.key == "heavy"
        assert choice.true_count == 500

    def test_abstains_when_all_cells_tiny(self):
        labels = [f"cell_{i}" for i in range(50)]  # every cell has count 1
        choice = stable_histogram_choice(labels, PrivacyParams(1.0, 1e-6), rng=0)
        assert not choice.found

    def test_requires_positive_delta(self):
        with pytest.raises(ValueError):
            stable_histogram_choice(["a"] * 100, PrivacyParams(1.0, 0.0))

    def test_noisy_histogram_suppresses_light_cells(self):
        labels = ["big"] * 300 + ["tiny"]
        released = noisy_histogram(labels, PrivacyParams(1.0, 1e-6), rng=0)
        assert "big" in released
        assert "tiny" not in released

    def test_release_threshold_grows_as_delta_shrinks(self):
        loose = release_threshold(PrivacyParams(1.0, 1e-3))
        tight = release_threshold(PrivacyParams(1.0, 1e-9))
        assert tight > loose

    def test_theorem_25_bounds_positive(self):
        params = PrivacyParams(1.0, 1e-6)
        assert choosing_mechanism_requirement(params, 0.1, 1000) > 0
        assert choosing_mechanism_loss(params, 0.1, 1000) > 0

    def test_theorem_25_utility(self):
        """When the max cell satisfies the Theorem 2.5 requirement, the chosen
        cell is (w.h.p.) within the stated loss of the maximum."""
        params = PrivacyParams(2.0, 1e-6)
        n = 2000
        requirement = choosing_mechanism_requirement(params, beta=0.1, num_elements=n)
        heavy_count = int(requirement) + 50
        labels = ["heavy"] * heavy_count + ["other"] * 30
        successes = 0
        for seed in range(20):
            choice = stable_histogram_choice(labels, params, rng=seed)
            loss = choosing_mechanism_loss(params, beta=0.1, num_elements=len(labels))
            if choice.found and choice.true_count >= heavy_count - loss:
                successes += 1
        assert successes >= 18

    def test_bucketize(self):
        values = np.array([0.0, 0.5, 1.0, 1.5])
        buckets = bucketize(values, width=1.0)
        assert buckets.tolist() == [0, 0, 1, 1]
        shifted = bucketize(values, width=1.0, offset=0.25)
        assert shifted.tolist() == [-1, 0, 0, 1]

    def test_bucketize_rejects_bad_width(self):
        with pytest.raises(ValueError):
            bucketize(np.array([1.0]), width=0.0)
