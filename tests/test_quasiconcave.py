"""Tests for the quasi-concave promise-problem solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accounting.params import PrivacyParams
from repro.quasiconcave.binary_search import binary_search_loss, noisy_binary_search
from repro.quasiconcave.quality import (
    ArrayQuality,
    CallableQuality,
    is_quasi_concave,
)
from repro.quasiconcave.rec_concave import (
    practical_promise,
    rec_concave,
    rec_concave_promise,
)


def _tent(size: int, peak: int, height: float) -> np.ndarray:
    """A quasi-concave 'tent' score peaking at the given index."""
    indices = np.arange(size)
    return np.maximum(0.0, height - np.abs(indices - peak))


class TestQualityInterface:
    def test_array_quality(self):
        quality = ArrayQuality([1.0, 5.0, 2.0])
        assert quality.size == 3
        assert quality.value(1) == 5.0
        assert quality.values([0, 2]).tolist() == [1.0, 2.0]

    def test_array_quality_rejects_empty(self):
        with pytest.raises(ValueError):
            ArrayQuality([])

    def test_callable_quality_memoises(self):
        calls = []

        def score(index):
            calls.append(index)
            return float(index)

        quality = CallableQuality(score, size=10)
        quality.value(3)
        quality.value(3)
        quality.values([3, 4])
        assert calls.count(3) == 1
        assert quality.evaluations == 2

    def test_callable_quality_batch_function(self):
        quality = CallableQuality(lambda i: float(i), size=100,
                                  batch_function=lambda idx: idx.astype(float) * 2)
        # Batch function takes precedence for unseen indices.
        assert quality.values([5]).tolist() == [10.0]

    def test_callable_quality_bounds(self):
        quality = CallableQuality(lambda i: 0.0, size=5)
        with pytest.raises(IndexError):
            quality.value(7)

    def test_is_quasi_concave(self):
        assert is_quasi_concave([1, 2, 3, 3, 2, 1])
        assert is_quasi_concave([0, 0, 0])
        assert is_quasi_concave([5])
        assert not is_quasi_concave([3, 1, 3])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30),
           st.integers(min_value=0, max_value=29))
    def test_sorted_then_reversed_is_quasi_concave(self, values, split):
        split = min(split, len(values))
        rising = sorted(values[:split])
        falling = sorted(values[split:], reverse=True)
        # Make the junction consistent so the sequence is single-peaked.
        if rising and falling and rising[-1] > falling[0]:
            falling = [rising[-1]] + falling
        assert is_quasi_concave(rising + falling)


class TestRecConcave:
    def test_finds_near_optimal_on_tent(self):
        scores = _tent(size=2000, peak=700, height=500.0)
        quality = ArrayQuality(scores)
        result = rec_concave(quality, promise=400.0, alpha=0.5,
                             params=PrivacyParams(2.0, 1e-6), rng=0)
        assert scores[result.index] >= 200.0

    def test_single_candidate(self):
        result = rec_concave(ArrayQuality([7.0]), promise=5.0, alpha=0.5,
                             params=PrivacyParams(1.0, 1e-6), rng=0)
        assert result.index == 0
        assert result.quality == 7.0

    def test_plateau_selects_inside(self):
        scores = np.zeros(500)
        scores[100:200] = 300.0
        result = rec_concave(ArrayQuality(scores), promise=250.0, alpha=0.5,
                             params=PrivacyParams(4.0, 1e-6), rng=1)
        assert 90 <= result.index <= 210

    def test_rejects_bad_arguments(self):
        quality = ArrayQuality([1.0, 2.0])
        with pytest.raises(ValueError):
            rec_concave(quality, promise=0.0, alpha=0.5, params=PrivacyParams(1.0))
        with pytest.raises(ValueError):
            rec_concave(quality, promise=1.0, alpha=1.5, params=PrivacyParams(1.0))

    def test_reproducible_with_seed(self):
        scores = _tent(size=300, peak=40, height=100.0)
        a = rec_concave(ArrayQuality(scores), 50.0, 0.5, PrivacyParams(1.0), rng=9)
        b = rec_concave(ArrayQuality(scores), 50.0, 0.5, PrivacyParams(1.0), rng=9)
        assert a.index == b.index

    def test_success_rate_over_seeds(self):
        scores = _tent(size=1000, peak=321, height=400.0)
        quality = ArrayQuality(scores)
        successes = sum(
            scores[rec_concave(quality, 300.0, 0.5, PrivacyParams(2.0, 1e-6),
                               rng=seed).index] >= 150.0
            for seed in range(20)
        )
        assert successes >= 17

    def test_promise_formulas(self):
        params = PrivacyParams(1.0, 1e-6)
        paper = rec_concave_promise(10 ** 6, alpha=0.5, beta=0.1, params=params)
        practical = practical_promise(10 ** 6, alpha=0.5, beta=0.1, params=params)
        assert paper > practical > 0

    def test_promise_requires_positive_delta(self):
        with pytest.raises(ValueError):
            rec_concave_promise(100, 0.5, 0.1, PrivacyParams(1.0, 0.0))


class TestNoisyBinarySearch:
    def test_finds_threshold_crossing(self):
        scores = np.concatenate([np.zeros(400), np.full(600, 100.0)])
        result = noisy_binary_search(ArrayQuality(scores), threshold=50.0,
                                     params=PrivacyParams(4.0), rng=0)
        assert 380 <= result.index <= 420

    def test_gradual_ramp(self):
        scores = np.arange(1000, dtype=float)
        result = noisy_binary_search(ArrayQuality(scores), threshold=500.0,
                                     params=PrivacyParams(4.0), rng=1)
        assert abs(result.index - 500) <= 60

    def test_single_candidate(self):
        result = noisy_binary_search(ArrayQuality([3.0]), threshold=1.0,
                                     params=PrivacyParams(1.0), rng=0)
        assert result.index == 0
        assert result.comparisons == 0

    def test_comparisons_logarithmic(self):
        scores = np.arange(4096, dtype=float)
        result = noisy_binary_search(ArrayQuality(scores), threshold=1000.0,
                                     params=PrivacyParams(4.0), rng=0)
        assert result.comparisons <= 12

    def test_loss_grows_with_domain(self):
        params = PrivacyParams(1.0)
        assert (binary_search_loss(2 ** 20, params, 1.0, 0.1)
                > binary_search_loss(2 ** 5, params, 1.0, 0.1))

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            noisy_binary_search(ArrayQuality([1.0, 2.0]), 1.0,
                                PrivacyParams(1.0), sensitivity=0.0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=10, max_value=2000),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_always_returns_valid_index(self, size, seed):
        scores = np.sort(np.random.default_rng(seed).uniform(0, 100, size=size))
        result = noisy_binary_search(ArrayQuality(scores), threshold=50.0,
                                     params=PrivacyParams(1.0), rng=seed)
        assert 0 <= result.index < size
