"""Integration tests for the combined 1-cluster solver (Theorem 3.2)."""

import numpy as np
import pytest

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.one_cluster import one_cluster
from repro.core.params import (
    additive_loss_bound,
    good_radius_gamma,
    k_clustering_budget_bound,
    minimum_cluster_size,
    radius_approximation_factor,
)
from repro.datasets.synthetic import identical_points_cluster, planted_cluster
from repro.geometry.grid import GridDomain


class TestOneClusterIntegration:
    def test_end_to_end_recovery(self, medium_cluster_data, neighbor_backend):
        data = medium_cluster_data
        params = PrivacyParams(8.0, 1e-5)
        result = one_cluster(data.points, target=400, params=params, rng=0,
                             backend=neighbor_backend(data.points))
        assert result.found
        error = np.linalg.norm(result.ball.center - data.true_ball.center)
        assert error <= 0.3
        assert result.effective_radius(data.points) <= 0.4

    def test_radius_phase_feeds_center_phase(self, medium_cluster_data):
        data = medium_cluster_data
        params = PrivacyParams(8.0, 1e-5)
        result = one_cluster(data.points, target=400, params=params, rng=1)
        assert result.radius_result.radius > 0
        assert result.center_result.found
        assert result.ball.radius == result.center_result.radius_bound

    def test_zero_radius_cluster(self):
        points = identical_points_cluster(n=600, d=2, cluster_size=450, rng=0)
        params = PrivacyParams(8.0, 1e-5)
        result = one_cluster(points, target=350, params=params, rng=1)
        assert result.found
        assert result.radius_result.zero_cluster
        assert result.ball.radius == 0.0
        # The released centre must coincide with the repeated point.
        assert result.ball.count(points, slack=1e-9) >= 350

    def test_minority_cluster(self):
        """The headline capability: the cluster holds well under half the data."""
        data = planted_cluster(n=1500, d=2, cluster_size=450,
                               cluster_radius=0.04, center=[0.3, 0.7], rng=5)
        params = PrivacyParams(8.0, 1e-5)
        result = one_cluster(data.points, target=350, params=params, rng=2)
        assert result.found
        error = np.linalg.norm(result.ball.center - data.true_ball.center)
        assert error <= 0.3

    def test_coverage_helper(self, medium_cluster_data):
        params = PrivacyParams(8.0, 1e-5)
        result = one_cluster(medium_cluster_data.points, target=400,
                             params=params, rng=3)
        assert result.coverage(medium_cluster_data.points) >= 0

    def test_found_false_handled(self, small_cluster_data):
        params = PrivacyParams(0.01, 1e-9)
        result = one_cluster(small_cluster_data.points, target=200,
                             params=params, rng=0)
        if not result.found:
            assert result.ball is None
            assert result.effective_radius(small_cluster_data.points) == float("inf")
            assert result.coverage(small_cluster_data.points) == 0

    def test_target_validation(self, small_cluster_data):
        with pytest.raises(ValueError):
            one_cluster(small_cluster_data.points, target=10 ** 6,
                        params=PrivacyParams(1.0, 1e-6))

    def test_ledger_total_within_budget(self, medium_cluster_data):
        params = PrivacyParams(4.0, 1e-6)
        ledger = PrivacyLedger()
        one_cluster(medium_cluster_data.points, target=400, params=params,
                    rng=4, ledger=ledger)
        total = ledger.total_basic()
        assert total is not None
        assert total.epsilon <= params.epsilon + 1e-9
        assert total.delta <= params.delta + 1e-12

    def test_custom_budget_fraction(self, medium_cluster_data):
        config = OneClusterConfig(radius_budget_fraction=0.6)
        params = PrivacyParams(8.0, 1e-5)
        result = one_cluster(medium_cluster_data.points, target=400,
                             params=params, config=config, rng=5)
        assert result.radius_result.radius >= 0

    def test_deterministic_with_seed(self, medium_cluster_data):
        params = PrivacyParams(8.0, 1e-5)
        a = one_cluster(medium_cluster_data.points, 400, params, rng=11)
        b = one_cluster(medium_cluster_data.points, 400, params, rng=11)
        assert a.found == b.found
        if a.found:
            assert np.allclose(a.ball.center, b.ball.center)

    def test_explicit_domain(self, small_cluster_data):
        domain = GridDomain.unit_cube(dimension=2, side=129)
        params = PrivacyParams(8.0, 1e-5)
        result = one_cluster(small_cluster_data.points, target=200,
                             params=params, domain=domain, rng=6)
        assert result.radius_result.radius <= domain.diameter


class TestTheoremParameterFormulas:
    def test_minimum_cluster_size_scaling(self):
        params = PrivacyParams(1.0, 1e-6)
        low_d = minimum_cluster_size(GridDomain.unit_cube(2, 1025), params, 0.1, 1000)
        high_d = minimum_cluster_size(GridDomain.unit_cube(32, 1025), params, 0.1, 1000)
        assert high_d > low_d

    def test_additive_loss_scaling_in_epsilon(self):
        domain = GridDomain.unit_cube(2, 1025)
        loose = additive_loss_bound(domain, PrivacyParams(4.0, 1e-6), 0.1, 1000)
        tight = additive_loss_bound(domain, PrivacyParams(0.5, 1e-6), 0.1, 1000)
        assert tight > loose

    def test_radius_factor_sqrt_log_n(self):
        assert radius_approximation_factor(10 ** 6) == pytest.approx(
            np.sqrt(np.log(10 ** 6)))

    def test_gamma_positive_and_grows_with_domain(self):
        params = PrivacyParams(1.0, 1e-6)
        small = good_radius_gamma(GridDomain.unit_cube(2, 5), params, 0.1)
        large = good_radius_gamma(GridDomain.unit_cube(2, 2 ** 20), params, 0.1)
        assert 0 < small <= large

    def test_k_clustering_bound(self):
        assert k_clustering_budget_bound(10_000, 4, PrivacyParams(1.0)) > 1
