"""Tests for JL projection, random rotations, and box partitions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.boxes import AxisIntervalPartition, Box, ShiftedBoxPartition
from repro.geometry.jl import (
    JohnsonLindenstrauss,
    jl_distortion_failure_probability,
    jl_target_dimension,
)
from repro.geometry.rotation import (
    project_onto_basis,
    random_orthonormal_basis,
    rotated_projection_spread_bound,
)


class TestJohnsonLindenstrauss:
    def test_target_dimension_grows_with_n(self):
        assert jl_target_dimension(10_000) > jl_target_dimension(100)

    def test_projection_shape(self):
        projection = JohnsonLindenstrauss(input_dimension=50, output_dimension=10, rng=0)
        points = np.random.default_rng(1).normal(size=(20, 50))
        assert projection.project(points).shape == (20, 10)

    def test_distance_preservation_statistically(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(50, 200))
        projection = JohnsonLindenstrauss(input_dimension=200, output_dimension=60, rng=3)
        projected = projection(points)
        original = np.linalg.norm(points[0] - points[1:], axis=1)
        mapped = np.linalg.norm(projected[0] - projected[1:], axis=1)
        ratios = mapped / original
        assert 0.6 < np.median(ratios) < 1.4

    def test_for_points_caps_at_ambient_dimension(self):
        points = np.random.default_rng(0).normal(size=(1000, 5))
        projection = JohnsonLindenstrauss.for_points(points, rng=0)
        assert projection.output_dimension <= 5

    def test_failure_probability_decreases_with_k(self):
        assert (jl_distortion_failure_probability(100, 200)
                < jl_distortion_failure_probability(100, 20))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            JohnsonLindenstrauss(input_dimension=0, output_dimension=5)


class TestRotation:
    def test_basis_is_orthonormal(self):
        basis = random_orthonormal_basis(8, rng=0)
        assert np.allclose(basis @ basis.T, np.eye(8), atol=1e-9)

    def test_projection_preserves_norms(self):
        basis = random_orthonormal_basis(6, rng=1)
        points = np.random.default_rng(2).normal(size=(30, 6))
        rotated = project_onto_basis(points, basis)
        assert np.allclose(np.linalg.norm(points, axis=1),
                           np.linalg.norm(rotated, axis=1), atol=1e-9)

    def test_rotation_roundtrip(self):
        basis = random_orthonormal_basis(4, rng=3)
        points = np.random.default_rng(4).normal(size=(10, 4))
        rotated = project_onto_basis(points, basis)
        restored = rotated @ basis
        assert np.allclose(points, restored, atol=1e-9)

    def test_spread_bound_shrinks_with_dimension(self):
        low_d = rotated_projection_spread_bound(1.0, 4, 100, 0.1)
        high_d = rotated_projection_spread_bound(1.0, 400, 100, 0.1)
        assert high_d < low_d

    def test_lemma_49_empirically(self):
        """Random rotation spreads a fixed pair's difference across axes."""
        dimension = 200
        x = np.zeros(dimension)
        y = np.zeros(dimension)
        y[0] = 1.0  # difference concentrated on one axis
        bound = rotated_projection_spread_bound(1.0, dimension, 2, beta=0.05)
        violations = 0
        for seed in range(20):
            basis = random_orthonormal_basis(dimension, rng=seed)
            projections = np.abs(project_onto_basis((x - y).reshape(1, -1), basis))
            if projections.max() > bound:
                violations += 1
        assert violations <= 2


class TestBox:
    def test_contains_and_diameter(self):
        box = Box(lower=np.array([0.0, 0.0]), upper=np.array([1.0, 2.0]))
        assert box.diameter == pytest.approx(np.sqrt(5.0))
        assert box.contains(np.array([[0.5, 1.0], [1.5, 1.0]])).tolist() == [True, False]
        assert np.allclose(box.center, [0.5, 1.0])

    def test_expanded(self):
        box = Box(lower=np.zeros(2), upper=np.ones(2)).expanded(0.5)
        assert np.allclose(box.lower, [-0.5, -0.5])
        assert np.allclose(box.upper, [1.5, 1.5])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Box(lower=np.array([1.0]), upper=np.array([0.0]))


class TestShiftedBoxPartition:
    def test_labels_are_consistent_with_boxes(self):
        partition = ShiftedBoxPartition(dimension=2, width=0.3, rng=0)
        points = np.random.default_rng(1).uniform(size=(50, 2))
        labels = partition.labels(points)
        for point, label in zip(points, labels):
            box = partition.box_for_label(label)
            assert box.contains(point.reshape(1, -1))[0]

    def test_heaviest_cell_counts_cluster(self):
        cluster = np.full((100, 2), 0.5) + np.random.default_rng(0).normal(0, 0.001, (100, 2))
        partition = ShiftedBoxPartition(dimension=2, width=0.5, rng=1)
        assert partition.heaviest_cell_count(cluster) >= 50

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6),
           st.floats(min_value=0.05, max_value=0.5),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_capture_probability_bound(self, dimension, diameter, seed):
        """A set of the given diameter is captured by one box at least as often
        as the analytical lower bound predicts (statistically)."""
        width = 1.0
        partition_probability = ShiftedBoxPartition(
            dimension=dimension, width=width, rng=0
        ).cluster_capture_probability(diameter)
        rng = np.random.default_rng(seed)
        base = rng.uniform(0, 3, size=dimension)
        # Two antipodal points at the stated diameter: the worst case set.
        points = np.vstack([base, base + diameter / np.sqrt(dimension)])
        captures = 0
        trials = 60
        for trial in range(trials):
            partition = ShiftedBoxPartition(dimension=dimension, width=width,
                                            rng=1000 + trial)
            labels = partition.labels(points)
            captures += int(labels[0] == labels[1])
        observed = captures / trials
        assert observed >= partition_probability - 0.25

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ShiftedBoxPartition(dimension=2, width=0.0)


class TestAxisIntervalPartition:
    def test_labels_and_intervals(self):
        partition = AxisIntervalPartition(width=0.5)
        labels = partition.labels(np.array([0.1, 0.6, -0.2]))
        assert labels.tolist() == [0, 1, -1]
        assert partition.interval(1) == (0.5, 1.0)

    def test_extended_interval_covers_neighbours(self):
        partition = AxisIntervalPartition(width=1.0, offset=0.25)
        low, high = partition.extended_interval(0)
        assert low == pytest.approx(-0.75)
        assert high == pytest.approx(2.25)

    def test_figure2_extension_captures_cluster(self):
        """Paper Figure 2: a heavy interval of length r extended by r on each
        side captures the whole diameter-r cluster."""
        rng = np.random.default_rng(0)
        cluster = rng.uniform(0.47, 0.53, size=300)  # diameter <= 0.06
        partition = AxisIntervalPartition(width=0.06)
        labels = partition.labels(cluster)
        values, counts = np.unique(labels, return_counts=True)
        heavy = int(values[np.argmax(counts)])
        low, high = partition.extended_interval(heavy)
        assert np.all((cluster >= low) & (cluster < high))
