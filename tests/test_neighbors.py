"""Tests for the pluggable neighbor-backend layer.

The contract under test: Dense, Chunked, and Tree (scipy and pure-python)
backends are *interchangeable* — identical integer counts and identical
``L(r, S)`` values on random and adversarial datasets — and the non-dense
strategies never materialise an ``(n, n)`` distance matrix.
"""

import tracemalloc

import numpy as np
import pytest

from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.good_radius import RadiusScore, good_radius
from repro.geometry.balls import (
    capped_average_score,
    capped_average_score_profile,
    counts_around_points,
    pairwise_distances,
)
from repro.geometry.minimal_ball import smallest_ball_two_approx
from repro.neighbors import (
    BACKENDS,
    ChunkedBackend,
    DenseBackend,
    NeighborBackend,
    TreeBackend,
    auto_backend,
    resolve_backend,
)


def all_backends(points):
    """One instance of every strategy (both tree variants)."""
    return [
        DenseBackend(points),
        ChunkedBackend(points, block_size=29),
        TreeBackend(points),
        TreeBackend(points, use_scipy=False, leaf_size=7),
    ]


def backend_id(backend):
    if isinstance(backend, TreeBackend) and not backend.uses_scipy:
        return "tree-pure"
    return backend.name


DATASETS = {
    "random-2d": np.random.default_rng(0).uniform(size=(150, 2)),
    "random-1d": np.random.default_rng(1).normal(size=(120, 1)),
    "random-highd": np.random.default_rng(2).uniform(size=(80, 24)),
    "duplicates": np.vstack([
        np.zeros((7, 3)),
        np.ones((4, 3)),
        np.random.default_rng(3).uniform(size=(30, 3)),
        np.zeros((2, 3)),
    ]),
    "identical": np.full((25, 2), 0.5),
    # Integer coordinates: pairwise distances like 5.0 (3-4-5) are exactly
    # representable, so "radius exactly equal to a distance" is exercised
    # without floating-point ambiguity.
    "integer-grid": np.array(
        [[x, y] for x in range(-3, 4) for y in range(-3, 4)], dtype=float
    ),
}


def radii_for(points):
    distances = pairwise_distances(points)
    span = float(distances.max())
    rng = np.random.default_rng(99)
    probe = rng.uniform(0.0, span * 1.1, size=12)
    exact = distances[distances > 0]
    hits = [float(np.median(exact))] if exact.size else []
    return np.concatenate([[-1.0, -1e-9, 0.0, span, span + 1.0], probe, hits])


class TestCountParity:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_radius_counts_identical(self, name):
        points = DATASETS[name]
        reference = None
        for backend in all_backends(points):
            for radius in radii_for(points):
                counts = backend.radius_counts(float(radius))
                assert counts.dtype == np.int64
                # "Within radius r" means d2 <= r*r (squared-space, the
                # cKDTree convention every backend follows).
                brute = np.array([
                    np.count_nonzero(
                        ((points - x) ** 2).sum(axis=1) <= radius * radius
                    ) for x in points
                ]) if radius >= 0 else np.zeros(points.shape[0], dtype=int)
                assert np.array_equal(counts, brute), (
                    backend_id(backend), radius
                )
            reference = counts if reference is None else reference

    @pytest.mark.parametrize("name", ["random-2d", "duplicates", "integer-grid"])
    def test_query_counts_arbitrary_centers(self, name):
        points = DATASETS[name]
        rng = np.random.default_rng(7)
        centers = rng.uniform(points.min() - 0.5, points.max() + 0.5,
                              size=(23, points.shape[1]))
        for radius in (0.0, 0.3, 2.0, 5.0):
            brute = np.array([
                np.count_nonzero(((points - c) ** 2).sum(axis=1) <= radius * radius)
                for c in centers
            ])
            for backend in all_backends(points):
                counts = backend.query_radius_counts(centers, radius)
                assert np.array_equal(counts, brute), backend_id(backend)

    def test_dense_query_counts_on_overlapping_view(self):
        """A reordered view of the dataset must be treated as ordinary query
        centres, not served from the dataset-ordered matrix."""
        points = DATASETS["random-2d"]
        backend = DenseBackend(points)
        counts = backend.query_radius_counts(backend.points[::-1], 0.3)
        assert np.array_equal(counts, backend.radius_counts(0.3)[::-1])

    def test_capped_counts(self):
        points = DATASETS["duplicates"]
        for backend in all_backends(points):
            capped = backend.capped_radius_counts(0.0, cap=3)
            assert capped.max() == 3
            assert np.array_equal(
                capped, np.minimum(backend.radius_counts(0.0), 3)
            )
            assert np.all(backend.capped_radius_counts(-1.0, cap=3) == 0)
            assert np.all(backend.capped_radius_counts(1.0, cap=0) == 0)


class TestScoreParity:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_score_profiles_identical(self, name):
        points = DATASETS[name]
        n = points.shape[0]
        radii = radii_for(points)
        distances = pairwise_distances(points)
        # The Gram-matrix legacy path is only approximate (it loses ~8
        # digits to cancellation), so it is cross-checked only at radii
        # bounded away from every pairwise distance; the backends
        # themselves must agree exactly at *every* radius, boundaries
        # included.
        gaps = np.abs(radii[:, None] - distances.ravel()[None, :]).min(axis=1)
        safe = gaps > 1e-6
        for target in {1, 3, n // 2, n}:
            target = max(1, target)
            legacy = np.array([
                capped_average_score(points, float(r), target,
                                     distances=distances)
                for r in radii[safe]
            ])
            profiles = [
                backend.capped_average_scores(radii, target)
                for backend in all_backends(points)
            ]
            for profile in profiles[1:]:
                # Identical integer counts => identical scores, exactly.
                assert np.array_equal(profile, profiles[0])
            assert np.allclose(profiles[0][safe], legacy, atol=1e-6)

    def test_profile_matches_issue_tolerance(self):
        points = DATASETS["random-2d"]
        radii = np.linspace(0.0, 1.5, 40)
        profiles = {
            backend_id(b): b.capped_average_scores(radii, 40)
            for b in all_backends(points)
        }
        base = profiles.pop("dense")
        for name, profile in profiles.items():
            assert np.allclose(profile, base, atol=1e-9), name

    def test_unsorted_radii_and_scalars(self):
        points = DATASETS["random-2d"]
        backend = ChunkedBackend(points)
        radii = np.array([0.9, 0.1, -0.5, 0.4, 0.1])
        profile = backend.capped_average_scores(radii, 25)
        singles = [backend.capped_average_score(float(r), 25) for r in radii]
        assert np.array_equal(profile, np.array(singles))
        assert profile[2] == 0.0

    def test_target_validation(self):
        points = DATASETS["random-2d"]
        backend = DenseBackend(points)
        with pytest.raises(ValueError):
            backend.capped_average_scores([0.1], points.shape[0] + 1)
        with pytest.raises(ValueError):
            backend.capped_average_scores([0.1], 0)


class TestKthDistances:
    @pytest.mark.parametrize("name", ["random-2d", "duplicates", "random-highd"])
    def test_matches_sorted_matrix(self, name):
        points = DATASETS[name]
        sorted_distances = np.sort(pairwise_distances(points), axis=1)
        for k in (1, 2, points.shape[0] // 2, points.shape[0]):
            for backend in all_backends(points):
                kth = backend.kth_distances(k)
                assert np.allclose(kth, sorted_distances[:, k - 1],
                                   atol=1e-7), backend_id(backend)

    def test_k_validation(self):
        backend = DenseBackend(DATASETS["random-2d"])
        with pytest.raises(ValueError):
            backend.kth_distances(0)
        with pytest.raises(ValueError):
            backend.kth_distances(10 ** 6)

    def test_two_approx_uses_backend(self):
        points = DATASETS["random-2d"]
        reference = smallest_ball_two_approx(
            points, 50, distances=pairwise_distances(points)
        )
        for name in BACKENDS:
            ball = smallest_ball_two_approx(points, 50, backend=name)
            assert ball.radius == pytest.approx(reference.radius, abs=1e-7)


class TestSelection:
    def test_auto_backend_regimes(self):
        assert auto_backend(100, 2) == "dense"
        assert auto_backend(2048, 50) == "dense"
        assert auto_backend(50000, 2) == "tree"
        assert auto_backend(50000, 100) == "chunked"

    def test_resolve_by_name_class_instance(self):
        points = DATASETS["random-2d"]
        assert resolve_backend(points, "chunked").name == "chunked"
        assert resolve_backend(points, TreeBackend).name == "tree"
        assert isinstance(resolve_backend(points), NeighborBackend)
        instance = ChunkedBackend(points)
        assert resolve_backend(points, instance) is instance

    def test_resolve_rejects_foreign_instance(self):
        instance = ChunkedBackend(DATASETS["random-2d"])
        with pytest.raises(ValueError):
            resolve_backend(DATASETS["random-1d"], instance)

    def test_resolve_rejects_unknown(self):
        points = DATASETS["random-2d"]
        with pytest.raises(ValueError):
            resolve_backend(points, "octree")
        with pytest.raises(TypeError):
            resolve_backend(points, 42)

    def test_config_validates_backend_name(self):
        with pytest.raises(ValueError):
            OneClusterConfig(neighbor_backend="octree")
        assert OneClusterConfig(neighbor_backend="tree").neighbor_backend == "tree"


class TestIntegration:
    def test_radius_score_backend_equivalence(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(size=(90, 3))
        radii = np.linspace(0.0, 1.8, 33)
        base = RadiusScore(points, 30, backend="dense").evaluate(radii)
        for name in ("chunked", "tree"):
            assert np.array_equal(
                RadiusScore(points, 30, backend=name).evaluate(radii), base
            )

    def test_good_radius_backend_independent(self, small_cluster_data, loose_params):
        results = {
            name: good_radius(small_cluster_data.points, 200, loose_params,
                              rng=11, backend=name)
            for name in BACKENDS
        }
        radii = {result.radius for result in results.values()}
        # Identical scores + identical rng stream => identical release.
        assert len(radii) == 1

    def test_profile_helper_routes_through_backend(self):
        points = DATASETS["random-2d"]
        radii = np.linspace(0, 1.0, 11)
        via_tree = capped_average_score_profile(points, radii, 30, backend="tree")
        via_default = capped_average_score_profile(points, radii, 30)
        assert np.array_equal(via_tree, via_default)

    def test_counts_around_points_backend_param(self):
        points = DATASETS["duplicates"]
        default = counts_around_points(points, 0.0)
        for name in BACKENDS:
            assert np.array_equal(
                counts_around_points(points, 0.0, backend=name), default
            )


@pytest.mark.slow
class TestMemoryGuard:
    """Chunked/Tree at n = 20k must never allocate an (n, n) array.

    Marked slow (n = 20k work): runs in the dedicated ``-m slow`` CI job, not
    the tier-1 loop."""

    N = 20000
    TARGET = 200

    @pytest.fixture(scope="class")
    def big_points(self):
        return np.random.default_rng(17).uniform(size=(self.N, 2))

    @pytest.mark.parametrize("name", ["chunked", "tree"])
    def test_no_quadratic_allocation(self, big_points, name):
        backend = BACKENDS[name](big_points)
        dense_bytes = self.N * self.N * 8
        tracemalloc.start()
        try:
            backend.radius_counts(0.02)
            scores = backend.capped_average_scores(
                np.linspace(0.0, 0.3, 48), self.TARGET
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert scores.shape == (48,)
        assert np.all(np.diff(scores) >= 0)
        # Well under the 3.2 GB a dense (n, n) float64 matrix would cost.
        assert peak < dense_bytes / 8, f"{name} peaked at {peak / 1e6:.0f} MB"
