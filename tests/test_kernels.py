"""The kernel dispatch layer: bitwise parity, exactness, import-time modes.

Three contracts are pinned here:

* **Bitwise parity.**  The native (numba) kernels must reproduce the
  pure-python reference kernels *bit for bit* on an adversarial zoo —
  duplicates, colinear points, denormals, signed zeros, huge/mixed scales,
  empty and singleton slabs — because every released value of the library is
  defined by the reference and ``REPRO_KERNELS`` must never move a byte.
  (Skipped when numba is not installed; CI runs it under the ``native``
  extra.)
* **Exact partials.**  ``fixed_point_column_partials`` is allowed to choose
  *any* decomposition into integer ``(limb, shift, column)`` triples, but the
  merged integer total per column must equal the canonical
  ``fixed_point_sum`` of that column — for any split of the rows, in any
  merge order.
* **Import-time selection.**  ``REPRO_KERNELS=python`` forces the reference
  set, ``=native`` falls back (with a warning) when numba or scipy is
  missing, an invalid value raises, and the default is silent
  auto-detection.  These run in subprocesses: the choice is made once at
  import.
"""

import math
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
import repro.kernels as kernels
from repro.kernels import _reference
from repro.utils.exactsum import (
    fixed_point_column_partials,
    fixed_point_column_sums,
    fixed_point_sum,
    fixed_point_to_float,
    merge_column_partials,
)

try:  # pragma: no cover - environment probe
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - environment probe
    HAVE_NUMBA = False

needs_native = pytest.mark.skipif(
    not kernels.HAVE_NATIVE,
    reason="native kernels unavailable (numba or scipy missing)",
)


def zoo_cases():
    """(name, queries, data) pairs built to break sloppy float kernels."""
    rng = np.random.default_rng(11)
    tiny = 5e-324                                   # smallest subnormal
    cases = [
        ("generic", rng.normal(size=(7, 3)), rng.normal(size=(5, 3))),
        ("high-dim", rng.normal(size=(3, 17)), rng.normal(size=(4, 17))),
        ("duplicates",
         np.repeat(rng.normal(size=(1, 4)), 6, axis=0),
         np.repeat(rng.normal(size=(1, 4)), 3, axis=0)),
        ("colinear",
         np.outer(np.arange(8.0), np.array([1.0, 2.0, -0.5])),
         np.outer(np.arange(5.0) - 2.0, np.array([1.0, 2.0, -0.5]))),
        ("denormal",
         np.array([[tiny, -tiny, 1e-310], [0.0, 2.2e-308, -1e-320]]),
         np.array([[0.0, 0.0, 0.0], [1e-310, -tiny, tiny]])),
        ("signed-zero",
         np.array([[0.0, -0.0], [-0.0, 0.0], [0.0, 0.0]]),
         np.array([[-0.0, -0.0], [0.0, 0.0]])),
        ("mixed-scale",
         np.array([[1e150, 1e-150, 1.0], [-1e150, 3.0, 1e-300]]),
         np.array([[1e150, 0.0, -1.0], [7.0, -1e-150, 0.5]])),
        ("empty-queries", np.empty((0, 3)), rng.normal(size=(4, 3))),
        ("empty-data", rng.normal(size=(4, 3)), np.empty((0, 3))),
        ("singleton", rng.normal(size=(1, 5)), rng.normal(size=(1, 5))),
    ]
    return cases


def assert_bitwise(got, expected, label):
    got = np.asarray(got)
    expected = np.asarray(expected)
    assert got.shape == expected.shape, label
    assert got.dtype == expected.dtype, label
    assert got.tobytes() == expected.tobytes(), label


class TestReferenceExactness:
    """The reference partials against the canonical big-int column sums."""

    def matrices(self):
        rng = np.random.default_rng(5)
        tiny = 5e-324
        return [
            ("generic", rng.normal(size=(37, 4))),
            ("duplicates", np.repeat(rng.normal(size=(1, 3)), 20, axis=0)),
            ("denormal", np.array([[tiny, -tiny], [1e-310, 0.0],
                                   [-0.0, 3e-320]])),
            ("mixed-scale", rng.normal(size=(600, 2)) *
             10.0 ** rng.integers(-200, 200, size=(600, 2))),
            ("cancellation", np.array([[1e16, 1.0], [-1e16, -1.0],
                                       [1.0, 1e-8]])),
            ("single-row", rng.normal(size=(1, 6))),
            ("empty", np.empty((0, 3))),
        ]

    @pytest.mark.parametrize("case", range(7))
    def test_partials_merge_to_canonical_sums(self, case):
        name, matrix = self.matrices()[case]
        limbs, shifts, columns = fixed_point_column_partials(matrix)
        assert limbs.dtype == shifts.dtype == columns.dtype == np.int64
        totals = merge_column_partials(matrix.shape[1],
                                       [(limbs, shifts, columns)])
        expected = [fixed_point_sum(matrix[:, j])
                    for j in range(matrix.shape[1])]
        assert totals == expected, name
        assert fixed_point_column_sums(matrix) == expected, name

    @pytest.mark.parametrize("splits", [1, 2, 3, 7])
    def test_any_row_split_merges_identically(self, splits):
        rng = np.random.default_rng(9)
        matrix = rng.normal(size=(101, 3)) * 10.0 ** rng.integers(
            -100, 100, size=(101, 3)
        )
        whole = merge_column_partials(3, [fixed_point_column_partials(matrix)])
        bounds = np.linspace(0, matrix.shape[0], splits + 1).astype(int)
        parts = [fixed_point_column_partials(matrix[a:b])
                 for a, b in zip(bounds[:-1], bounds[1:])]
        assert merge_column_partials(3, parts) == whole
        assert merge_column_partials(3, parts[::-1]) == whole

    def test_merged_totals_round_trip_to_float(self):
        matrix = np.array([[0.1, 1e-300], [0.2, 5e-324], [0.3, -1e-310]])
        totals = merge_column_partials(2, [fixed_point_column_partials(matrix)])
        for j in range(2):
            assert fixed_point_to_float(totals[j]) == math.fsum(matrix[:, j])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            fixed_point_column_partials(np.array([[1.0, np.inf]]))
        with pytest.raises(ValueError, match="finite"):
            fixed_point_column_partials(np.array([[np.nan, 0.0]]))


@needs_native
class TestNativeBitwiseParity:
    """Native kernels == reference kernels, byte for byte, on the zoo."""

    @pytest.mark.parametrize("case", range(len(zoo_cases())))
    def test_distance_slab(self, case):
        from repro.kernels import _native

        name, queries, data = zoo_cases()[case]
        got = _native.squared_distance_slab(queries, data)
        expected = _reference.squared_distance_slab(queries, data)
        assert_bitwise(got, expected, name)

    @pytest.mark.parametrize("case", range(len(zoo_cases())))
    def test_distance_gather(self, case):
        from repro.kernels import _native

        name, queries, data = zoo_cases()[case]
        if queries.shape[0] == 0 or data.shape[0] == 0:
            neighbors = np.empty((queries.shape[0], 0, queries.shape[1]))
        else:
            take = np.resize(np.arange(data.shape[0]),
                             (queries.shape[0], min(3, data.shape[0])))
            neighbors = data[take]
        got = _native.squared_distance_gather(queries, neighbors)
        expected = _reference.squared_distance_gather(queries, neighbors)
        assert_bitwise(got, expected, name)

    def test_boundary_radii_thresholding(self):
        """Counts at radii equal to *exact* pairwise distances cannot differ:
        the slab values themselves are bitwise equal."""
        from repro.kernels import _native

        rng = np.random.default_rng(23)
        queries, data = rng.normal(size=(6, 3)), rng.normal(size=(9, 3))
        expected = _reference.squared_distance_slab(queries, data)
        got = _native.squared_distance_slab(queries, data)
        assert_bitwise(got, expected, "slab")
        for key in expected.ravel()[:: 7]:
            assert np.array_equal(
                np.count_nonzero(got <= key, axis=1),
                np.count_nonzero(expected <= key, axis=1),
            )

    @pytest.mark.parametrize("case", range(len(zoo_cases())))
    def test_box_labels(self, case):
        from repro.kernels import _native

        name, points, _ = zoo_cases()[case]
        rng = np.random.default_rng(case)
        for width in (0.7, 1e-3, 1e6):
            shifts = rng.uniform(-width, width, size=points.shape[1])
            got = _native.fused_box_labels(points, shifts, width)
            expected = _reference.fused_box_labels(points, shifts, width)
            assert_bitwise(got, expected, f"{name}/width={width}")

    def test_interval_labels_arbitrary_shape(self):
        from repro.kernels import _native

        rng = np.random.default_rng(2)
        values = rng.normal(size=(5, 4)) * 10.0
        for offset in (0.0, -0.3, 2.5):
            got = _native.fused_interval_labels(values, 0.9, offset)
            expected = _reference.fused_interval_labels(values, 0.9, offset)
            assert_bitwise(got, expected, f"offset={offset}")

    @pytest.mark.parametrize("case", range(len(zoo_cases())))
    def test_column_partials_merge_equal(self, case):
        """The decompositions may differ; the merged totals may not."""
        from repro.kernels import _native

        name, matrix, _ = zoo_cases()[case]
        native = _native.fixed_point_column_partials(matrix)
        reference = _reference.fixed_point_column_partials(matrix)
        assert all(np.asarray(part).dtype == np.int64 for part in native)
        k = matrix.shape[1]
        assert (merge_column_partials(k, [native])
                == merge_column_partials(k, [reference])), name

    def test_column_partials_segment_overflow_guard(self):
        """Columns long enough to force multiple 512-entry limb flushes."""
        from repro.kernels import _native

        rng = np.random.default_rng(31)
        matrix = np.full((2000, 2), (2.0 - 2.0 ** -52))    # max mantissas
        matrix[:, 1] = rng.normal(size=2000)
        native = _native.fixed_point_column_partials(matrix)
        reference = _reference.fixed_point_column_partials(matrix)
        assert (merge_column_partials(2, [native])
                == merge_column_partials(2, [reference]))


def run_probe(code, mode=None):
    """Import repro.kernels in a subprocess under a given REPRO_KERNELS."""
    env = dict(os.environ)
    env.pop(kernels.KERNEL_ENV_VAR, None)
    if mode is not None:
        env[kernels.KERNEL_ENV_VAR] = mode
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)


PROBE = """
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro.kernels as kernels
relevant = [str(w.message) for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "kernels" in str(w.message)]
print(kernels.KERNEL_MODE, kernels.kernel_info()["requested"], len(relevant))
"""


class TestImportTimeSelection:
    """REPRO_KERNELS is honoured (or rejected) once, at import."""

    def test_python_mode_forced(self):
        probe = run_probe(PROBE, mode="python")
        assert probe.returncode == 0, probe.stderr
        assert probe.stdout.split() == ["python", "python", "0"]

    def test_native_mode_requires_numba(self):
        probe = run_probe(PROBE, mode="native")
        assert probe.returncode == 0, probe.stderr
        mode, requested, warned = probe.stdout.split()
        assert requested == "native"
        if HAVE_NUMBA:
            assert (mode, warned) == ("native", "0")
        else:
            # The import-time fallback: a RuntimeWarning, then the
            # reference kernels.
            assert (mode, warned) == ("python", "1")

    def test_auto_mode_is_silent(self):
        probe = run_probe(PROBE)
        assert probe.returncode == 0, probe.stderr
        mode, requested, warned = probe.stdout.split()
        assert requested == "auto"
        assert warned == "0"
        assert mode == ("native" if HAVE_NUMBA else "python")

    def test_invalid_mode_rejected(self):
        probe = run_probe("import repro.kernels", mode="fortran")
        assert probe.returncode != 0
        assert "not a valid kernel mode" in probe.stderr

    def test_dispatch_surface(self):
        assert kernels.KERNEL_MODE in kernels.KERNEL_MODES
        info = kernels.kernel_info()
        assert set(info) == {"mode", "requested", "have_scipy_cdist"}
        assert info["mode"] == kernels.KERNEL_MODE
        if not kernels.HAVE_NATIVE:
            assert (kernels.squared_distance_slab
                    is _reference.squared_distance_slab)
            assert (kernels.fixed_point_column_partials
                    is _reference.fixed_point_column_partials)
