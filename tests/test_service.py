"""Tests for the multi-tenant clustering service (``repro.service``).

The contract under test, in order of importance:

1. **Release parity** — a private release produced through the service is
   *bitwise identical* to the same-seed direct library call, on every
   backend strategy (dense / sharded / distributed).
2. **Budget enforcement** — each tenant's cumulative spend is capped
   atomically: the query that would exceed the cap raises
   ``BudgetExhaustedError`` at submit time, other tenants proceed
   unaffected, and refused/saturated queries cost nothing.
3. **Job and lifecycle mechanics** — queued → running → done/failed
   handles, bounded queues with charge rollback, deterministic dataset
   unregistration.
"""

import threading
import time

import numpy as np
import pytest

from repro.accounting import BudgetExhaustedError, PrivacyParams
from repro.clustering import k_cluster, outlier_ball
from repro.core import good_center, good_radius, one_cluster
from repro.neighbors import DenseBackend
from repro.neighbors.serve import NodeServer
from repro.service import (
    ClusteringService,
    JobStatus,
    ServiceSaturatedError,
)
import repro.service.service as service_module

LOOSE = PrivacyParams(8.0, 1e-5)


@pytest.fixture(scope="module")
def cluster_points():
    """A planted 3-d cluster: 900 clustered points + 150 uniform noise."""
    rng = np.random.default_rng(5)
    cluster = np.full(3, 0.4) + rng.normal(0, 0.02, size=(900, 3))
    noise = rng.uniform(0, 1, size=(150, 3))
    return np.vstack([cluster, noise])


def assert_same_radius_release(reference, other):
    assert other.radius == reference.radius
    assert other.gamma == reference.gamma
    assert other.score == reference.score
    assert other.method == reference.method


def assert_same_center_release(reference, other):
    assert other.found == reference.found
    assert other.attempts == reference.attempts
    if reference.found:
        assert np.array_equal(other.center, reference.center)
        assert other.radius_bound == reference.radius_bound
        assert other.captured_count == reference.captured_count


def assert_same_cluster_release(reference, other):
    assert other.found == reference.found
    if reference.found:
        assert np.array_equal(other.ball.center, reference.ball.center)
        assert other.ball.radius == reference.ball.radius
    assert_same_radius_release(reference.radius_result, other.radius_result)
    assert_same_center_release(reference.center_result, other.center_result)


# --------------------------------------------------------------------- #
# 1. Release parity through the service
# --------------------------------------------------------------------- #
BACKEND_SPECS = [
    pytest.param("dense", None, id="dense"),
    pytest.param("sharded", {"num_shards": 3, "num_workers": 0},
                 id="sharded-serial"),
    pytest.param("sharded", {"num_workers": 2}, id="sharded-pool",
                 marks=pytest.mark.slow),
]


class TestServiceReleaseParity:
    @pytest.mark.parametrize("backend,options", BACKEND_SPECS)
    def test_radius_and_center_parity(self, cluster_points, backend,
                                      options):
        points = cluster_points
        with ClusteringService() as service:
            service.register_dataset("data", points, backend=backend,
                                     options=options)
            service.create_tenant("tenant", PrivacyParams(64.0, 1e-4))
            for seed in (0, 7):
                # The direct call runs the in-parent reference path; the
                # service runs the resident backend — equality across both
                # layers at once IS the parity contract.
                direct_radius = good_radius(points, target=800, params=LOOSE,
                                            rng=seed)
                job = service.good_radius("tenant", "data", target=800,
                                          params=LOOSE, rng=seed)
                assert_same_radius_release(direct_radius,
                                           job.result(timeout=120))
                direct_center = good_center(points,
                                            radius=direct_radius.radius,
                                            target=800, params=LOOSE,
                                            rng=seed)
                job = service.good_center("tenant", "data",
                                          radius=direct_radius.radius,
                                          target=800, params=LOOSE, rng=seed)
                assert_same_center_release(direct_center,
                                           job.result(timeout=120))

    @pytest.mark.parametrize("backend,options", BACKEND_SPECS)
    def test_one_cluster_and_outlier_parity(self, cluster_points, backend,
                                            options):
        points = cluster_points
        with ClusteringService() as service:
            service.register_dataset("data", points, backend=backend,
                                     options=options)
            service.create_tenant("tenant", PrivacyParams(64.0, 1e-4))
            direct = one_cluster(points, target=800, params=LOOSE, rng=3)
            job = service.one_cluster("tenant", "data", target=800,
                                      params=LOOSE, rng=3)
            assert_same_cluster_release(direct, job.result(timeout=240))
            direct_screen = outlier_ball(points, params=LOOSE, rng=9)
            job = service.outlier_screen("tenant", "data", params=LOOSE,
                                         rng=9)
            screened = job.result(timeout=240)
            assert screened.found == direct_screen.found
            if direct_screen.found:
                assert np.array_equal(screened.ball.center,
                                      direct_screen.ball.center)
                assert screened.ball.radius == direct_screen.ball.radius

    def test_k_cluster_parity_via_spec(self, cluster_points):
        # k_cluster re-indexes per iteration, so the service routes the
        # registered *spec* through the config instead of the instance.
        points = cluster_points
        with ClusteringService() as service:
            service.register_dataset("data", points, backend="dense")
            service.create_tenant("tenant", PrivacyParams(64.0, 1e-4))
            direct = k_cluster(points, k=2, params=LOOSE, rng=4,
                               backend="dense")
            job = service.k_cluster("tenant", "data", k=2, params=LOOSE,
                                    rng=4)
            result = job.result(timeout=240)
            assert result.num_found == direct.num_found
            for ours, theirs in zip(result.balls, direct.balls):
                assert np.array_equal(ours.center, theirs.center)
                assert ours.radius == theirs.radius

    def test_distributed_parity(self, cluster_points):
        # In-process loopback node servers (the test_distributed pattern):
        # the service's resident backend is a real DistributedBackend.
        points = cluster_points
        servers = [NodeServer().start() for _ in range(2)]
        try:
            nodes = [server.address for server in servers]
            with ClusteringService() as service:
                service.register_dataset(
                    "data", points, backend="distributed",
                    options={"nodes": nodes, "num_shards": 4,
                             "node_workers": 0},
                )
                service.create_tenant("tenant", PrivacyParams(64.0, 1e-4))
                direct = good_radius(points, target=800, params=LOOSE, rng=1)
                job = service.good_radius("tenant", "data", target=800,
                                          params=LOOSE, rng=1)
                assert_same_radius_release(direct, job.result(timeout=240))
                direct_center = good_center(points, radius=direct.radius,
                                            target=800, params=LOOSE, rng=1)
                job = service.good_center("tenant", "data",
                                          radius=direct.radius, target=800,
                                          params=LOOSE, rng=1)
                assert_same_center_release(direct_center,
                                           job.result(timeout=240))
        finally:
            for server in servers:
                server.stop()


# --------------------------------------------------------------------- #
# 2. Budget enforcement
# --------------------------------------------------------------------- #
class TestBudgetEnforcement:
    def test_refusal_exactly_at_cap(self, cluster_points):
        # Four eps/4 queries fill the cap exactly; the fifth is refused.
        with ClusteringService() as service:
            service.register_dataset("data", cluster_points, backend="dense")
            service.create_tenant("capped", PrivacyParams(1.0, 1e-6))
            step = PrivacyParams(0.25, 1e-8)
            jobs = [service.good_radius("capped", "data", target=800,
                                        params=step, rng=seed)
                    for seed in range(4)]
            with pytest.raises(BudgetExhaustedError) as excinfo:
                service.good_radius("capped", "data", target=800,
                                    params=step, rng=4)
            assert excinfo.value.tenant == "capped"
            assert excinfo.value.cap.epsilon == 1.0
            # The admitted queries all ran; the refused one never did.
            for job in jobs:
                job.result(timeout=120)
            stats = service.tenant("capped").stats()
            assert stats["queries"] == 4
            assert stats["refused"] == 1
            assert stats["spent"]["epsilon"] == pytest.approx(1.0)
            assert stats["remaining"]["epsilon"] == pytest.approx(0.0)

    def test_other_tenants_unaffected(self, cluster_points):
        with ClusteringService() as service:
            service.register_dataset("data", cluster_points, backend="dense")
            service.create_tenant("poor", PrivacyParams(0.5, 1e-6))
            service.create_tenant("rich", PrivacyParams(50.0, 1e-4))
            step = PrivacyParams(0.5, 1e-8)
            service.good_radius("poor", "data", target=800, params=step,
                                rng=0).result(timeout=120)
            with pytest.raises(BudgetExhaustedError):
                service.good_radius("poor", "data", target=800, params=step,
                                    rng=1)
            # The exhausted tenant does not block anyone else.
            job = service.good_radius("rich", "data", target=800,
                                      params=step, rng=1)
            assert job.result(timeout=120).radius > 0
            assert service.tenant("rich").stats()["refused"] == 0

    def test_refused_query_never_runs(self, cluster_points):
        calls = []
        original = service_module._SOLVERS["good_radius"]

        def counting_solver(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        service_module._SOLVERS["good_radius"] = counting_solver
        try:
            with ClusteringService() as service:
                service.register_dataset("data", cluster_points,
                                         backend="dense")
                service.create_tenant("t", PrivacyParams(1.0, 1e-6))
                service.good_radius("t", "data", target=800,
                                    params=PrivacyParams(1.0, 1e-8),
                                    rng=0).result(timeout=120)
                with pytest.raises(BudgetExhaustedError):
                    service.good_radius("t", "data", target=800,
                                        params=PrivacyParams(0.5, 1e-8),
                                        rng=1)
            assert len(calls) == 1
        finally:
            service_module._SOLVERS["good_radius"] = original

    def test_invalid_requests_cost_nothing(self, cluster_points):
        with ClusteringService() as service:
            service.register_dataset("inst", cluster_points,
                                     backend=DenseBackend(cluster_points))
            service.create_tenant("t", PrivacyParams(1.0, 1e-6))
            step = PrivacyParams(0.25, 1e-8)
            with pytest.raises(ValueError, match="unknown query kind"):
                service.submit("t", "inst", "sort_the_data", step)
            with pytest.raises(TypeError, match="supplied by the service"):
                service.submit("t", "inst", "good_radius", step,
                               target=800, backend="dense")
            with pytest.raises(ValueError, match="already-built instance"):
                service.k_cluster("t", "inst", k=2, params=step)
            assert service.tenant("t").spent() is None

    def test_advanced_composition_tenant(self, cluster_points):
        # Under advanced composition many small queries fit where the basic
        # sum would long be exhausted.  A stub solver keeps this an
        # accounting test, not a 300-query solver benchmark.
        original = service_module._SOLVERS["good_radius"]
        service_module._SOLVERS["good_radius"] = lambda *a, **k: "ok"
        try:
            with ClusteringService(max_queue=512) as service:
                service.register_dataset("data", cluster_points,
                                         backend="dense")
                ledger = service.create_tenant(
                    "adv", PrivacyParams(1.0, 1e-4),
                    composition="advanced", delta_prime=1e-6,
                )
                step = PrivacyParams(0.01, 1e-9)
                admitted = 0
                try:
                    for seed in range(500):
                        service.good_radius("adv", "data", target=800,
                                            params=step, rng=seed)
                        admitted += 1
                except BudgetExhaustedError:
                    pass
                # Basic composition alone caps at 1.0/0.01 = 100 queries.
                assert admitted > 100
                assert ledger.spent().epsilon <= 1.0 * (1 + 1e-9)
                assert ledger.spent().delta <= 1e-4
        finally:
            service_module._SOLVERS["good_radius"] = original


# --------------------------------------------------------------------- #
# 3. Concurrency: interleaved tenants, bitwise-identical to serial
# --------------------------------------------------------------------- #
class TestConcurrentTenants:
    def test_interleaved_tenants_match_serial(self, cluster_points):
        points = cluster_points
        other = points + 0.25  # distinct dataset, same geometry
        requests = {
            "alice": [("shared", 0), ("shared", 1), ("mine", 2)],
            "bob": [("shared", 2), ("theirs", 0), ("shared", 3)],
        }
        datasets = {"shared": points, "mine": other, "theirs": other[::-1]}
        # Serial ground truth, one direct library call per request.
        expected = {
            tenant: [good_radius(datasets[name], target=800, params=LOOSE,
                                 rng=seed)
                     for name, seed in spec]
            for tenant, spec in requests.items()
        }
        with ClusteringService() as service:
            for name, data in datasets.items():
                service.register_dataset(name, data, backend="dense")
            for tenant in requests:
                service.create_tenant(tenant, PrivacyParams(64.0, 1e-4))
            results: dict = {}
            errors: list = []

            def run(tenant):
                try:
                    jobs = [service.good_radius(tenant, name, target=800,
                                                params=LOOSE, rng=seed)
                            for name, seed in requests[tenant]]
                    results[tenant] = [job.result(timeout=240)
                                       for job in jobs]
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=run, args=(tenant,))
                       for tenant in requests]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not errors
            for tenant, spec in requests.items():
                for reference, ours in zip(expected[tenant],
                                           results[tenant]):
                    assert_same_radius_release(reference, ours)
            # Per-tenant debits: 3 queries each, LOOSE each.
            for tenant in requests:
                stats = service.tenant(tenant).stats()
                assert stats["queries"] == 3
                assert stats["spent"]["epsilon"] == pytest.approx(
                    3 * LOOSE.epsilon)

    def test_concurrent_charges_never_overshoot(self, cluster_points):
        # Hammer one tenant's budget from many threads; the admitted total
        # must respect the cap no matter the interleaving.
        blocker = threading.Event()

        def stub_solver(*args, **kwargs):
            blocker.wait(timeout=30)
            return "done"

        original = service_module._SOLVERS["good_radius"]
        service_module._SOLVERS["good_radius"] = stub_solver
        try:
            with ClusteringService(max_queue=64) as service:
                service.register_dataset("data", cluster_points,
                                         backend="dense")
                service.create_tenant("t", PrivacyParams(1.0, 1e-5))
                step = PrivacyParams(0.1, 1e-9)
                outcomes: list = []

                def submit_one(seed):
                    try:
                        outcomes.append(
                            service.good_radius("t", "data", target=800,
                                                params=step, rng=seed))
                    except BudgetExhaustedError:
                        outcomes.append(None)

                threads = [threading.Thread(target=submit_one, args=(s,))
                           for s in range(25)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                blocker.set()
                admitted = [job for job in outcomes if job is not None]
                assert len(admitted) == 10  # exactly cap / step
                assert service.tenant("t").stats()["refused"] == 15
                for job in admitted:
                    assert job.result(timeout=60) == "done"
        finally:
            service_module._SOLVERS["good_radius"] = original


# --------------------------------------------------------------------- #
# 4. Jobs, queues, lifecycle
# --------------------------------------------------------------------- #
class TestJobsAndLifecycle:
    def test_job_lifecycle_and_failure(self, cluster_points):
        def failing_solver(*args, **kwargs):
            raise RuntimeError("solver exploded")

        original = service_module._SOLVERS["good_radius"]
        service_module._SOLVERS["good_radius"] = failing_solver
        try:
            with ClusteringService() as service:
                service.register_dataset("data", cluster_points,
                                         backend="dense")
                service.create_tenant("t", PrivacyParams(4.0, 1e-5))
                job = service.good_radius("t", "data", target=800,
                                          params=PrivacyParams(0.5, 1e-8),
                                          rng=0)
                assert job.wait(timeout=30)
                assert job.status is JobStatus.FAILED
                assert job.done()
                with pytest.raises(RuntimeError, match="solver exploded"):
                    job.result()
                # Conservative accounting: the failed query stays debited
                # (the mechanism may have touched the data before failing).
                assert service.tenant("t").spent().epsilon == \
                    pytest.approx(0.5)
                described = job.describe()
                assert described["status"] == "failed"
                assert "solver exploded" in described["error"]
        finally:
            service_module._SOLVERS["good_radius"] = original

    def test_queue_saturation_rolls_charge_back(self, cluster_points):
        release = threading.Event()

        def blocking_solver(*args, **kwargs):
            release.wait(timeout=30)
            return "ok"

        original = service_module._SOLVERS["good_radius"]
        service_module._SOLVERS["good_radius"] = blocking_solver
        try:
            with ClusteringService(max_queue=1) as service:
                service.register_dataset("data", cluster_points,
                                         backend="dense")
                service.create_tenant("t", PrivacyParams(10.0, 1e-5))
                step = PrivacyParams(0.5, 1e-8)
                running = service.good_radius("t", "data", target=800,
                                              params=step, rng=0)
                # Wait until the first job occupies the executor so the
                # next one is guaranteed to sit in the queue.
                while running.status is JobStatus.QUEUED:
                    time.sleep(0.001)
                queued = service.good_radius("t", "data", target=800,
                                             params=step, rng=1)
                assert queued.status is JobStatus.QUEUED
                with pytest.raises(ServiceSaturatedError):
                    service.good_radius("t", "data", target=800,
                                        params=step, rng=2)
                # Saturation refunded the third charge: two remain.
                assert service.tenant("t").spent().epsilon == \
                    pytest.approx(1.0)
                release.set()
                assert running.result(timeout=30) == "ok"
                assert queued.result(timeout=30) == "ok"
        finally:
            service_module._SOLVERS["good_radius"] = original

    def test_unregister_fails_queued_jobs_and_closes_backend(
            self, cluster_points):
        release = threading.Event()

        def blocking_solver(*args, **kwargs):
            release.wait(timeout=30)
            return "ok"

        original = service_module._SOLVERS["good_radius"]
        service_module._SOLVERS["good_radius"] = blocking_solver
        try:
            with ClusteringService() as service:
                entry = service.register_dataset(
                    "data", cluster_points, backend="sharded",
                    options={"num_shards": 2, "num_workers": 0},
                )
                closes = []
                entry.backend.close = lambda: closes.append(1)  # type: ignore
                service.create_tenant("t", PrivacyParams(10.0, 1e-5))
                step = PrivacyParams(0.5, 1e-8)
                running = service.good_radius("t", "data", target=800,
                                              params=step, rng=0)
                queued = service.good_radius("t", "data", target=800,
                                             params=step, rng=1)
                while running.status is JobStatus.QUEUED:
                    time.sleep(0.001)
                release.set()
                service.unregister_dataset("data")
                assert running.result(timeout=30) == "ok"
                # The queued job either ran before the executor stopped or
                # was failed deterministically — it never hangs.
                assert queued.wait(timeout=30)
                assert closes == [1]
                assert "data" not in service.datasets()
                with pytest.raises(KeyError, match="no dataset"):
                    service.good_radius("t", "data", target=800,
                                        params=step, rng=2)
        finally:
            service_module._SOLVERS["good_radius"] = original

    def test_submit_racing_unregister_rolls_back_and_raises(
            self, cluster_points):
        # submit() captures the worker reference before charging; if
        # unregister_dataset() stops that worker in between, the enqueue
        # must NOT land (a job enqueued after stop()'s drain would never
        # run and its waiter would block forever) and the admission charge
        # must be refunded.  Stopping the captured worker directly
        # reproduces exactly the state the race leaves behind.
        with ClusteringService() as service:
            service.register_dataset("data", cluster_points, backend="dense")
            service.create_tenant("t", PrivacyParams(1.0, 1e-6))
            service._workers["data"].stop()
            with pytest.raises(KeyError, match="no dataset"):
                service.good_radius("t", "data", target=800,
                                    params=PrivacyParams(0.5, 1e-8), rng=0)
            # The query provably never ran, so it cost nothing.
            assert service.tenant("t").spent() is None

    @pytest.mark.parametrize("close_before_insert", [True, False],
                             ids=["close-first", "insert-first"])
    def test_register_racing_close_does_not_leak(self, cluster_points,
                                                 close_before_insert):
        # close() landing between register_dataset()'s advisory open-check
        # and its worker creation must not leave behind a registered
        # dataset, a live executor thread, or an unclosed backend.
        service = ClusteringService()
        real_register = service._registry.register

        def racing_register(*args, **kwargs):
            if close_before_insert:
                service.close()
                return real_register(*args, **kwargs)
            entry = real_register(*args, **kwargs)
            service.close()
            return entry

        service._registry.register = racing_register  # type: ignore
        with pytest.raises(RuntimeError, match="closed"):
            service.register_dataset("data", cluster_points, backend="dense")
        assert service._workers == {}
        assert service.datasets() == []

    def test_registry_validation(self, cluster_points):
        with ClusteringService() as service:
            service.register_dataset("data", cluster_points, backend="dense")
            with pytest.raises(ValueError, match="already registered"):
                service.register_dataset("data", cluster_points,
                                         backend="dense")
            with pytest.raises(ValueError, match="already exists"):
                service.create_tenant("t", PrivacyParams(1.0, 1e-6))
                service.create_tenant("t", PrivacyParams(1.0, 1e-6))
            with pytest.raises(KeyError, match="no tenant"):
                service.good_radius("ghost", "data", target=800,
                                    params=PrivacyParams(0.1, 1e-8))
            with pytest.raises(KeyError, match="no dataset"):
                service.good_radius("t", "ghost", target=800,
                                    params=PrivacyParams(0.1, 1e-8))

    def test_close_is_terminal_and_idempotent(self, cluster_points):
        service = ClusteringService()
        service.register_dataset("data", cluster_points, backend="dense")
        service.create_tenant("t", PrivacyParams(1.0, 1e-6))
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            service.register_dataset("more", cluster_points)
        with pytest.raises(RuntimeError, match="closed"):
            service.good_radius("t", "data", target=800,
                                params=PrivacyParams(0.1, 1e-8))

    def test_service_stats_shape(self, cluster_points):
        with ClusteringService() as service:
            service.register_dataset(
                "data", cluster_points, backend="sharded",
                options={"num_shards": 2, "num_workers": 0},
            )
            service.create_tenant("t", PrivacyParams(4.0, 1e-5))
            service.good_radius("t", "data", target=800,
                                params=PrivacyParams(0.5, 1e-8),
                                rng=0).result(timeout=120)
            stats = service.service_stats()
            data = stats["datasets"]["data"]
            assert data["executed"] == 1
            assert data["queue_depth"] == 0
            assert data["backend"] == "ShardedBackend"
            assert data["pool"] is not None  # engine pool_stats merged in
            tenant = stats["tenants"]["t"]
            assert tenant["queries"] == 1
            assert tenant["remaining"]["epsilon"] == pytest.approx(3.5)
