"""Outlier screening before a private analysis (paper Section 1.1).

Locating a ball that holds ~90% of the data yields a predicate separating
inliers from outliers.  Because the ball is itself a differentially private
release, the predicate can screen the inputs of a *subsequent* private
analysis for free (post-processing) — and restricting that analysis to the
ball's diameter dramatically reduces the noise it must add.  This example
quantifies both effects on contaminated data.

Run with::

    python examples/outlier_screening.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyParams
from repro.clustering import outlier_ball
from repro.datasets import clustered_with_outliers
from repro.mechanisms import gaussian_mechanism


def main() -> None:
    points, is_outlier = clustered_with_outliers(n=3000, d=2,
                                                 outlier_fraction=0.1,
                                                 cluster_spread=0.02,
                                                 separation_factor=40.0, rng=0)
    screen_params = PrivacyParams(epsilon=2.0, delta=1e-6)
    mean_params = PrivacyParams(epsilon=0.5, delta=1e-6)

    screen = outlier_ball(points, screen_params, inlier_fraction=0.88, rng=1)
    print("=== Private outlier screening ===")
    print(f"n = {points.shape[0]}, injected outliers = "
          f"{int(np.count_nonzero(is_outlier))}, screening budget = "
          f"({screen_params.epsilon}, {screen_params.delta})")
    print()
    if not screen.found:
        print("Screening ball not found; increase epsilon or the inlier fraction.")
        return

    flagged = screen.outlier_mask(points)
    true_positive = int(np.count_nonzero(flagged & is_outlier))
    precision = true_positive / max(1, int(np.count_nonzero(flagged)))
    recall = true_positive / int(np.count_nonzero(is_outlier))
    print(f"Screening ball: centre {np.round(screen.ball.center, 3)}, "
          f"radius {screen.ball.radius:.3f}")
    print(f"Flagged {int(np.count_nonzero(flagged))} points as outliers "
          f"(precision {precision:.0%}, recall {recall:.0%})")
    print()

    # Downstream benefit: a private mean of the screened data needs noise
    # proportional to the *ball's* diameter rather than the data's diameter.
    inliers = points[~flagged]
    full_diameter = float(np.linalg.norm(points.max(axis=0) - points.min(axis=0)))
    screened_diameter = 2.0 * screen.ball.radius
    true_mean = points[~is_outlier].mean(axis=0)

    naive = gaussian_mechanism(points.mean(axis=0),
                               sensitivity=full_diameter / points.shape[0],
                               params=mean_params, rng=2)
    screened = gaussian_mechanism(inliers.mean(axis=0),
                                  sensitivity=screened_diameter / max(1, inliers.shape[0]),
                                  params=mean_params, rng=3)
    print("Private mean of the data (same budget for both):")
    print(f"  without screening : error {np.linalg.norm(naive - true_mean):.4f} "
          f"(noise scaled to diameter {full_diameter:.2f})")
    print(f"  with screening    : error {np.linalg.norm(screened - true_mean):.4f} "
          f"(noise scaled to diameter {screened_diameter:.2f})")


if __name__ == "__main__":
    main()
