"""Reproduce the phenomena illustrated in Figures 1 and 2 of the paper.

Figure 1: selecting a "heavy" interval independently on every axis can yield
a box whose intersection contains no data at all — the failure mode that
motivates GoodCenter's joint randomly-shifted-box search.

Figure 2: a heavy interval of length r may capture only part of a
diameter-r cluster, but extending it by r on each side always captures all of
it — the trick GoodCenter uses on every rotated axis.

Run with::

    python examples/figure1_heavy_intervals.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyParams
from repro.core import good_center
from repro.datasets import figure1_cross_configuration, figure2_interval_configuration
from repro.geometry import AxisIntervalPartition


def figure1_demo() -> None:
    points = figure1_cross_configuration(points_per_arm=500, rng=0)
    interval_length = 0.1

    # The naive "first attempt": heaviest interval per axis, independently.
    masks = []
    chosen = []
    for axis in range(2):
        partition = AxisIntervalPartition(width=interval_length)
        labels = partition.labels(points[:, axis])
        values, counts = np.unique(labels, return_counts=True)
        heavy = int(values[np.argmax(counts)])
        chosen.append(partition.interval(heavy))
        low, high = partition.interval(heavy)
        masks.append((points[:, axis] >= low) & (points[:, axis] < high))
    box_count = int(np.count_nonzero(np.logical_and.reduce(masks)))

    print("=== Figure 1: why per-axis interval selection fails ===")
    print(f"dataset: two blobs of 500 points each (the 'cross')")
    print(f"heaviest interval on axis 0: [{chosen[0][0]:.2f}, {chosen[0][1]:.2f})")
    print(f"heaviest interval on axis 1: [{chosen[1][0]:.2f}, {chosen[1][1]:.2f})")
    print(f"points inside the intersection box: {box_count}  <-- (near) empty!")

    # GoodCenter's joint search instead finds a genuinely heavy region.
    result = good_center(points, radius=0.05, target=400,
                         params=PrivacyParams(4.0, 1e-6), rng=1)
    if result.found:
        print(f"GoodCenter's joint search: centre {np.round(result.center, 3)}, "
              f"{result.captured_count} points in its bounding region")
    print()


def figure2_demo() -> None:
    values, offset = figure2_interval_configuration(cluster_size=500,
                                                    cluster_radius=0.05,
                                                    interval_length=0.05, rng=1)
    partition = AxisIntervalPartition(width=0.05, offset=offset)
    labels = partition.labels(values[:, 0])
    unique, counts = np.unique(labels, return_counts=True)
    heavy = int(unique[np.argmax(counts)])
    low, high = partition.interval(heavy)
    plain = int(np.count_nonzero((values[:, 0] >= low) & (values[:, 0] < high)))
    low_ext, high_ext = partition.extended_interval(heavy)
    extended = int(np.count_nonzero(
        (values[:, 0] >= low_ext) & (values[:, 0] < high_ext)))

    print("=== Figure 2: extending a heavy interval captures the whole cluster ===")
    print(f"cluster of {values.shape[0]} points straddling an interval boundary")
    print(f"heaviest interval [{low:.3f}, {high:.3f}) captures {plain} points")
    print(f"extended interval [{low_ext:.3f}, {high_ext:.3f}) captures {extended} points "
          f"({'all of them' if extended == values.shape[0] else 'NOT all'})")


if __name__ == "__main__":
    figure1_demo()
    figure2_demo()
