"""Sample and aggregate: turning a non-private analysis into a private one.

The paper's Section 6 shows that the 1-cluster algorithm is a strong
aggregator for the sample-and-aggregate framework: split the data into blocks,
run any off-the-shelf analysis per block, and privately locate the small ball
where most block outputs land.  This example privatises two analyses — the
sample mean and the dominant centre of a 2-component Gaussian mixture — and
compares the paper's aggregator against GUPT-style noisy averaging.

Run with::

    python examples/sample_aggregate_mean.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyParams
from repro.datasets import mixture_of_gaussians
from repro.sample_aggregate import (
    noisy_average_aggregator,
    private_gmm_center_estimator,
    private_mean_estimator,
)


def main() -> None:
    rng = np.random.default_rng(0)
    params = PrivacyParams(epsilon=8.0, delta=1e-4)

    print("=== Sample & aggregate with the 1-cluster aggregator ===")
    print("(the aggregation budget is amplified down by sub-sampling;")
    print(" the reported guarantee is the amplified one)\n")

    # --- Application 1: private mean of a well-concentrated dataset. ------ #
    data = rng.normal(loc=[0.4, 0.6], scale=0.05, size=(9000, 2))
    result = private_mean_estimator(data, block_size=10, params=params,
                                    alpha=0.8, subsample_fraction=1.0 / 3.0,
                                    rng=1)
    print("Private mean estimation:")
    if result.found:
        print(f"  estimate {np.round(result.point, 3)} vs truth [0.4, 0.6] "
              f"(error {np.linalg.norm(result.point - [0.4, 0.6]):.4f})")
    else:
        print("  aggregation abstained")
    print(f"  blocks = {result.num_blocks}, block size = {result.block_size}, "
          f"amplified budget = ({result.amplified_params.epsilon:.3f}, "
          f"{result.amplified_params.delta:.2e})\n")

    # --- Application 2: dominant mixture component, two aggregators. ------ #
    points, _ = mixture_of_gaussians(n=12000, d=2,
                                     means=[[0.3, 0.3], [0.8, 0.8]],
                                     stddev=0.04, weights=[0.65, 0.35], rng=2)
    print("Dominant Gaussian-mixture centre (truth [0.3, 0.3]):")
    for label, aggregator in (
        ("1-cluster aggregator (this paper)", None),
        ("noisy-average aggregator (GUPT-style)",
         noisy_average_aggregator(clip_radius=1.0, center=np.array([0.5, 0.5]))),
    ):
        result = private_gmm_center_estimator(points, block_size=30,
                                              params=params, alpha=0.8,
                                              subsample_fraction=0.5,
                                              aggregator=aggregator, rng=3)
        if result.found:
            error = np.linalg.norm(result.point - [0.3, 0.3])
            print(f"  {label:40s}: estimate {np.round(result.point, 3)}, "
                  f"error {error:.4f}")
        else:
            print(f"  {label:40s}: abstained")
    print("\nThe noisy-average aggregator is pulled toward the secondary "
          "component (its clipping ball must cover every block output), while "
          "the 1-cluster aggregator locks onto the dominant mode.")


if __name__ == "__main__":
    main()
