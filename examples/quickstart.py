"""Quickstart: privately locate a small cluster in synthetic data.

Generates a planted-cluster dataset (a tight minority cluster inside uniform
background noise), runs the paper's 1-cluster algorithm, and compares the
released ball against the non-private reference and the ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import OneClusterConfig, PrivacyLedger, PrivacyParams, one_cluster
from repro.baselines import nonprivate_one_cluster
from repro.datasets import planted_cluster


def main() -> None:
    # A dataset of 3000 points in the unit square; 1000 of them form a tight
    # cluster of radius 0.05 (a *minority* -- the regime the paper targets).
    data = planted_cluster(n=3000, d=2, cluster_size=1000, cluster_radius=0.05,
                           center=[0.35, 0.65], rng=0)
    target = 800                       # how many points the ball must capture
    params = PrivacyParams(epsilon=2.0, delta=1e-6)

    ledger = PrivacyLedger()
    result = one_cluster(data.points, target=target, params=params,
                         config=OneClusterConfig(), rng=1, ledger=ledger)

    reference = nonprivate_one_cluster(data.points, target)

    print("=== Private 1-cluster (Nissim-Stemmer-Vadhan, PODS 2016) ===")
    print(f"n = {data.n}, d = {data.dimension}, target t = {target}, "
          f"epsilon = {params.epsilon}, delta = {params.delta}")
    print()
    print(f"GoodRadius released radius      : {result.radius_result.radius:.4f}")
    print(f"Non-private 2-approx radius     : {reference.ball.radius:.4f}")
    print(f"Planted cluster radius          : {data.true_ball.radius:.4f}")
    print()
    if result.found:
        error = np.linalg.norm(result.ball.center - data.true_ball.center)
        effective = result.effective_radius(data.points)
        print(f"Released centre                 : {np.round(result.ball.center, 3)}")
        print(f"Distance to true centre         : {error:.4f}")
        print(f"Radius capturing t points       : {effective:.4f} "
              f"({effective / reference.ball.radius:.1f}x the non-private radius)")
        print(f"Guaranteed (conservative) bound : {result.ball.radius:.4f}")
    else:
        print("The solver abstained (increase epsilon or the cluster size).")
    print()
    print("Privacy ledger (basic composition):", ledger.total_basic())
    print("Sub-mechanisms invoked            :", ", ".join(ledger.mechanisms()))


if __name__ == "__main__":
    main()
