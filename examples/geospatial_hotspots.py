"""Map-search scenario: privately locate population hotspots.

The paper motivates the 1-cluster problem with map searches — "privately
locating areas of certain types or classes of a given population".  This
example builds a synthetic 2-d "map" with three dense hotspots on top of a
scattered background population, then uses the k-clustering heuristic
(Observation 3.5) to locate them under a single overall privacy budget.

Run with::

    python examples/geospatial_hotspots.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyParams, k_cluster
from repro.datasets import geospatial_hotspots


def main() -> None:
    num_hotspots = 3
    points, true_centers = geospatial_hotspots(n=4000, num_hotspots=num_hotspots,
                                               hotspot_fraction=0.6,
                                               hotspot_radius=0.02, rng=0)
    params = PrivacyParams(epsilon=4.0, delta=1e-6)

    result = k_cluster(points, k=num_hotspots, params=params,
                       target=points.shape[0] // (2 * num_hotspots), rng=1)

    print("=== Private hotspot location (k-clustering heuristic) ===")
    print(f"population size = {points.shape[0]}, hotspots = {num_hotspots}, "
          f"overall budget = ({params.epsilon}, {params.delta})")
    print()
    print(f"Balls released      : {result.num_found}")
    print(f"Population covered  : {result.covered_fraction:.0%}")
    print()
    for index, ball in enumerate(result.balls):
        distances = np.linalg.norm(true_centers - ball.center[None, :], axis=1)
        nearest = int(np.argmin(distances))
        print(f"Ball {index}: centre {np.round(ball.center, 3)}, "
              f"radius {ball.radius:.3f} -> nearest true hotspot {nearest} "
              f"at distance {distances[nearest]:.3f}")
    missed = [index for index, center in enumerate(true_centers)
              if all(np.linalg.norm(ball.center - center) > 0.15
                     for ball in result.balls)]
    if missed:
        print(f"Hotspots not matched by any ball: {missed}")
    else:
        print("Every true hotspot is matched by a released ball.")


if __name__ == "__main__":
    main()
