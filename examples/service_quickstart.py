"""Clustering-as-a-service quickstart: tenants, budgets, resident datasets.

Runs a tiny multi-tenant session against one in-process
:class:`~repro.service.ClusteringService`:

1. register a dataset once (its neighbor backend stays resident and warm),
2. give two tenants different enforced ``(epsilon, delta)`` budgets,
3. run interleaved queries and show that each release is bit-identical to
   the same-seed direct library call,
4. drive one tenant into ``BudgetExhaustedError`` while the other keeps
   working,
5. print the merged ``service_stats()`` snapshot.

Run with::

    PYTHONPATH=src python examples/service_quickstart.py
"""

import numpy as np

from repro import PrivacyParams
from repro.core import good_radius
from repro.datasets import planted_cluster
from repro.service import BudgetExhaustedError, ClusteringService


def main() -> None:
    data = planted_cluster(n=2000, d=3, cluster_size=600,
                           cluster_radius=0.05, rng=0)
    points = data.points
    step = PrivacyParams(epsilon=0.5, delta=1e-7)

    with ClusteringService() as service:
        # One registration, many queries: the backend (and its caches)
        # outlives every request.
        service.register_dataset("demo", points, backend="dense")
        service.create_tenant("alice", cap=PrivacyParams(2.0, 1e-6))
        service.create_tenant("bob", cap=PrivacyParams(0.5, 1e-6))

        # --- parity: the service release IS the direct-call release ------
        job = service.good_radius("alice", "demo", target=500, params=step,
                                  rng=7)
        served = job.result()
        direct = good_radius(points, target=500, params=step, rng=7)
        print(f"served radius   : {served.radius}")
        print(f"direct radius   : {direct.radius}")
        print(f"bitwise equal   : {served.radius == direct.radius}")

        # --- budgets: enforced per tenant, at submit time ----------------
        service.good_radius("bob", "demo", target=500, params=step, rng=1) \
            .result()
        try:
            service.good_radius("bob", "demo", target=500, params=step,
                                rng=2)
        except BudgetExhaustedError as error:
            print(f"bob refused     : {error}")
        # Alice still has budget; bob's exhaustion does not affect her.
        job = service.one_cluster("alice", "demo", target=500,
                                  params=PrivacyParams(1.0, 1e-7), rng=5)
        result = job.result()
        print(f"alice 1-cluster : found={result.found} "
              f"radius={result.ball.radius if result.found else None}")

        # --- the merged stats snapshot -----------------------------------
        stats = service.service_stats()
        for tenant, info in stats["tenants"].items():
            spent = info["spent"] or {"epsilon": 0.0}
            print(f"tenant {tenant:<6}: queries={info['queries']} "
                  f"refused={info['refused']} "
                  f"spent_eps={spent['epsilon']:g} "
                  f"remaining_eps={info['remaining']['epsilon']:g}")
        demo = stats["datasets"]["demo"]
        print(f"dataset demo   : executed={demo['executed']} "
              f"queue_depth={demo['queue_depth']} "
              f"backend={demo['backend']}")


if __name__ == "__main__":
    main()
