"""Benchmark E9 — GoodRadius in isolation (Lemma 3.6)."""

from repro.experiments.good_radius import run_good_radius


def test_good_radius_guarantees(benchmark, report):
    rows = report(benchmark, "GoodRadius guarantees", run_good_radius,
                  cluster_radii=(0.02, 0.05, 0.1), n=2000, dimension=4,
                  epsilon=1.0, rng=0)
    assert len(rows) == 3
    # Lemma 3.6: released radius <= 4 r_opt; the lower-bound column certifies
    # r_opt >= 2approx/2, so the ratio against that bound must be <= 8.
    assert all(row["ratio_vs_lower_bound"] <= 8.0 + 1e-9 for row in rows)
