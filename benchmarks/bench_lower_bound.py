"""Benchmark E7 — the IntPoint reduction across domain sizes (Section 5).

``--backend``/``--workers`` thread the whole sweep through a single
long-lived :class:`~repro.experiments.harness.PipelinedRuns` pool, e.g.::

    pytest benchmarks/bench_lower_bound.py --backend sharded --workers 2

The 2-worker smoke below asserts the pipelined sweep reproduces the serial
rows exactly (timing columns aside) — the reduction's releases are
backend-independent by construction.
"""

from repro.experiments.harness import PipelinedRuns
from repro.experiments.lower_bound import run_lower_bound


def test_interior_point_reduction(benchmark, report, backend_choice,
                                  backend_options):
    name, _ = backend_choice
    kwargs = dict(domain_sizes=(2 ** 8, 2 ** 16, 2 ** 32), m=600,
                  epsilon=4.0, repetitions=3, rng=0)
    if name is None:
        rows = report(benchmark, "Interior-point reduction",
                      run_lower_bound, **kwargs)
    else:
        with PipelinedRuns(name, backend_options) as runs:
            rows = report(benchmark, f"Interior-point reduction ({name})",
                          run_lower_bound, runs=runs, **kwargs)
    assert len(rows) == 3
    # The theoretical sample-complexity lower bound grows with the domain.
    assert rows[-1]["theory_min_samples"] >= rows[0]["theory_min_samples"]


def test_pipelined_sweep_row_parity(backend_choice):
    """2-worker smoke: a sharded sweep matches the serial rows exactly."""
    _, workers = backend_choice
    kwargs = dict(domain_sizes=(2 ** 8, 2 ** 16), m=200, epsilon=4.0,
                  repetitions=2, rng=0)

    serial = run_lower_bound(**kwargs)
    options = {"num_workers": 2 if workers is None else workers,
               "num_shards": 4}
    with PipelinedRuns("sharded", options) as runs:
        pipelined = run_lower_bound(runs=runs, **kwargs)

    def strip_timing(rows):
        return [{key: value for key, value in row.items()
                 if "seconds" not in key} for row in rows]

    assert strip_timing(serial) == strip_timing(pipelined)
