"""Benchmark E7 — the IntPoint reduction across domain sizes (Section 5)."""

from repro.experiments.lower_bound import run_lower_bound


def test_interior_point_reduction(benchmark, report):
    rows = report(benchmark, "Interior-point reduction", run_lower_bound,
                  domain_sizes=(2 ** 8, 2 ** 16, 2 ** 32), m=600,
                  epsilon=4.0, repetitions=3, rng=0)
    assert len(rows) == 3
    # The theoretical sample-complexity lower bound grows with the domain.
    assert rows[-1]["theory_min_samples"] >= rows[0]["theory_min_samples"]
