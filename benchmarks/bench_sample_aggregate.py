"""Benchmark E6 — sample & aggregate: 1-cluster vs noisy-average aggregator.

``--backend`` forwards a neighbor-backend name into the experiment (it
accelerates the default 1-cluster aggregation; release-neutral).  The
2-worker smoke below runs the plan-capable mean estimator once serially and
once with every block compiled into an asynchronous ``masked_sum`` query
plan over a sharded pool, and asserts the two releases are bitwise
identical.
"""

import numpy as np

from repro.experiments.sample_aggregate import run_sample_aggregate


def test_sample_aggregate_aggregators(benchmark, report, backend_choice):
    name, _ = backend_choice
    kwargs = dict(secondary_weights=(0.0, 0.2, 0.4), rng=0)
    if name is not None:
        kwargs["backend"] = name
    rows = report(benchmark, "Sample & aggregate (GMM dominant mean)",
                  run_sample_aggregate, **kwargs)
    assert len(rows) == 6
    ours = [row for row in rows if row["method"] == "one_cluster_aggregator"]
    assert any(row["found"] for row in ours)


def test_pipelined_block_plans_release_parity(backend_choice):
    """2-worker smoke: pipelined block plans move time, never the release."""
    from repro.accounting.params import PrivacyParams
    from repro.neighbors import BACKENDS
    from repro.sample_aggregate import private_mean_estimator

    _, workers = backend_choice
    rng = np.random.default_rng(0)
    data = rng.normal(loc=[0.4, 0.6], scale=0.05, size=(6000, 2))
    params = PrivacyParams(12.0, 1e-4)
    kwargs = dict(alpha=0.8, subsample_fraction=1.0 / 3.0,
                  collect_diagnostics=True)

    serial = private_mean_estimator(data, block_size=10, params=params,
                                    rng=1, **kwargs)
    backend = BACKENDS["sharded"](
        data, num_workers=2 if workers is None else workers, num_shards=4)
    try:
        pipelined = private_mean_estimator(data, block_size=10, params=params,
                                           rng=1, backend=backend, **kwargs)
    finally:
        backend.close()

    assert np.array_equal(serial.aggregate_values, pipelined.aggregate_values)
    assert serial.found == pipelined.found
    assert serial.found
    assert np.array_equal(np.asarray(serial.point),
                          np.asarray(pipelined.point))
