"""Benchmark E6 — sample & aggregate: 1-cluster vs noisy-average aggregator."""

from repro.experiments.sample_aggregate import run_sample_aggregate


def test_sample_aggregate_aggregators(benchmark, report):
    rows = report(benchmark, "Sample & aggregate (GMM dominant mean)",
                  run_sample_aggregate, secondary_weights=(0.0, 0.2, 0.4),
                  rng=0)
    assert len(rows) == 6
    ours = [row for row in rows if row["method"] == "one_cluster_aggregator"]
    assert any(row["found"] for row in ours)
