"""Benchmark E1 — empirical analogue of Table 1 (method comparison).

Regenerates, on planted-cluster data, the two columns Table 1 compares
(additive loss Delta and radius factor w) for every method the paper lists.
"""

from repro.experiments.table1 import run_table1


def test_table1_two_dimensional(benchmark, report):
    rows = report(benchmark, "Table 1 analogue (d=2)", run_table1,
                  n=2000, dimension=2, epsilon=2.0, grid_side=33, rng=0)
    ours = [row for row in rows if row["method"] == "this_work"]
    assert ours and ours[0]["found"]


def test_table1_one_dimensional(benchmark, report):
    rows = report(benchmark, "Table 1 analogue (d=1, incl. threshold release)",
                  run_table1, n=2000, dimension=1, epsilon=2.0, grid_side=65,
                  rng=1)
    methods = {row["method"] for row in rows}
    assert "threshold_release" in methods
