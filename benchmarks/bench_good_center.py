"""Benchmark E10 — GoodCenter in isolation (Lemma 3.7)."""

from repro.experiments.good_center import run_good_center


def test_good_center_error_decay(benchmark, report):
    rows = report(benchmark, "GoodCenter centre recovery", run_good_center,
                  cluster_sizes=(400, 800, 1600), dimension=4, epsilon=1.0,
                  rng=0)
    assert len(rows) == 3
    assert any(row["found"] for row in rows)
