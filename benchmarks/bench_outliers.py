"""Benchmark E8 — private outlier screening."""

from repro.experiments.outliers import run_outliers


def test_outlier_screening(benchmark, report):
    rows = report(benchmark, "Outlier screening", run_outliers,
                  contamination_levels=(0.05, 0.1, 0.2), n=2000, epsilon=2.0,
                  rng=0)
    assert len(rows) == 3
