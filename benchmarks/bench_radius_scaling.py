"""Benchmark E2 — radius approximation factor versus n (w = O(sqrt(log n)))."""

from repro.experiments.radius_scaling import run_radius_scaling


def test_radius_scaling_with_n(benchmark, report):
    rows = report(benchmark, "Radius factor vs n", run_radius_scaling,
                  sizes=(500, 1000, 2000, 4000), dimension=4, epsilon=2.0,
                  rng=0)
    assert len(rows) == 4
    found = [row for row in rows if row["found"]]
    assert len(found) >= 3
