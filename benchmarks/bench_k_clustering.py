"""Benchmark E5 — the k-clustering heuristic (Observation 3.5)."""

from repro.experiments.k_clustering import run_k_clustering


def test_k_clustering_coverage(benchmark, report):
    rows = report(benchmark, "k-clustering heuristic", run_k_clustering,
                  k_values=(2, 3, 4), n=3000, epsilon=4.0, rng=0)
    assert len(rows) == 3
    assert all(0.0 <= row["covered_fraction"] <= 1.0 for row in rows)
