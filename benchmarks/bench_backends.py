"""Smoke benchmark comparing neighbor backends on the GoodRadius hot path.

For each ``n`` the benchmark times the workload that dominates ``good_radius``
— evaluating the capped-average score ``L(r, S)`` over the full candidate
radius grid — under every backend (dense / chunked / tree / sharded), plus a
faithful replica of the *seed* implementation (Gram-matrix pairwise distances,
full row sort, per-row Python ``searchsorted`` loop) as the reference the
speedups are measured against.

Run directly::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py --sizes 1000 5000 20000 \
        --seed-max 5000          # skip the O(n^2)-memory seed path at 20k
    PYTHONPATH=src python benchmarks/bench_backends.py --end-to-end
    PYTHONPATH=src python benchmarks/bench_backends.py --sizes 50000 \
        --seed-max 0 --workers 8 # sharded backend on an 8-way pool
    PYTHONPATH=src python benchmarks/bench_backends.py --large-target \
        --sizes 20000            # t = 0.9 n memory/latency profile
    PYTHONPATH=src python benchmarks/bench_backends.py --json
                                 # persisted trajectory -> BENCH_backends.json

``--end-to-end`` additionally runs the private ``good_radius`` release itself
per backend, demonstrating the n = 20k, d = 2 case that was out of reach for
the seed's dense matrix.  ``--large-target`` switches to the outlier-screening
profile (``t = 0.9 n``): it reports wall-clock *and* tracemalloc peak memory
for the persisted ``O(n*t)`` statistic versus the radii-chunked streaming
walk, which stays ``O(n * block)`` at every target.  ``--json`` writes the
*persisted benchmark trajectory* — distance-slab kernel timings at each size
plus one sharded ``good_center`` release recording wall time, collective
round trips, speculation hit rate, the active kernel mode and parent peak
memory — to ``BENCH_backends.json`` (CI uploads it as an artifact, so the
numbers accumulate a history across commits).  ``--sample-aggregate``
appends a Section-6 workload to that trajectory: the same private
sample-and-aggregate mean release timed on the serial parent-side path and
on the pipelined path (every block one asynchronous ``masked_sum`` query
plan over a sharded backend), parity-asserted, with both wall times and the
speedup.
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc

import numpy as np

from repro import kernels
from repro.accounting.params import PrivacyParams
from repro.core.good_radius import good_radius
from repro.datasets.synthetic import planted_cluster
from repro.experiments.harness import format_table
from repro.geometry.balls import pairwise_distances
from repro.geometry.grid import GridDomain
from repro.neighbors import BACKENDS, auto_backend

DIMENSION = 2

#: Default sizes of the ``--json`` trajectory (the distance-slab
#: microbenchmark sizes the kernel speedups are tracked at).
JSON_SIZES = (20000, 100000)

#: The end-to-end release config is capped at this n so the JSON run stays
#: minutes, not hours, on small CI machines (the slab microbenchmark is the
#: size-sensitive kernel probe; the release config tracks round trips and
#: speculation, which do not grow with n).
JSON_RELEASE_CAP = 20000


def make_backend(name: str, points: np.ndarray, workers):
    """Build one registry backend, honouring ``--workers`` for "sharded"."""
    if name == "sharded":
        return BACKENDS[name](points, num_workers=workers)
    return BACKENDS[name](points)


def seed_dense_profile(points: np.ndarray, radii: np.ndarray,
                       target: int) -> np.ndarray:
    """The seed RadiusScore path, verbatim in spirit: full sorted Gram-matrix
    distances + per-row Python searchsorted loop, chunked over radii."""
    n = points.shape[0]
    sorted_distances = np.sort(pairwise_distances(points), axis=1)
    result = np.empty(radii.shape[0])
    for start in range(0, radii.shape[0], 1024):
        chunk = radii[start:start + 1024]
        counts = np.empty((n, chunk.shape[0]))
        for row in range(n):
            counts[row] = np.searchsorted(sorted_distances[row], chunk,
                                          side="right")
        np.minimum(counts, target, out=counts)
        counts[:, chunk < 0] = 0.0
        top = counts if target == n else np.partition(
            counts, n - target, axis=0)[n - target:, :]
        result[start:start + 1024] = top.mean(axis=0)
    return result


def bench_one(n: int, seed_max: int, end_to_end: bool, rng_seed: int,
              workers=None, backend_names=None) -> list:
    target = max(100, n // 50)
    data = planted_cluster(n=n, d=DIMENSION, cluster_size=2 * target,
                           cluster_radius=0.05, rng=rng_seed)
    points = data.points
    domain = GridDomain(dimension=DIMENSION, side=1025,
                        low=float(np.floor(points.min())),
                        high=float(np.ceil(points.max())))
    radii = domain.candidate_radii()
    params = PrivacyParams(2.0, 1e-6)
    rows = []

    baseline_seconds = None
    if n <= seed_max:
        start = time.perf_counter()
        reference = seed_dense_profile(points, radii, target)
        baseline_seconds = time.perf_counter() - start
        rows.append({"n": n, "t": target, "backend": "seed_dense",
                     "profile_s": baseline_seconds, "speedup": 1.0,
                     "auto_pick": ""})
    else:
        reference = None
        rows.append({"n": n, "t": target, "backend": "seed_dense",
                     "profile_s": float("nan"), "speedup": float("nan"),
                     "auto_pick": "(skipped: --seed-max)"})

    auto_pick = auto_backend(n, DIMENSION)
    for name in (backend_names or BACKENDS):
        start = time.perf_counter()
        backend = make_backend(name, points, workers)
        profile = backend.capped_average_scores(radii, target)
        seconds = time.perf_counter() - start
        if reference is not None:
            assert np.allclose(profile, reference, atol=1e-9), (
                f"{name} disagrees with the seed path at n={n}"
            )
        row = {"n": n, "t": target, "backend": name, "profile_s": seconds,
               "speedup": (baseline_seconds / seconds
                           if baseline_seconds else float("nan")),
               "auto_pick": "*" if name == auto_pick else ""}
        if end_to_end:
            start = time.perf_counter()
            result = good_radius(points, target, params, rng=0, backend=backend)
            row["good_radius_s"] = time.perf_counter() - start
            row["released_radius"] = result.radius
        if name == "sharded":
            backend.close()
        rows.append(row)
    return rows


def bench_large_target(n: int, rng_seed: int, workers=None) -> list:
    """The outlier-screening profile: ``t = 0.9 n``, persisted vs streaming.

    Reports wall-clock seconds and tracemalloc peak MB; the streaming walk
    must stay far below the ``8 n t`` bytes the persisted statistic costs.
    Ends with the sorted-slab reuse regression check (see
    :func:`assert_streaming_slab_reuse`).
    """
    target = int(0.9 * n)
    data = planted_cluster(n=n, d=DIMENSION, cluster_size=target,
                           cluster_radius=0.3, rng=rng_seed)
    points = data.points
    radii = np.linspace(0.0, 1.2, 24)
    rows = []
    for name in ("chunked", "tree", "sharded"):
        for streaming in (False, True):
            backend = make_backend(name, points, workers)
            tracemalloc.start()
            start = time.perf_counter()
            scores = backend.capped_average_scores(radii, target,
                                                   streaming=streaming)
            seconds = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            if name == "sharded":
                backend.close()
            rows.append({
                "n": n, "t": target, "backend": name,
                "mode": "streaming" if streaming else "persisted",
                "profile_s": seconds, "peak_mb": peak / 1e6,
                "persisted_mb": 8 * n * min(target, n) / 1e6,
                "score_at_max": float(scores[-1]),
            })
    assert_streaming_slab_reuse(points, target)
    return rows


def assert_streaming_slab_reuse(points: np.ndarray, target: int,
                                grid_size: int = 1024) -> None:
    """Regression guard: the streaming walk sorts each distance slab once.

    The streaming ``L(r, S)`` evaluation processes the radius grid in sweeps
    sized to one memory budget; within a sweep every ``(block, n)`` distance
    slab is computed and sorted exactly once, then binary-searched for every
    radius.  Before the sweep refactor a grid this large (``grid_size``
    radii at ``cap = t``) was split into multiple chunks, each re-running —
    and re-sorting — the full blocked pass.  Counting the distance-block
    calls of one streaming evaluation pins the reuse: exactly one pass over
    the query rows (``ceil(n / block)`` block computations), regardless of
    the grid size.
    """
    import repro.neighbors._distance as _distance
    from repro.neighbors._distance import row_block_size

    n = points.shape[0]
    radii = np.linspace(0.0, 1.2, grid_size)
    backend = BACKENDS["chunked"](points)
    calls = []
    original = _distance.squared_distance_block

    def counting(queries, data):
        calls.append(queries.shape[0])
        return original(queries, data)

    _distance.squared_distance_block = counting
    try:
        streamed = backend.capped_average_scores(radii, target,
                                                 streaming=True)
    finally:
        _distance.squared_distance_block = original
    block = row_block_size(n, points.shape[1])
    expected_passes = -(-n // block)               # ceil: one full pass
    assert len(calls) == expected_passes, (
        f"streaming walk ran {len(calls)} distance-block computations for "
        f"{grid_size} radii, expected one full pass ({expected_passes}); "
        "the sorted-slab reuse regressed"
    )
    persisted = backend.capped_average_scores(radii, target, streaming=False)
    assert np.array_equal(streamed, persisted), (
        "slab-reuse streaming scores diverged from the persisted statistic"
    )
    print(f"  slab reuse ok: {grid_size} radii in {len(calls)} block passes "
          f"(one sort per block), streaming == persisted bitwise")


def bench_good_center_jl(n: int, rng_seed: int, workers=None,
                         attempts: int = 64) -> list:
    """The JL-path partition search: inline parent hashing vs view-batched.

    GoodCenter's non-identity path repeatedly hashes the JL-projected points
    into randomly shifted box partitions (Algorithm 2, steps 3-6).  The
    *inline* flavour is the no-backend reference: the parent materialises the
    ``(n, k)`` projected image once and hashes it once per attempt.  The
    *view-batched* flavour runs the same attempts through a sharded
    backend's :class:`~repro.neighbors.base.ProjectedView` in batches: the
    projection matrix ships to the workers once, shards hash their own slice
    in parallel, and the parent only merges per-label counts — it never
    holds the image, which is what the parent-side peak-memory column
    records (tracemalloc sees the parent process only; that asymmetry is the
    point).  Both flavours are timed steady-state (image / pool warm-up
    excluded) and the per-attempt counts are asserted identical — the bench
    doubles as a parity check.
    """
    from repro.core.config import GoodCenterConfig
    from repro.geometry.boxes import box_labels
    from repro.geometry.jl import JohnsonLindenstrauss, project_rows

    dimension = 32
    beta = 0.1
    config = GoodCenterConfig(jl_constant=1.0)
    k = config.projection_dimension(n, beta, ambient_dimension=dimension)
    assert k < dimension, "jl_constant must force the non-identity path"
    data = planted_cluster(n=n, d=dimension, cluster_size=max(200, n // 20),
                           cluster_radius=0.05, rng=rng_seed)
    points = data.points
    radius = 0.05
    width = config.box_width(radius, k, identity_projection=False)
    matrix = JohnsonLindenstrauss(input_dimension=dimension,
                                  output_dimension=k, rng=0).matrix
    shifts = np.random.default_rng(1).uniform(0.0, width, size=(attempts, k))
    rows = []

    # Inline (no-backend) reference: project once, hash per attempt.
    tracemalloc.start()
    projected = project_rows(points, matrix)          # warm: kept across attempts
    start = time.perf_counter()
    inline_counts = np.array([
        np.unique(box_labels(projected, shift, width), axis=0,
                  return_counts=True)[1].max()
        for shift in shifts
    ])
    inline_seconds = time.perf_counter() - start
    _, inline_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del projected
    rows.append({
        "n": n, "k": k, "mode": "inline", "attempts": attempts,
        "attempts_per_s": attempts / inline_seconds,
        "parent_peak_mb": inline_peak / 1e6,
        "speedup": 1.0,
    })

    backend = make_backend("sharded", points, workers)
    try:
        view = backend.view(matrix)
        batch = view.batch_size
        view.heaviest_cell_counts(width, shifts[:1])  # warm: pool + images
        tracemalloc.start()
        start = time.perf_counter()
        batched_counts = np.concatenate([
            view.heaviest_cell_counts(width, shifts[i:i + batch])
            for i in range(0, attempts, batch)
        ])
        batched_seconds = time.perf_counter() - start
        _, batched_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    finally:
        backend.close()
    assert np.array_equal(batched_counts, inline_counts), (
        f"view-batched search disagrees with inline hashing at n={n}"
    )
    rows.append({
        "n": n, "k": k, "mode": "view-batched", "attempts": attempts,
        "attempts_per_s": attempts / batched_seconds,
        "parent_peak_mb": batched_peak / 1e6,
        "speedup": inline_seconds / batched_seconds,
    })
    return rows


def bench_good_center_rotated(n: int, rng_seed: int, workers=None) -> list:
    """The full rotated-stage release (steps 8-11): in-parent vs shard-side,
    fused query plans vs the per-query fan-outs.

    Times the complete ``good_center`` call on the JL + rotated-axis path —
    the stage PR 4 moved behind the backend and PR 5 bundled into fused
    query plans.  The *in-parent* flavour is the no-backend reference: it
    materialises the selected set, rotates it, and hands the coordinates to
    NoisyAVG.  The *shard-side* flavours run the same call through a sharded
    backend: the selected set travels as a label predicate, the rotated
    frame is a shard-side view, and the parent only merges per-axis
    histograms and ``(count, exact sum)`` partials — the parent-process
    tracemalloc peak column is the point (in pool mode the parent never
    holds the selected or rotated coordinates).  The *fused* flavour bundles
    each stage into one :class:`~repro.neighbors.QueryPlan` (the
    ``round_trips`` column counts the backend's collective fan-outs — one
    per stage); *unfused* flips the ``_FUSED_QUERY_PLANS`` seam back to the
    PR 4 per-query fan-outs.  All releases are asserted bitwise identical,
    so the bench doubles as an end-to-end parity check of both seams.
    """
    import sys

    from repro.core.config import GoodCenterConfig
    from repro.core.good_center import good_center

    # The repro.core package rebinds the name ``good_center`` to the
    # function, so the module (whose _FUSED_QUERY_PLANS seam the unfused
    # flavour flips) must come from sys.modules.
    good_center_module = sys.modules["repro.core.good_center"]

    dimension = 16
    target = n // 2
    config = GoodCenterConfig(jl_constant=0.3)
    data = planted_cluster(n=n, d=dimension, cluster_size=int(0.6 * n),
                           cluster_radius=0.05,
                           center=[0.5] * dimension, rng=rng_seed)
    points = data.points
    center_params = PrivacyParams(8.0, 1e-5)
    rows = []

    tracemalloc.start()
    start = time.perf_counter()
    reference = good_center(points, radius=0.05, target=target,
                            params=center_params, config=config, rng=5)
    inline_seconds = time.perf_counter() - start
    _, inline_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert reference.found and reference.projected_dimension < dimension, (
        "the bench case must take the JL + rotated-axis path and succeed"
    )
    rows.append({
        "n": n, "d": dimension, "k": reference.projected_dimension,
        "mode": "in-parent", "release_s": inline_seconds,
        "parent_peak_mb": inline_peak / 1e6, "round_trips": float("nan"),
        "speedup": 1.0,
    })

    for fused in (True, False):
        good_center_module._FUSED_QUERY_PLANS = fused
        backend = make_backend("sharded", points, workers)
        try:
            backend.radius_counts(0.01)        # warm: pool + shared memory
            warm_fanouts = backend.pool_stats()["fanouts"]
            tracemalloc.start()
            start = time.perf_counter()
            result = good_center(points, radius=0.05, target=target,
                                 params=center_params, config=config, rng=5,
                                 backend=backend)
            shard_seconds = time.perf_counter() - start
            _, shard_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            round_trips = backend.pool_stats()["fanouts"] - warm_fanouts
        finally:
            backend.close()
            good_center_module._FUSED_QUERY_PLANS = True
        assert result.found and np.array_equal(result.center,
                                               reference.center), (
            f"shard-side rotated stage (fused={fused}) disagrees with the "
            f"in-parent release at n={n}"
        )
        rows.append({
            "n": n, "d": dimension, "k": result.projected_dimension,
            "mode": "shard-side/fused" if fused else "shard-side/unfused",
            "release_s": shard_seconds,
            "parent_peak_mb": shard_peak / 1e6,
            "round_trips": round_trips,
            "speedup": inline_seconds / shard_seconds,
        })
    return rows


def parent_peak_rss_mib() -> float:
    """This process's lifetime peak resident set, in MiB (NaN off-POSIX)."""
    try:
        import resource
    except ImportError:                      # pragma: no cover - non-POSIX
        return float("nan")
    import sys

    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    if sys.platform == "darwin":             # pragma: no cover
        return usage / (1024.0 * 1024.0)
    return usage / 1024.0


def speculation_summary(stats: dict) -> dict:
    """Collapse ``pool_stats()['speculation']`` into a JSON-friendly record."""
    stages = {stage: dict(counters)
              for stage, counters in stats.get("speculation", {}).items()}
    hits = sum(int(c["hits"]) for c in stages.values())
    misses = sum(int(c["misses"]) for c in stages.values())
    total = hits + misses
    return {
        "stages": stages,
        "hits": hits,
        "misses": misses,
        "hit_rate": (hits / total) if total else None,
    }


def bench_json_distance_slab(n: int, rng_seed: int, repeats: int = 3) -> dict:
    """Time one full blocked distance slab — the kernel every backend's
    ``O(n^2)`` neighbor work decomposes into — under the active kernel set.

    The query block is sized by :func:`~repro.neighbors._distance.
    row_block_size`, i.e. exactly the slab shape the chunked/sharded walks
    issue, and the best of ``repeats`` runs is reported (first a small
    warm-up call absorbs any JIT compilation).
    """
    from repro.neighbors._distance import row_block_size

    rng = np.random.default_rng(rng_seed)
    data = rng.uniform(0.0, 1.0, size=(n, DIMENSION))
    block = row_block_size(n, DIMENSION)
    queries = data[:block]
    kernels.squared_distance_slab(queries[:64], data[:256])   # warm: JIT
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        slab = kernels.squared_distance_slab(queries, data)
        best = min(best, time.perf_counter() - start)
    return {
        "bench": "distance_slab",
        "n": n,
        "d": DIMENSION,
        "block_rows": int(queries.shape[0]),
        "repeats": repeats,
        "seconds": best,
        "pairs_per_second": queries.shape[0] * n / best,
        "kernel_mode": kernels.KERNEL_MODE,
        "checksum": float(slab[0].sum()),
    }


def bench_json_release(n: int, rng_seed: int, workers=None) -> dict:
    """One sharded ``good_center`` release on the JL + rotated-axis path.

    Records the quantities the JSON trajectory tracks over time: wall
    seconds, collective round trips, fused-plan count, per-stage speculation
    counters (and overall hit rate), the active kernel mode, and the parent
    process's peak memory (tracemalloc for the call, lifetime RSS for the
    process).
    """
    from repro.core.config import GoodCenterConfig
    from repro.core.good_center import good_center

    dimension = 16
    target = n // 2
    config = GoodCenterConfig(jl_constant=0.3)
    data = planted_cluster(n=n, d=dimension, cluster_size=int(0.6 * n),
                           cluster_radius=0.05,
                           center=[0.5] * dimension, rng=rng_seed)
    backend = make_backend("sharded", data.points, workers)
    try:
        backend.radius_counts(0.01)            # warm: pool + shared memory
        warm_fanouts = backend.pool_stats()["fanouts"]
        tracemalloc.start()
        start = time.perf_counter()
        result = good_center(data.points, radius=0.05, target=target,
                             params=PrivacyParams(8.0, 1e-5), config=config,
                             rng=5, backend=backend)
        wall = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        stats = backend.pool_stats()
    finally:
        backend.close()
    return {
        "bench": "good_center_sharded",
        "n": n,
        "d": dimension,
        "target": target,
        "found": bool(result.found),
        "wall_seconds": wall,
        "round_trips": int(stats["fanouts"] - warm_fanouts),
        "plans": int(stats["plans"]),
        "kernel_mode": stats["kernel_mode"],
        "speculation": speculation_summary(stats),
        "parent_peak_tracemalloc_mb": peak / 1e6,
        "parent_peak_rss_mib": parent_peak_rss_mib(),
    }


def bench_json_distributed(n: int, rng_seed: int, num_nodes: int) -> dict:
    """The ``--distributed`` column: the ``bench_json_release`` workload
    over loopback node servers, so the trajectory tracks how much the wire
    (framing, encode/decode, one RPC per node per collective) costs on top
    of the same shard/merge work — the release itself is bitwise the local
    one, which the distributed parity suite pins."""
    from repro.core.config import GoodCenterConfig
    from repro.core.good_center import good_center
    from repro.neighbors.distributed import DistributedBackend
    from repro.neighbors.serve import NodeServer

    dimension = 16
    target = n // 2
    config = GoodCenterConfig(jl_constant=0.3)
    data = planted_cluster(n=n, d=dimension, cluster_size=int(0.6 * n),
                           cluster_radius=0.05,
                           center=[0.5] * dimension, rng=rng_seed)
    servers = [NodeServer().start() for _ in range(num_nodes)]
    try:
        backend = DistributedBackend(data.points,
                                     nodes=[s.address for s in servers],
                                     num_shards=2 * num_nodes)
        try:
            backend.radius_counts(0.01)        # warm: node caches
            warm_fanouts = backend.pool_stats()["fanouts"]
            start = time.perf_counter()
            result = good_center(data.points, radius=0.05, target=target,
                                 params=PrivacyParams(8.0, 1e-5),
                                 config=config, rng=5, backend=backend)
            wall = time.perf_counter() - start
            stats = backend.pool_stats()
        finally:
            backend.close()
    finally:
        for server in servers:
            server.stop()
    return {
        "bench": "good_center_distributed",
        "n": n,
        "d": dimension,
        "target": target,
        "num_nodes": num_nodes,
        "num_shards": int(stats["num_shards"]),
        "found": bool(result.found),
        "wall_seconds": wall,
        "round_trips": int(stats["fanouts"] - warm_fanouts),
        "plans": int(stats["plans"]),
        "kernel_mode": stats["kernel_mode"],
        "speculation": speculation_summary(stats),
        # Failover counters: all zero on a healthy loopback run — a
        # nonzero value in a trajectory row means the bench itself hit
        # node trouble and its wall time is not comparable.
        "redials": int(stats["redials"]),
        "adopted_shards": int(stats["adopted_shards"]),
        "replayed_tasks": int(stats["replayed_tasks"]),
        "live_nodes": int(stats["live_nodes"]),
    }


def bench_json_service(n: int, rng_seed: int, workers=None,
                       queries_per_tenant: int = 4) -> dict:
    """The ``--service`` column: service throughput at two concurrent
    tenants sharing one resident sharded dataset.

    Measures the deployment-shaped number the library benches cannot:
    queries/s through the full front door — admission-time budget charge,
    bounded FIFO queue, executor hand-off — against a backend that stays
    warm across every query.  One release is asserted bitwise identical to
    the same-seed direct library call, so the row also re-pins service
    parity at benchmark scale.
    """
    import threading

    from repro.core.good_radius import good_radius
    from repro.service import ClusteringService

    dimension = 16
    target = n // 2
    data = planted_cluster(n=n, d=dimension, cluster_size=int(0.6 * n),
                           cluster_radius=0.05,
                           center=[0.5] * dimension, rng=rng_seed)
    params = PrivacyParams(1.0, 1e-7)
    with ClusteringService() as service:
        service.register_dataset("bench", data.points, backend="sharded",
                                 options=(None if workers is None
                                          else {"num_workers": workers}))
        for tenant in ("alice", "bob"):
            service.create_tenant(
                tenant, PrivacyParams(4.0 * queries_per_tenant, 1e-4))
        # Warm the resident pool so the row measures steady-state serving.
        service.good_radius("alice", "bench", target=target, params=params,
                            rng=rng_seed).result()
        results: dict = {}

        def run_tenant(tenant, seed_base):
            jobs = [service.good_radius(tenant, "bench", target=target,
                                        params=params, rng=seed_base + i)
                    for i in range(queries_per_tenant)]
            results[tenant] = [job.result() for job in jobs]

        start = time.perf_counter()
        threads = [
            threading.Thread(target=run_tenant, args=("alice", 100)),
            threading.Thread(target=run_tenant, args=("bob", 200)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        stats = service.service_stats()
        # Service parity at bench scale: re-run one query directly.
        direct = good_radius(data.points, target=target, params=params,
                             rng=100)
        assert results["alice"][0].radius == direct.radius, \
            "service release diverged from the direct call"
    total = 2 * queries_per_tenant
    return {
        "bench": "service_throughput",
        "n": n,
        "d": dimension,
        "target": target,
        "tenants": 2,
        "queries": total,
        "wall_seconds": wall,
        "queries_per_second": total / wall,
        "kernel_mode": kernels.KERNEL_MODE,
        "tenant_spend_epsilon": {
            tenant: stats["tenants"][tenant]["spent"]["epsilon"]
            for tenant in ("alice", "bob")
        },
    }


def bench_json_sample_aggregate(n: int, rng_seed: int, workers=None) -> dict:
    """The ``--sample-aggregate`` column: Algorithm SA, serial vs pipelined.

    Times the same private mean-estimation release twice — once on the
    serial parent-side seed path (materialise the sub-sample, evaluate every
    block in-parent) and once with every block compiled into its own
    ``masked_sum`` :class:`~repro.neighbors.QueryPlan` and submitted
    up-front over a 2-worker sharded backend.  The releases (and the raw
    block means) are asserted bitwise identical, so the row is pure
    throughput: wall seconds per mode, the speedup, and the plan/round-trip
    accounting of the pipelined run.

    The workload is the regime the pipelining targets: wide rows (the
    per-block exact column sums dominate) and blocks large enough that one
    plan is a meaningful unit of work.  The aggregation step uses the
    GUPT-style noisy-average aggregator (dimension-robust and a few
    milliseconds, so the row isolates the block-evaluation stage both paths
    share the aggregator on).
    """
    from repro.neighbors import QueryPlan
    from repro.sample_aggregate import private_mean_estimator
    from repro.sample_aggregate.aggregators import noisy_average_aggregator

    dimension = 512
    num_blocks = 8
    num_shards = 32
    rounds = 3
    block_size = n // num_blocks
    rng = np.random.default_rng(rng_seed)
    data = rng.normal(0.5, 0.05, size=(n, dimension))
    params = PrivacyParams(32.0, 1e-5)

    def release(backend=None):
        # Fresh same-seed generators per call: both modes draw identical
        # block indices and aggregation noise, so the releases must match
        # bitwise (the masked-sum block means are partition-independent).
        aggregator = noisy_average_aggregator(
            clip_radius=1.0, center=np.full(dimension, 0.5))
        return private_mean_estimator(
            data, block_size, params, rng=rng_seed, alpha=0.8,
            subsample_fraction=1.0, aggregator=aggregator,
            collect_diagnostics=True, backend=backend)

    backend = BACKENDS["sharded"](data, num_workers=workers,
                                  num_shards=num_shards)
    try:
        # Warm the pool + shared memory with one tiny plan (radius_counts
        # would be an O(n^2) all-pairs sweep at this n).
        warm = QueryPlan()
        warm.masked_sum(backend.view(), np.arange(4))
        backend.submit(warm).result()
        warm_stats = backend.pool_stats()
        # Interleave the two modes and keep each one's best round, so a
        # shared-host slowdown mid-bench cannot bias the comparison either
        # way (noise only ever adds time; the minimum is the clean run).
        serial_walls = []
        pipelined_walls = []
        for _ in range(rounds):
            start = time.perf_counter()
            serial = release()
            serial_walls.append(time.perf_counter() - start)
            start = time.perf_counter()
            pipelined = release(backend=backend)
            pipelined_walls.append(time.perf_counter() - start)
        stats = backend.pool_stats()
    finally:
        backend.close()

    assert np.array_equal(serial.aggregate_values,
                          pipelined.aggregate_values), \
        "pipelined block means diverged from the serial path"
    assert serial.found == pipelined.found and np.array_equal(
        np.asarray(serial.point), np.asarray(pipelined.point)), \
        "pipelined release diverged from the serial path"
    serial_wall = min(serial_walls)
    wall = min(pipelined_walls)
    timed_runs = rounds
    return {
        "bench": "sample_aggregate",
        "n": n,
        "d": dimension,
        "backend": "sharded",
        "num_shards": num_shards,
        "blocks": num_blocks,
        "block_size": block_size,
        "found": bool(pipelined.found),
        "serial_wall_seconds": serial_wall,
        "wall_seconds": wall,
        "speedup": serial_wall / wall,
        "plans": int(stats["plans"] - warm_stats["plans"]) // timed_runs,
        "round_trips": int(stats["fanouts"]
                           - warm_stats["fanouts"]) // timed_runs,
        "kernel_mode": stats["kernel_mode"],
        "speculation": speculation_summary(stats),
        "parent_peak_rss_mib": parent_peak_rss_mib(),
    }


def run_json(args) -> None:
    """``--json``: write the persisted benchmark trajectory and print a recap."""
    configs = []
    for n in args.sizes:
        print(f"timing distance slab at n={n} "
              f"(kernel mode: {kernels.KERNEL_MODE}) ...", flush=True)
        configs.append(bench_json_distance_slab(n, args.rng))
    release_n = min(min(args.sizes), JSON_RELEASE_CAP)
    print(f"running sharded good_center release at n={release_n}, d=16 ...",
          flush=True)
    configs.append(bench_json_release(release_n, args.rng, args.workers))
    if args.distributed:
        print(f"running distributed good_center release at n={release_n}, "
              f"d=16, {args.distributed} loopback nodes ...", flush=True)
        configs.append(bench_json_distributed(release_n, args.rng,
                                              args.distributed))
    if args.service:
        # The service row runs at the *largest* requested size (capped):
        # its point is steady-state serving against a warm resident pool,
        # which only shows at benchmark scale.
        service_n = min(max(args.sizes), JSON_RELEASE_CAP)
        print(f"running service throughput at n={service_n}, d=16, "
              f"2 concurrent tenants ...", flush=True)
        configs.append(bench_json_service(service_n, args.rng, args.workers))
    if args.sample_aggregate:
        # Uncapped on purpose: the pipelined SA path exists to reach sizes
        # the parent-side path cannot, so the row is only meaningful at the
        # full n (default 100k, d=512 — the wide-row regime).
        print(f"running sample-and-aggregate (serial vs pipelined) at "
              f"n={args.sample_aggregate}, d=512 ...", flush=True)
        configs.append(bench_json_sample_aggregate(args.sample_aggregate,
                                                   args.rng, args.workers))
    payload = {
        "schema": 1,
        "generated_by": "benchmarks/bench_backends.py --json",
        "kernel": kernels.kernel_info(),
        "sizes": list(args.sizes),
        "configs": configs,
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {args.json}")
    for config in configs:
        if config["bench"] == "distance_slab":
            print(f"  distance_slab        n={config['n']:>7}: "
                  f"{config['seconds']:.4f}s  "
                  f"({config['pairs_per_second']:.3g} pairs/s, "
                  f"{config['kernel_mode']})")
        elif config["bench"] == "service_throughput":
            print(f"  service_throughput   n={config['n']:>7}: "
                  f"{config['wall_seconds']:.3f}s for {config['queries']} "
                  f"queries across {config['tenants']} tenants "
                  f"({config['queries_per_second']:.2f} q/s, "
                  f"{config['kernel_mode']})")
        elif config["bench"] == "sample_aggregate":
            print(f"  sample_aggregate     n={config['n']:>7}: "
                  f"serial {config['serial_wall_seconds']:.3f}s -> "
                  f"pipelined {config['wall_seconds']:.3f}s "
                  f"({config['speedup']:.2f}x, {config['blocks']} blocks, "
                  f"{config['round_trips']} round trips, "
                  f"{config['kernel_mode']})")
        else:
            rate = config["speculation"]["hit_rate"]
            rate_text = "n/a" if rate is None else f"{rate:.2f}"
            nodes = (f", {config['num_nodes']} nodes"
                     if "num_nodes" in config else "")
            print(f"  {config['bench']:<20} n={config['n']:>7}: "
                  f"{config['wall_seconds']:.3f}s, "
                  f"{config['round_trips']} round trips, "
                  f"speculation hit rate {rate_text}{nodes}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None,
                        help="problem sizes (default 1000 5000 20000; with "
                             "--json, 20000 100000)")
    parser.add_argument("--seed-max", type=int, default=20000,
                        help="largest n at which the O(n^2)-memory seed "
                             "reference is run (lower this on small machines)")
    parser.add_argument("--end-to-end", action="store_true",
                        help="also time the full private good_radius release")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-process count for the sharded backend "
                             "(default: CPU count; 0 = serial fallback)")
    parser.add_argument("--backends", nargs="+", default=None,
                        choices=sorted(BACKENDS),
                        help="restrict the compared backends (e.g. skip the "
                             "O(n^2)-memory dense matrix at n >= 50k: "
                             "--backends chunked tree sharded)")
    parser.add_argument("--large-target", action="store_true",
                        help="profile t = 0.9 n (outlier screening): "
                             "persisted vs streaming L(r, S), with peak "
                             "memory")
    parser.add_argument("--good-center-jl", action="store_true",
                        help="profile GoodCenter's JL-path partition search: "
                             "inline parent hashing vs the view-batched "
                             "sharded path (d=32, parity asserted)")
    parser.add_argument("--good-center-rotated", action="store_true",
                        help="profile the full rotated-stage release (steps "
                             "8-11): in-parent vs shard-side masked "
                             "aggregation, with the parent-process peak-"
                             "memory column (d=16, release parity asserted)")
    parser.add_argument("--attempts", type=int, default=64,
                        help="partition-search attempts timed per mode in "
                             "--good-center-jl")
    parser.add_argument("--json", nargs="?", const="BENCH_backends.json",
                        default=None, metavar="PATH",
                        help="write the persisted benchmark trajectory to "
                             "PATH (default BENCH_backends.json): distance-"
                             "slab kernel timings per size plus one sharded "
                             "good_center release with wall time, round "
                             "trips, speculation hit rate, kernel mode and "
                             "parent peak memory")
    parser.add_argument("--distributed", nargs="?", const=2, default=None,
                        type=int, metavar="NODES",
                        help="with --json: also run the good_center release "
                             "through the distributed backend over NODES "
                             "(default 2) loopback node servers, appending "
                             "a good_center_distributed column")
    parser.add_argument("--service", action="store_true",
                        help="with --json: also run the multi-tenant "
                             "service throughput workload (two concurrent "
                             "tenants, good_radius queries against one "
                             "resident sharded dataset), appending a "
                             "service_throughput column with queries/s")
    parser.add_argument("--sample-aggregate", nargs="?", const=100000,
                        default=None, type=int, metavar="N",
                        help="with --json: also run the sample-and-"
                             "aggregate release at N rows (default 100000, "
                             "d=512) on the serial parent-side path and "
                             "the pipelined per-block query-plan path "
                             "(parity-asserted), appending a "
                             "sample_aggregate column with both wall times "
                             "and the speedup")
    parser.add_argument("--rng", type=int, default=0)
    args = parser.parse_args()
    if args.sizes is None:
        args.sizes = list(JSON_SIZES) if args.json else [1000, 5000, 20000]

    if args.json:
        run_json(args)
        return

    if args.good_center_rotated:
        all_rows = []
        for n in args.sizes:
            print(f"profiling rotated-stage release at n={n}, d=16 ...",
                  flush=True)
            all_rows.extend(bench_good_center_rotated(n, args.rng,
                                                      args.workers))
        print()
        print(format_table(all_rows, columns=[
            "n", "d", "k", "mode", "release_s", "parent_peak_mb",
            "round_trips", "speedup",
        ]))
        print("\n(releases asserted bitwise identical between all modes; "
              "round_trips counts the backend's collective fan-outs over "
              "the whole call — the fused row bundles each GoodCenter stage "
              "into one QueryPlan, the unfused row replays the PR 4 "
              "per-query fan-outs; parent_peak_mb is parent-process "
              "tracemalloc — in pool mode the shard-side rows never hold "
              "the selected set, its rotation, or any membership array; "
              "with --workers 0 the serial fallback computes shard partials "
              "in-parent one shard at a time)")
        return

    if args.good_center_jl:
        all_rows = []
        for n in args.sizes:
            print(f"profiling JL partition search at n={n}, d=32 ...",
                  flush=True)
            all_rows.extend(bench_good_center_jl(n, args.rng, args.workers,
                                                 args.attempts))
        print()
        print(format_table(all_rows, columns=[
            "n", "k", "mode", "attempts", "attempts_per_s",
            "parent_peak_mb", "speedup",
        ]))
        print("\n(counts asserted identical between modes; parent_peak_mb is "
              "parent-process tracemalloc — in pool mode the view-batched "
              "row never holds the (n, k) projected image, the inline row "
              "must; with --workers 0 the serial fallback caches shard "
              "images in-parent like a worker would)")
        return

    if args.large_target:
        all_rows = []
        for n in args.sizes:
            print(f"profiling t = 0.9 n at n={n} ...", flush=True)
            all_rows.extend(bench_large_target(n, args.rng, args.workers))
        print()
        print(format_table(all_rows, columns=[
            "n", "t", "backend", "mode", "profile_s", "peak_mb",
            "persisted_mb", "score_at_max",
        ]))
        print("\n(persisted_mb = the 8*n*t bytes the O(n*t) statistic would "
              "hold; the streaming rows must peak far below it)")
        return

    all_rows = []
    for n in args.sizes:
        print(f"benchmarking n={n} ...", flush=True)
        all_rows.extend(bench_one(n, args.seed_max, args.end_to_end, args.rng,
                                  args.workers, args.backends))
    print()
    columns = ["n", "t", "backend", "profile_s", "speedup", "auto_pick"]
    if args.end_to_end:
        columns[-1:-1] = ["good_radius_s", "released_radius"]
    print(format_table(all_rows, columns=columns))
    print("\n(* = auto_backend's pick at that size; speedup is vs the seed "
          "dense Gram+sort+row-loop path on the same radius grid)")


if __name__ == "__main__":
    main()
