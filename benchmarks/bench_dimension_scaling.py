"""Benchmark E4 — dimension sweep: this work versus private aggregation."""

from repro.experiments.dimension_scaling import run_dimension_scaling


def test_dimension_scaling(benchmark, report):
    rows = report(benchmark, "Dimension sweep", run_dimension_scaling,
                  dimensions=(2, 4, 8, 16), n=2000, epsilon=2.0, rng=0)
    assert len(rows) == 8
    assert {row["method"] for row in rows} == {"this_work", "private_aggregation"}
