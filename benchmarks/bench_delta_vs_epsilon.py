"""Benchmark E3 — additive loss versus epsilon (Delta = O(log(n)/epsilon))."""

from repro.experiments.delta_vs_epsilon import run_delta_vs_epsilon


def test_delta_versus_epsilon(benchmark, report):
    rows = report(benchmark, "Additive loss vs epsilon", run_delta_vs_epsilon,
                  epsilons=(0.5, 1.0, 2.0, 4.0), n=2000, dimension=2, rng=0)
    assert len(rows) == 8
    gammas = {row["epsilon"]: row["gamma"] for row in rows
              if row["radius_method"] == "recconcave"}
    # The theoretical loss scale must shrink as epsilon grows.
    assert gammas[4.0] < gammas[0.5]
