"""Benchmark F1/F2 — the configurations of Figures 1 and 2."""

from repro.experiments.figures import run_figure_configs


def test_figure_configurations(benchmark, report):
    rows = report(benchmark, "Figure 1 / Figure 2 configurations",
                  run_figure_configs, epsilon=2.0, rng=0)
    f2 = next(row for row in rows if row["figure"] == "F2")
    assert f2["extended_interval_capture"] == f2["cluster_size"]
    assert f2["heavy_interval_capture"] < f2["cluster_size"]
