"""Shared configuration for the benchmark harness.

Each benchmark runs the corresponding experiment module once per measurement
round (the experiments are end-to-end private-algorithm runs, so a single
round is already seconds of work) and prints the resulting table so the
numbers recorded in EXPERIMENTS.md can be regenerated directly from the
benchmark output.
"""

from __future__ import annotations

import pytest


def run_and_report(benchmark, label, runner, **kwargs):
    """Benchmark ``runner(**kwargs)`` once and print its table."""
    from repro.experiments.harness import format_table

    rows = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print(f"\n=== {label} ===")
    print(format_table(rows))
    return rows


@pytest.fixture
def report():
    """Fixture exposing :func:`run_and_report` to the benchmark modules."""
    return run_and_report
