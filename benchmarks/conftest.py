"""Shared configuration for the benchmark harness.

Each benchmark runs the corresponding experiment module once per measurement
round (the experiments are end-to-end private-algorithm runs, so a single
round is already seconds of work) and prints the resulting table so the
numbers recorded in EXPERIMENTS.md can be regenerated directly from the
benchmark output.

Backend-aware benchmarks additionally honour two command-line options::

    pytest benchmarks/bench_lower_bound.py --backend sharded --workers 2

``--backend`` names the neighbor backend the experiment threads its query
plans through (any :data:`repro.neighbors.BACKENDS` key); ``--workers``
sets the sharded backend's worker-process count.  Both default to the
experiment's own defaults when omitted.  Releases are backend-independent
by construction, so the flags only move wall-clock time — the parity smokes
in the individual benchmark modules assert exactly that.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("repro benchmarks")
    group.addoption("--backend", default=None,
                    help="neighbor backend for backend-aware benchmarks "
                         "(a repro.neighbors.BACKENDS name, e.g. dense, "
                         "chunked, tree, sharded)")
    group.addoption("--workers", type=int, default=None,
                    help="worker-process count for the sharded backend "
                         "(0 = serial in-parent fallback)")


@pytest.fixture
def backend_choice(request):
    """The ``(--backend, --workers)`` pair, both ``None`` when unset."""
    return (request.config.getoption("--backend"),
            request.config.getoption("--workers"))


@pytest.fixture
def backend_options(backend_choice):
    """``resolve_backend``-style construction options for ``--backend``.

    ``None`` unless ``--workers`` was given alongside ``--backend sharded``
    (the only registry backend that takes a worker count).
    """
    name, workers = backend_choice
    if name == "sharded" and workers is not None:
        return {"num_workers": workers}
    return None


def run_and_report(benchmark, label, runner, **kwargs):
    """Benchmark ``runner(**kwargs)`` once and print its table."""
    from repro.experiments.harness import format_table

    rows = benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
    print(f"\n=== {label} ===")
    print(format_table(rows))
    return rows


@pytest.fixture
def report():
    """Fixture exposing :func:`run_and_report` to the benchmark modules."""
    return run_and_report
