"""Shared utilities: RNG handling, iterated logarithms, validation helpers."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.iterated_log import log_star, tower
from repro.utils.validation import (
    check_points,
    check_positive,
    check_probability,
    check_in_range,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "log_star",
    "tower",
    "check_points",
    "check_positive",
    "check_probability",
    "check_in_range",
]
