"""Random-number-generator plumbing.

Every randomized component in this library accepts a ``rng`` argument that may
be ``None`` (use a fresh default generator), an integer seed, or an existing
:class:`numpy.random.Generator`.  Centralising the conversion here keeps the
rest of the code free of ``isinstance`` checks and makes experiments exactly
reproducible when a seed is supplied.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for a non-deterministic generator, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (returned
        unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    return np.random.default_rng(rng)


def spawn_generators(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Composite mechanisms (e.g. GoodCenter, which runs AboveThreshold, a
    histogram choice, per-axis choices and a Gaussian average) use this to hand
    each sub-mechanism its own stream so that re-ordering sub-mechanisms does
    not silently change results.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def random_unit_vector(dimension: int, rng: RngLike = None) -> np.ndarray:
    """Sample a uniformly random unit vector in ``R^dimension``."""
    generator = as_generator(rng)
    vector = generator.standard_normal(dimension)
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:  # pragma: no cover - probability zero
        vector = np.zeros(dimension)
        vector[0] = 1.0
        return vector
    return vector / norm


def permuted(items: Iterable, rng: RngLike = None) -> list:
    """Return a list with the items of ``items`` in uniformly random order."""
    generator = as_generator(rng)
    result = list(items)
    generator.shuffle(result)
    return result


def split_budget_seed(rng: RngLike, label: str) -> np.random.Generator:
    """Derive a child generator tagged by ``label``.

    The label participates in the derivation so that two sub-mechanisms with
    different labels receive different streams even if called in a different
    order.  This is a convenience for experiment harnesses, not a security
    feature.
    """
    parent = as_generator(rng)
    offset = sum(ord(ch) for ch in label) % (2**31)
    seed = int(parent.integers(0, 2**62)) + offset
    return np.random.default_rng(seed)


__all__ = [
    "RngLike",
    "as_generator",
    "spawn_generators",
    "random_unit_vector",
    "permuted",
    "split_budget_seed",
]
