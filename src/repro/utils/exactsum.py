"""Exact, partition-independent summation of float64 values.

The library's central invariant — the neighbor-backend choice never moves a
byte of any release — extends in this PR to *floating-point aggregates*:
GoodCenter's NoisyAVG stage now consumes masked sums that shards computed
independently.  Plain float addition cannot keep that promise: it is not
associative, so a sum split across 2 shards and the same sum split across 7
shards round differently in the last ulp.  This module solves it by summing
in **exact fixed-point integers**:

* every finite ``float64`` is an integer multiple of ``2**-1074`` (the
  smallest subnormal), so ``x * 2**1074`` is an exact Python integer of at
  most ~2100 bits;
* integer addition is exact and associative, so per-shard partial sums merge
  into the same total no matter how the rows were partitioned or in which
  order the partials arrive;
* the single final conversion back to ``float64`` (``int / int`` true
  division, correctly rounded in CPython) yields the correctly-rounded sum —
  a *canonical* value every code path reproduces bit-for-bit.

The kernel is vectorised: ``np.frexp`` splits all values at once, mantissas
sharing an exponent are grouped and summed with ``np.add.reduceat`` in
segments short enough that the ``int64`` partials cannot overflow
(``512 * 2**53 < 2**63``), and only the per-segment fold runs in Python — a
few thousand big-int operations for a million inputs.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro import kernels

#: Every finite float64 is an integer multiple of ``2**-SCALE_BITS``.
SCALE_BITS = 1074

#: ``2**53`` — scaling a frexp mantissa (``0.5 <= |m| < 1``) by this yields
#: an exact integer with at most 53 bits.
_MANTISSA_SCALE = float(1 << 53)

#: Longest ``np.add.reduceat`` segment: ``512 * 2**53 < 2**63`` guarantees
#: the int64 segment sums cannot overflow.
_SEGMENT = 512


def fixed_point_sum(values) -> int:
    """The exact sum of float64 ``values`` in units of ``2**-SCALE_BITS``.

    Parameters
    ----------
    values:
        Array-like of finite floats (any shape; summed over all elements).

    Returns
    -------
    int
        ``sum(values) * 2**SCALE_BITS`` as an exact (arbitrary-precision)
        integer.  Partials from disjoint subsets merge by plain integer
        addition — exactly, in any order or grouping.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        return 0
    if not np.all(np.isfinite(values)):
        raise ValueError("exact summation requires finite values")
    mantissas, exponents = np.frexp(values)
    integers = (mantissas * _MANTISSA_SCALE).astype(np.int64)
    # value = integer * 2**(exponent - 53), so in 2**-1074 units the shift is
    # exponent - 53 + 1074.  Subnormals give shifts as low as -52; their
    # mantissa integers are divisible by the deficit, so the right-shift
    # below is exact.
    shifts = exponents.astype(np.int64) + (SCALE_BITS - 53)
    order = np.argsort(shifts, kind="stable")
    integers = integers[order]
    shifts = shifts[order]
    group_starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(shifts)) + 1, [shifts.shape[0]]]
    )
    starts: List[int] = []
    for index in range(group_starts.shape[0] - 1):
        starts.extend(range(int(group_starts[index]),
                            int(group_starts[index + 1]), _SEGMENT))
    segment_sums = np.add.reduceat(integers, np.asarray(starts, dtype=np.int64))
    total = 0
    for start, segment in zip(starts, segment_sums):
        shift = int(shifts[start])
        value = int(segment)
        total += value << shift if shift >= 0 else value >> -shift
    return total


def fixed_point_column_partials(
    matrix,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-column exact fixed-point partials as ``(limb, shift, column)``
    int64 arrays.

    Entry ``i`` contributes ``limbs[i] * 2**shifts[i]`` (in
    ``2**-SCALE_BITS`` units) to column ``columns[i]``'s total; folding a
    column's entries with exact integer arithmetic
    (:func:`merge_column_partials`) yields the identical canonical total as
    :func:`fixed_point_sum` of that column.  Unlike the big-int partials,
    these are fixed-width integer arrays — cheap to pickle across the
    sharded backend's process boundary and producible by the compiled
    kernel (:func:`repro.kernels.fixed_point_column_partials`, to which
    this validated wrapper dispatches).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {matrix.shape}")
    if matrix.size and not np.all(np.isfinite(matrix)):
        raise ValueError("exact summation requires finite values")
    return kernels.fixed_point_column_partials(matrix)


def merge_column_partials(num_columns: int, partials: Iterable) -> List[int]:
    """Fold ``(limbs, shifts, columns)`` partials into per-column exact
    big-int totals.

    Integer addition is exact and associative, so the totals are independent
    of how the rows were partitioned across partials, of each partial's
    internal decomposition (reference and native kernels emit different but
    equivalent ones), and of the fold order.  Negative shifts only arise
    from subnormal limbs, whose mantissa integers are divisible by the
    deficit — the right-shift is exact (same argument as
    :func:`fixed_point_sum`).
    """
    totals = [0] * int(num_columns)
    for limbs, shifts, columns in partials:
        for limb, shift, column in zip(np.asarray(limbs).tolist(),
                                       np.asarray(shifts).tolist(),
                                       np.asarray(columns).tolist()):
            totals[column] += limb << shift if shift >= 0 else limb >> -shift
    return totals


def fixed_point_column_sums(matrix) -> List[int]:
    """Per-column :func:`fixed_point_sum` of a ``(q, k)`` matrix.

    Empty inputs give ``k`` zeros (``(0, k)``) — the identity partial an
    empty shard contributes.  Routed through the dispatched partials kernel
    (:func:`fixed_point_column_partials`); the fold reconstructs the same
    canonical per-column totals as summing each column directly.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {matrix.shape}")
    return merge_column_partials(
        matrix.shape[1], [fixed_point_column_partials(matrix)]
    )


def merge_fixed_point(partials: Iterable) -> List[int]:
    """Fold per-shard column partials (iterables of ints) by exact integer
    addition.  Associative and order-independent by construction; the sharded
    backend still folds in deterministic shard order so the merge is easy to
    audit."""
    totals: List[int] = []
    for partial in partials:
        if not totals:
            totals = [int(value) for value in partial]
            continue
        if len(partial) != len(totals):
            raise ValueError("column partials have mismatched widths")
        totals = [total + int(value) for total, value in zip(totals, partial)]
    return totals


def fixed_point_to_float(total: int) -> float:
    """The correctly-rounded ``float64`` value of a fixed-point total.

    ``int / int`` true division is correctly rounded in CPython, so this is
    the canonical (partition-independent) rounding of the exact sum.
    """
    try:
        return total / (1 << SCALE_BITS)
    except OverflowError:  # pragma: no cover - astronomically large sums
        return float("inf") if total > 0 else float("-inf")


def exact_column_sums(matrix) -> np.ndarray:
    """Correctly-rounded per-column sums of a ``(q, k)`` float matrix.

    The convenience composition of :func:`fixed_point_column_sums` and
    :func:`fixed_point_to_float`: the value every backend's masked-sum query
    returns, and the value :func:`repro.mechanisms.noisy_average.noisy_average`
    feeds its selected-average — one definition, so the in-parent and
    shard-merged paths cannot drift apart.
    """
    return np.asarray([
        fixed_point_to_float(total)
        for total in fixed_point_column_sums(matrix)
    ], dtype=float)


__all__ = [
    "SCALE_BITS",
    "exact_column_sums",
    "fixed_point_column_partials",
    "fixed_point_column_sums",
    "fixed_point_sum",
    "fixed_point_to_float",
    "merge_column_partials",
    "merge_fixed_point",
]
