"""Iterated logarithm (log*) and the tower function.

The paper's error bounds contain factors of the form ``2^{O(log* |X| d)}`` and
the lower bound (Corollary 5.4) is phrased in terms of the tower function.
These helpers make those quantities explicit so parameter calculators and
experiments can report the exact promise values the theorems require.
"""

from __future__ import annotations

import math


def log_star(value: float, base: float = 2.0) -> int:
    """Iterated logarithm: the number of times ``log`` must be applied to
    ``value`` before the result drops to at most 1.

    ``log_star(x) = 0`` for ``x <= 1``.  For example ``log_star(2) == 1``,
    ``log_star(4) == 2``, ``log_star(16) == 3``, ``log_star(65536) == 4``.

    Parameters
    ----------
    value:
        The argument; may be any real number (values ``<= 1`` give 0).
    base:
        Logarithm base, 2 by default (as in the paper).
    """
    if base <= 1:
        raise ValueError(f"base must exceed 1, got {base}")
    if value <= 1:
        return 0
    count = 0
    current = float(value)
    while current > 1.0:
        current = math.log(current, base)
        count += 1
        if count > 10_000:  # pragma: no cover - defensive
            raise RuntimeError("log_star failed to converge")
    return count


def tower(height: int, base: float = 2.0) -> float:
    """Tower function ``tower(0) = 1`` and ``tower(j) = base ** tower(j-1)``.

    Used in Corollary 5.4: the lower bound applies whenever the approximation
    factor ``w`` is below an exponential tower in ``n``.  Heights above ~5
    overflow a float; ``math.inf`` is returned in that case so callers can
    still compare against it.
    """
    if height < 0:
        raise ValueError(f"height must be non-negative, got {height}")
    result = 1.0
    for _ in range(height):
        try:
            result = base ** result
        except OverflowError:
            return math.inf
        if result == math.inf:
            return math.inf
    return result


def log_star_factor(value: float, base: float = 9.0) -> float:
    """The ``base ** log_star(value)`` factor appearing in Theorem 3.2.

    The paper's bounds use ``9^{log*(2 |X| sqrt(d))}``; this helper computes
    ``base ** log_star(value)`` for any base so parameter calculators can
    report both the paper-faithful and practical variants.
    """
    return float(base) ** log_star(value)


__all__ = ["log_star", "tower", "log_star_factor"]
