"""Argument-validation helpers shared across the library.

All public entry points validate their inputs eagerly and raise ``ValueError``
or ``TypeError`` with actionable messages; internal code can then assume
well-formed arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_points(points, *, dimension: Optional[int] = None,
                 name: str = "points") -> np.ndarray:
    """Coerce ``points`` to a 2-d float array of shape ``(n, d)``.

    A 1-d array of length ``n`` is interpreted as ``n`` points in ``R^1``.

    Parameters
    ----------
    points:
        Array-like collection of points.
    dimension:
        If given, the required dimensionality ``d``.
    name:
        Name used in error messages.
    """
    array = np.asarray(points, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(
            f"{name} must be a 2-d array of shape (n, d); got ndim={array.ndim}"
        )
    if array.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one point")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    if dimension is not None and array.shape[1] != dimension:
        raise ValueError(
            f"{name} must have dimension {dimension}, got {array.shape[1]}"
        )
    return array


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: float, name: str, *,
                      allow_zero: bool = False,
                      allow_one: bool = False) -> float:
    """Validate that ``value`` lies in the (open or half-open) unit interval."""
    value = float(value)
    lower_ok = value > 0 or (allow_zero and value == 0)
    upper_ok = value < 1 or (allow_one and value == 1)
    if not (lower_ok and upper_ok):
        raise ValueError(f"{name} must lie in the unit interval, got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate ``low <= value <= high``."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def check_integer(value, name: str, *, minimum: Optional[int] = None) -> int:
    """Validate that ``value`` is an integer (or integral float)."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"{name} must be an integer, got {value}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be at least {minimum}, got {value}")
    return value


__all__ = [
    "check_points",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_integer",
]
