"""Private outlier screening (paper Section 1.1, "Outlier detection").

Running the 1-cluster solver with ``t ~ 0.9 n`` yields a ball containing most
of the data; the released ball defines a predicate ``h`` that is 1 inside the
ball and 0 outside.  Because the ball is a differentially private release,
``h`` can be used freely (post-processing) — e.g. to restrict a subsequent
private analysis to the inliers, reducing its sensitivity and hence its noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.one_cluster import one_cluster
from repro.core.types import OneClusterResult
from repro.geometry.balls import Ball
from repro.geometry.grid import GridDomain
from repro.neighbors import BackendLike
from repro.utils.rng import RngLike
from repro.utils.validation import check_points, check_probability


@dataclass(frozen=True)
class OutlierScreen:
    """A released screening ball and the predicate it defines.

    Attributes
    ----------
    ball:
        The released ball (``None`` if the underlying 1-cluster call failed).
    result:
        The full :class:`~repro.core.types.OneClusterResult`.
    inlier_fraction_target:
        The fraction of the data the ball was asked to capture.
    """

    ball: Optional[Ball]
    result: OneClusterResult
    inlier_fraction_target: float

    @property
    def found(self) -> bool:
        """Whether a screening ball was released."""
        return self.ball is not None

    def predicate(self, points) -> np.ndarray:
        """The screening predicate ``h``: True for inliers (inside the ball).

        Applying the predicate is pure post-processing of the released ball,
        so it consumes no additional privacy budget.
        """
        points = check_points(points)
        if self.ball is None:
            return np.ones(points.shape[0], dtype=bool)
        return self.ball.contains(points)

    def outlier_mask(self, points) -> np.ndarray:
        """Boolean mask of the *outliers* (points outside the ball).

        Parameters
        ----------
        points:
            ``(n, d)`` points to screen (need not be the training data —
            the predicate is a fixed public function once released).

        Returns
        -------
        numpy.ndarray
            ``(n,)`` boolean mask, ``True`` for outliers.
        """
        return ~self.predicate(points)


def outlier_ball(points, params: PrivacyParams, inlier_fraction: float = 0.9,
                 beta: float = 0.1, radius_mode: str = "effective",
                 radius_factor: float = 2.0,
                 domain: Optional[GridDomain] = None,
                 config: Optional[OneClusterConfig] = None,
                 rng: RngLike = None,
                 ledger: Optional[PrivacyLedger] = None,
                 backend: BackendLike = None) -> OutlierScreen:
    """Release a ball capturing roughly ``inlier_fraction`` of the data.

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    params:
        Privacy budget for the screening call.
    inlier_fraction:
        The fraction of points the ball should capture (``t = fraction * n``).
    beta:
        Failure probability.
    radius_mode:
        ``"guaranteed"`` uses the conservative radius bound returned by the
        solver; ``"effective"`` (default) post-processes the released ball by
        shrinking it to ``radius_factor`` times the GoodRadius radius, which
        gives a far more selective screen (the GoodRadius radius already
        certifies a ball of that scale holding the inliers).
    radius_factor:
        Multiplier applied to the GoodRadius radius in ``"effective"`` mode.
    domain, config, rng, ledger:
        As in :func:`~repro.core.one_cluster.one_cluster`.
    backend:
        Neighbor-backend selection forwarded to the 1-cluster call.  Outlier
        screening is the large-target regime (``t ~ 0.9 n``), where the
        backends automatically switch to the radii-chunked streaming
        ``L(r, S)`` walk — ``O(n * block)`` memory instead of the ``O(n * t)``
        persisted statistic.

    Returns
    -------
    OutlierScreen
        The released ball (or an all-pass screen when the solver abstained)
        and the post-processing predicate it defines.
    """
    points = check_points(points)
    check_probability(inlier_fraction, "inlier_fraction")
    if radius_mode not in ("guaranteed", "effective"):
        raise ValueError("radius_mode must be 'guaranteed' or 'effective'")
    n = points.shape[0]
    target = max(1, int(round(inlier_fraction * n)))
    result = one_cluster(points, target, params, beta=beta, domain=domain,
                         config=config, rng=rng, ledger=ledger, backend=backend)
    if not result.found:
        return OutlierScreen(ball=None, result=result,
                             inlier_fraction_target=inlier_fraction)
    if radius_mode == "guaranteed":
        ball = result.ball
    else:
        # Both the centre and the GoodRadius radius are private releases, so
        # combining them is post-processing.
        radius = radius_factor * max(result.radius_result.radius, 1e-12)
        ball = Ball(center=result.ball.center, radius=radius)
    return OutlierScreen(ball=ball, result=result,
                         inlier_fraction_target=inlier_fraction)


__all__ = ["OutlierScreen", "outlier_ball"]
