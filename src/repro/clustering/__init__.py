"""Downstream applications of the 1-cluster algorithm."""

from repro.clustering.k_cluster import k_cluster, KClusterResult
from repro.clustering.outliers import outlier_ball, OutlierScreen

__all__ = ["k_cluster", "KClusterResult", "outlier_ball", "OutlierScreen"]
