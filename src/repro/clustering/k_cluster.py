"""The k-clustering heuristic of Observation 3.5.

"Our construction could be used as a heuristic for solving a k-clustering-type
problem: letting ``t = n/k``, we can iterate our algorithm ``k`` times and find
a collection of (at most) ``k`` balls that cover most of the data points.
Using composition to argue the overall privacy guarantees, we can have
(roughly) ``k <~ (epsilon n)^{2/3} / d^{1/3}``."

Each iteration runs the 1-cluster solver on a budget of ``epsilon/k`` and then
*removes* the points covered by the released ball before the next iteration.
Removing points based on a released (hence public) ball is post-processing of
that release plus a restriction of the dataset; the overall guarantee follows
from basic composition over the ``k`` private calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.one_cluster import one_cluster
from repro.core.types import OneClusterResult
from repro.geometry.balls import Ball
from repro.geometry.grid import GridDomain
from repro.neighbors import (
    BackendLike,
    NeighborBackend,
    QueryPlan,
    resolve_backend,
)
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_points, check_probability


@dataclass(frozen=True)
class KClusterResult:
    """Outcome of the k-clustering heuristic.

    Attributes
    ----------
    balls:
        The released balls, one per successful iteration (at most ``k``).
    results:
        The per-iteration :class:`~repro.core.types.OneClusterResult` values.
    covered_fraction:
        Non-private diagnostic: the fraction of the *original* points covered
        by the union of the released balls (computed against the coverage
        radius used during the run).
    ball_coverages:
        Non-private diagnostic, populated only when a ``backend`` selection
        was supplied: for each released ball, how many of the *original*
        points lie within it, counted behind the backend (exact squared-space
        counts).  The counting plans are *submitted asynchronously* as each
        ball is released and merged only after the loop — later iterations'
        draws never depend on them, so on a pooled sharded backend they
        overlap the subsequent private runs.  ``None`` when no backend was
        selected.
    """

    balls: List[Ball]
    results: List[OneClusterResult]
    covered_fraction: float
    ball_coverages: Optional[List[int]] = None

    @property
    def num_found(self) -> int:
        """How many iterations released a ball."""
        return len(self.balls)


def k_cluster(points, k: int, params: PrivacyParams, target: Optional[int] = None,
              beta: float = 0.1, coverage_slack: float = 2.0,
              domain: Optional[GridDomain] = None,
              config: Optional[OneClusterConfig] = None,
              rng: RngLike = None,
              ledger: Optional[PrivacyLedger] = None,
              backend: BackendLike = None) -> KClusterResult:
    """Cover the data with (at most) ``k`` balls via iterated 1-cluster calls.

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    k:
        The number of balls / iterations.
    params:
        The *overall* budget; each iteration runs on ``params / k`` (basic
        composition).
    target:
        Per-iteration target cluster size; defaults to ``n // (2k)`` (half the
        equal share, so later iterations still have enough remaining points).
    beta:
        Per-iteration failure probability.
    coverage_slack:
        When removing covered points, the released ball's *measured* radius is
        used: the smallest radius capturing ``target`` remaining points around
        the released centre, multiplied by this slack.  This keeps the
        iteration practical when the guaranteed radius bound is very loose.
    domain, config, rng, ledger:
        As in :func:`~repro.core.one_cluster.one_cluster`.
    backend:
        Neighbor-backend selection forwarded to every iteration.  Pass a name
        or class (not an instance): the point set shrinks between iterations,
        so each call must index its own remaining points.  Each iteration's
        :func:`~repro.core.one_cluster.one_cluster` call builds *and closes*
        its own backend, so with ``"sharded"`` the worker pool and
        shared-memory segment are released before the next iteration starts
        — k iterations hold at most one pool at a time, never k.  (At the
        sizes where sharding pays off the per-iteration pool start-up cost
        is noise.)  When a selection is given, one additional long-lived
        backend over the *original* points serves the per-ball coverage
        diagnostics (``ball_coverages``), whose counting plans are submitted
        asynchronously and overlap the later iterations.  To control the
        sharded worker count, select the backend through ``config`` instead:
        ``OneClusterConfig(neighbor_backend="sharded", neighbor_workers=2)``.

    Returns
    -------
    KClusterResult
    """
    points = check_points(points)
    check_integer(k, "k", minimum=1)
    beta = check_probability(beta, "beta")
    if isinstance(backend, NeighborBackend):
        # Fail eagerly: the point set shrinks between iterations, so a fixed
        # instance would only error mid-run after budget has been spent.
        raise ValueError(
            "k_cluster removes covered points between iterations; pass a "
            "backend name or class, not a prebuilt instance"
        )
    n = points.shape[0]
    if target is None:
        target = max(1, n // (2 * k))
    target = check_integer(target, "target", minimum=1)

    per_round = params.part(1.0 / k)
    rngs = spawn_generators(rng, k)
    remaining = points.copy()
    balls: List[Ball] = []
    results: List[OneClusterResult] = []
    covered_mask = np.zeros(n, dtype=bool)
    original = points

    # Per-ball coverage diagnostics ride *asynchronously submitted* query
    # plans over one long-lived backend indexing the original points: the
    # next iteration only needs the `remaining` set (computed in-line
    # below), never these counts, so each submitted plan overlaps every
    # subsequent private iteration and the futures are merged only after the
    # loop.  Merge order is submission order and the sharded merge is
    # shard-ordered, so the counts are deterministic regardless of how the
    # rounds and the coverage tasks interleave.
    # (The isinstance guard above rejects prebuilt instances, so this
    # resolve always *builds* a backend — it is owned, and closed, here.)
    diagnostics = (resolve_backend(points, backend)
                   if backend is not None else None)
    coverage_futures = []
    try:
        for round_index in range(k):
            if remaining.shape[0] < target:
                break
            result = one_cluster(remaining, target, per_round, beta=beta,
                                 domain=domain, config=config,
                                 rng=rngs[round_index], ledger=ledger,
                                 backend=backend)
            results.append(result)
            if not result.found:
                continue
            # Use the measured radius (post-processing of the released centre
            # and the remaining public iteration state) to decide coverage.
            measured = result.effective_radius(remaining, target=target)
            radius = measured * coverage_slack
            ball = Ball(center=result.ball.center, radius=radius)
            balls.append(ball)
            keep = ~ball.contains(remaining)
            remaining = remaining[keep]
            covered_mask |= ball.contains(original)
            if diagnostics is not None:
                plan = QueryPlan()
                plan.count_within_many(
                    np.asarray([ball.center], dtype=float),
                    np.asarray([ball.radius], dtype=float),
                )
                coverage_futures.append(diagnostics.submit(plan))

        ball_coverages = (
            [int(future.result()[0][0, 0]) for future in coverage_futures]
            if diagnostics is not None else None
        )
    finally:
        if diagnostics is not None:
            close = getattr(diagnostics, "close", None)
            if close is not None:
                close()

    covered_fraction = float(np.count_nonzero(covered_mask)) / n
    return KClusterResult(balls=balls, results=results,
                          covered_fraction=covered_fraction,
                          ball_coverages=ball_coverages)


__all__ = ["KClusterResult", "k_cluster"]
