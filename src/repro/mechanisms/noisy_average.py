"""Algorithm NoisyAVG (paper Algorithm 5, Appendix A).

Privately release the average of the vectors in a multiset that satisfy a
predicate ``g`` with bounded diameter ``Delta_g``.  The L2-sensitivity of the
selected-average map is at most ``4 * Delta_g / (m + 1)`` where ``m`` is the
number of selected vectors, so Gaussian noise with standard deviation
``(8 Delta_g / (epsilon * m_hat)) * sqrt(2 ln(8/delta))`` per coordinate —
where ``m_hat`` is a pessimistic (noisy, down-shifted) estimate of ``m`` —
yields ``(epsilon, delta)``-differential privacy (paper Theorem A.3).

GoodCenter's final step (Algorithm 2, step 11) calls this with the predicate
"lies inside the bounding sphere ``C``", whose diameter is known
*deterministically*, which is exactly why the algorithm intersects ``D`` with
``C`` before averaging.

The selected-set average is computed through the exact fixed-point kernel of
:mod:`repro.utils.exactsum` (correctly-rounded column sums, then one float
division by the count).  That makes the mean *partition-independent*: a
neighbor backend that computed the selected count and the selected sum
shard-side can hand the merged statistics to
:func:`noisy_average_from_stats` and reproduce this module's release — the
same noise draws from the same stream, applied to bitwise the same average —
without the caller ever materialising the selected vectors in one place.

Adopting the exact mean was a deliberate one-time change of the released
*values* at a fixed seed: numpy's ``.mean(axis=0)`` row-fold rounds
differently in the final ulps, and no float accumulation order can be
reproduced from per-shard partials at every shard count — only the
correctly-rounded exact sum is canonical.  The switch moves every release
(here and in the sample-and-aggregate consumers) by at most the last ulp of
the pre-noise average, far below the Gaussian noise floor; all parity
guarantees are forward-looking from this definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.utils.exactsum import exact_column_sums
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer, check_points, check_positive


@dataclass(frozen=True)
class NoisyAverageResult:
    """Outcome of :func:`noisy_average`.

    ``value`` is ``None`` when the mechanism abstained (the noisy selected
    count was non-positive, the ``bottom`` symbol of the paper).
    """

    value: Optional[np.ndarray]
    noisy_count: float
    true_count: int
    sigma: float

    @property
    def found(self) -> bool:
        """Whether an average was actually released."""
        return self.value is not None


def _release(true_count: int, selected_sum: np.ndarray, diameter: float,
             params: PrivacyParams, center: np.ndarray,
             generator) -> NoisyAverageResult:
    """The shared release core of Algorithm 5.

    Consumes the *sufficient statistics* of the selected set — its size and
    the correctly-rounded sum of the re-centred selected vectors — and draws
    the mechanism's two noise variates in the fixed order (Laplace count
    first, then the Gaussian vector).  Both public entry points funnel here,
    so the raw-points and merged-partials paths release bitwise-identical
    values at a fixed seed.
    """
    dimension = center.shape[0]
    # Step 1 of Algorithm 5: pessimistic noisy count.
    noisy_count = (
        true_count
        + generator.laplace(0.0, 2.0 / params.epsilon)
        - (2.0 / params.epsilon) * math.log(2.0 / params.delta)
    )
    if noisy_count <= 0:
        return NoisyAverageResult(value=None, noisy_count=float(noisy_count),
                                  true_count=true_count, sigma=float("inf"))

    # Step 2: Gaussian noise scaled to the pessimistic count.
    sigma = (8.0 * diameter / (params.epsilon * noisy_count)) * math.sqrt(
        2.0 * math.log(8.0 / params.delta)
    )
    if true_count > 0:
        average = selected_sum / true_count
    else:
        # No selected point: the exact average of the empty (re-centred) set
        # is defined as the origin so that the mechanism is total; the noisy
        # count being positive here is a low-probability event.
        average = np.zeros(dimension)
    noise = generator.normal(0.0, sigma, size=dimension)
    value = center + average + noise
    return NoisyAverageResult(value=value, noisy_count=float(noisy_count),
                              true_count=true_count, sigma=float(sigma))


def noisy_average(points: np.ndarray, diameter: float, params: PrivacyParams,
                  predicate: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                  center: Optional[np.ndarray] = None,
                  rng: RngLike = None) -> NoisyAverageResult:
    """Release the noisy average of the points selected by ``predicate``.

    Parameters
    ----------
    points:
        ``(n, d)`` array of candidate vectors.
    diameter:
        A *data-independent* bound ``Delta_g`` on the diameter of the selected
        set (paper Observation A.2 allows a diameter bound around an arbitrary
        centre rather than the origin).
    params:
        Privacy budget; requires ``delta > 0``.
    predicate:
        Vectorised predicate mapping the ``(n, d)`` array to a boolean mask of
        selected rows.  ``None`` selects every row.
    center:
        Optional reference point; selected vectors are re-centred around it
        before averaging (Observation A.2).  Defaults to the origin.
    rng:
        Seed or generator.

    Returns
    -------
    NoisyAverageResult
    """
    points = check_points(points)
    check_positive(diameter, "diameter")
    if params.delta <= 0:
        raise ValueError("NoisyAVG requires delta > 0")
    generator = as_generator(rng)
    dimension = points.shape[1]

    if predicate is None:
        mask = np.ones(points.shape[0], dtype=bool)
    else:
        mask = np.asarray(predicate(points), dtype=bool)
        if mask.shape != (points.shape[0],):
            raise ValueError(
                "predicate must return one boolean per input point; got shape "
                f"{mask.shape} for {points.shape[0]} points"
            )
    selected = points[mask]
    true_count = int(selected.shape[0])
    if center is None:
        center = np.zeros(dimension)
    else:
        center = np.asarray(center, dtype=float).reshape(dimension)
    # The re-centring is elementwise (row-decomposable) and the column sums
    # are exact, so these statistics are bitwise the ones a sharded backend
    # merges — see noisy_average_from_stats.
    selected_sum = exact_column_sums(selected - center[None, :])
    return _release(true_count, selected_sum, diameter, params, center,
                    generator)


def noisy_average_from_stats(true_count: int, selected_sum, diameter: float,
                             params: PrivacyParams, center,
                             rng: RngLike = None) -> NoisyAverageResult:
    """Release the noisy average from precomputed selected-set statistics.

    The partials-consuming entry point behind :func:`noisy_average`, for
    callers whose backend already aggregated the selected set shard-side
    (GoodCenter steps 10–11 via
    :meth:`repro.neighbors.base.ProjectedView.masked_clipped_sum`).  Given
    the statistics :func:`noisy_average` would have computed itself — the
    number of selected vectors and the correctly-rounded exact sum of
    ``selected - center`` — it draws the same two noise variates in the same
    order from the same stream, so the release (found/abstain included) is
    bit-for-bit the raw-points path's.

    Parameters
    ----------
    true_count:
        The exact number of selected vectors ``m``.
    selected_sum:
        ``(d,)`` correctly-rounded sum of the re-centred selected vectors
        (the merge of the backends' exact fixed-point partials).
    diameter:
        Data-independent diameter bound ``Delta_g`` of the selected set.
    params:
        Privacy budget; requires ``delta > 0``.
    center:
        The ``(d,)`` reference point the sum was re-centred around
        (Observation A.2).
    rng:
        Seed or generator; pass the stream :func:`noisy_average` would have
        received.
    """
    check_positive(diameter, "diameter")
    if params.delta <= 0:
        raise ValueError("NoisyAVG requires delta > 0")
    true_count = check_integer(true_count, "true_count", minimum=0)
    center = np.asarray(center, dtype=float).reshape(-1)
    selected_sum = np.asarray(selected_sum, dtype=float).reshape(-1)
    if selected_sum.shape != center.shape:
        raise ValueError(
            f"selected_sum has shape {selected_sum.shape}, expected "
            f"{center.shape}"
        )
    return _release(true_count, selected_sum, diameter, params, center,
                    as_generator(rng))


def noisy_average_error_bound(diameter: float, count: int, dimension: int,
                              params: PrivacyParams, beta: float) -> float:
    """High-probability bound on ``||noise||_2`` added by :func:`noisy_average`.

    With probability at least ``1 - beta`` the noise vector has norm at most
    ``sigma * (sqrt(d) + sqrt(2 ln(1/beta)))`` where ``sigma`` is the
    per-coordinate standard deviation computed with the *exact* count (tests
    use this as a sanity reference; the mechanism itself uses the noisy
    count).
    """
    check_positive(diameter, "diameter")
    if count < 1:
        raise ValueError("count must be at least 1")
    sigma = (8.0 * diameter / (params.epsilon * count)) * math.sqrt(
        2.0 * math.log(8.0 / params.delta)
    )
    return sigma * (math.sqrt(dimension) + math.sqrt(2.0 * math.log(1.0 / beta)))


__all__ = [
    "NoisyAverageResult",
    "noisy_average",
    "noisy_average_error_bound",
    "noisy_average_from_stats",
]
