"""Differential-privacy primitive mechanisms used throughout the library.

These are the substrates the paper builds on (its Section 2 and 4.2):

* :mod:`repro.mechanisms.laplace` — the Laplace mechanism (Theorem 2.3).
* :mod:`repro.mechanisms.gaussian` — the Gaussian mechanism (Theorem 2.4).
* :mod:`repro.mechanisms.exponential` — the exponential mechanism
  (McSherry–Talwar) and report-noisy-max.
* :mod:`repro.mechanisms.above_threshold` — the sparse-vector technique
  (Theorem 4.8).
* :mod:`repro.mechanisms.histogram` — stability-based histogram / "choosing
  mechanism" for point-function release (Theorem 2.5).
* :mod:`repro.mechanisms.noisy_average` — Algorithm NoisyAVG (Appendix A).
"""

from repro.mechanisms.laplace import laplace_mechanism, laplace_noise, laplace_counting_query
from repro.mechanisms.gaussian import gaussian_mechanism, gaussian_sigma
from repro.mechanisms.exponential import exponential_mechanism, report_noisy_max
from repro.mechanisms.above_threshold import AboveThreshold, AboveThresholdResult
from repro.mechanisms.histogram import (
    stable_histogram_choice,
    stable_histogram_choice_from_counts,
    noisy_histogram,
    noisy_histogram_from_counts,
    HistogramChoice,
)
from repro.mechanisms.noisy_average import noisy_average, NoisyAverageResult

__all__ = [
    "laplace_mechanism",
    "laplace_noise",
    "laplace_counting_query",
    "gaussian_mechanism",
    "gaussian_sigma",
    "exponential_mechanism",
    "report_noisy_max",
    "AboveThreshold",
    "AboveThresholdResult",
    "stable_histogram_choice",
    "stable_histogram_choice_from_counts",
    "noisy_histogram",
    "noisy_histogram_from_counts",
    "HistogramChoice",
    "noisy_average",
    "NoisyAverageResult",
]
