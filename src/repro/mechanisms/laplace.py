"""The Laplace mechanism (paper Theorem 2.3, Dwork–McSherry–Nissim–Smith 2006).

Adding ``Lap(sensitivity / epsilon)`` noise to a function of L1-sensitivity
``sensitivity`` preserves ``(epsilon, 0)``-differential privacy.  GoodRadius
uses a single Laplace-noised evaluation of its capped-average score at radius
zero (Algorithm 1, step 2), and several baselines use Laplace counting
queries.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


def laplace_noise(scale: float, size=None, rng: RngLike = None) -> Union[float, np.ndarray]:
    """Sample Laplace noise with the given scale.

    Parameters
    ----------
    scale:
        The Laplace scale parameter ``lambda`` (the density is
        ``exp(-|y| / lambda) / (2 lambda)``).
    size:
        Output shape, or ``None`` for a scalar.
    rng:
        Seed or generator.
    """
    check_positive(scale, "scale")
    generator = as_generator(rng)
    sample = generator.laplace(loc=0.0, scale=scale, size=size)
    if size is None:
        return float(sample)
    return sample


def laplace_mechanism(value, sensitivity: float, params: PrivacyParams,
                      rng: RngLike = None):
    """Release ``value`` (scalar or vector) with Laplace noise.

    Parameters
    ----------
    value:
        The exact query answer (scalar or 1-d array).
    sensitivity:
        The L1-sensitivity of the query.
    params:
        The privacy budget; only ``epsilon`` is consumed (``delta`` is
        ignored — the mechanism is pure DP).
    rng:
        Seed or generator.

    Returns
    -------
    float or numpy.ndarray
        The noisy answer, same shape as ``value``.
    """
    check_positive(sensitivity, "sensitivity")
    scale = sensitivity / params.epsilon
    array = np.asarray(value, dtype=float)
    noise = laplace_noise(scale, size=array.shape if array.ndim else None, rng=rng)
    if array.ndim == 0:
        return float(array) + float(noise)
    return array + noise


def laplace_counting_query(count: float, params: PrivacyParams,
                           rng: RngLike = None) -> float:
    """Release a counting query (sensitivity 1) with Laplace noise."""
    return float(laplace_mechanism(float(count), 1.0, params, rng=rng))


def laplace_interval_width(scale: float, beta: float) -> float:
    """Width ``w`` such that ``|Lap(scale)| <= w`` with probability ``1-beta``.

    Useful when a caller needs a high-probability bound on the added noise,
    e.g. GoodRadius's early-exit test at radius zero.
    """
    check_positive(scale, "scale")
    check_positive(beta, "beta")
    return scale * float(np.log(1.0 / beta))


__all__ = [
    "laplace_noise",
    "laplace_mechanism",
    "laplace_counting_query",
    "laplace_interval_width",
]
