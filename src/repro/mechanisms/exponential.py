"""The exponential mechanism and report-noisy-max.

The exponential mechanism (McSherry–Talwar 2007, paper reference [14]) selects
a candidate from a finite set with probability proportional to
``exp(epsilon * quality / (2 * sensitivity))``.  It is both a baseline for the
1-cluster problem (Section 1.2, "Exponential mechanism" row of Table 1) and a
building block inside our RecConcave implementation.

Report-noisy-max (adding independent Laplace/Gumbel noise to every score and
returning the argmax) is an alternative selection rule with the same privacy
guarantee; we expose both because noisy-max is numerically more robust when
scores span a huge range.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


def exponential_mechanism(qualities: Sequence[float], params: PrivacyParams,
                          sensitivity: float = 1.0,
                          rng: RngLike = None) -> int:
    """Select an index with probability proportional to
    ``exp(epsilon * quality / (2 * sensitivity))``.

    Parameters
    ----------
    qualities:
        Quality score of each candidate (higher is better).
    params:
        Privacy budget; only ``epsilon`` is consumed.
    sensitivity:
        Sensitivity of the quality function (default 1).
    rng:
        Seed or generator.

    Returns
    -------
    int
        The selected candidate index.
    """
    check_positive(sensitivity, "sensitivity")
    scores = np.asarray(qualities, dtype=float)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("qualities must be a non-empty 1-d sequence")
    if not np.all(np.isfinite(scores)):
        raise ValueError("qualities must be finite")
    generator = as_generator(rng)
    logits = params.epsilon * scores / (2.0 * sensitivity)
    logits = logits - logits.max()  # numerical stabilisation
    weights = np.exp(logits)
    probabilities = weights / weights.sum()
    return int(generator.choice(scores.size, p=probabilities))


def report_noisy_max(qualities: Sequence[float], params: PrivacyParams,
                     sensitivity: float = 1.0,
                     rng: RngLike = None) -> int:
    """Report-noisy-max with exponential (Gumbel-equivalent) noise.

    Adds i.i.d. ``Gumbel(2 * sensitivity / epsilon)`` noise to each score and
    returns the argmax, which is distributionally identical to the exponential
    mechanism but avoids computing a softmax over possibly huge score ranges.
    """
    check_positive(sensitivity, "sensitivity")
    scores = np.asarray(qualities, dtype=float)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("qualities must be a non-empty 1-d sequence")
    generator = as_generator(rng)
    scale = 2.0 * sensitivity / params.epsilon
    noise = generator.gumbel(loc=0.0, scale=scale, size=scores.size)
    return int(np.argmax(scores + noise))


def exponential_mechanism_utility_bound(num_candidates: int, params: PrivacyParams,
                                        sensitivity: float, beta: float) -> float:
    """The classical utility bound of the exponential mechanism.

    With probability at least ``1 - beta`` the selected candidate's quality is
    within ``(2 * sensitivity / epsilon) * ln(|F| / beta)`` of the optimum.
    Used by Table 1 analysis and by tests as a sanity reference.
    """
    if num_candidates < 1:
        raise ValueError("num_candidates must be at least 1")
    check_positive(beta, "beta")
    return (2.0 * sensitivity / params.epsilon) * float(np.log(num_candidates / beta))


__all__ = [
    "exponential_mechanism",
    "report_noisy_max",
    "exponential_mechanism_utility_bound",
]
