"""Stability-based histogram and the "choosing mechanism" (paper Theorem 2.5).

Given a database and a partition of the data universe into (possibly
infinitely many) cells, the task is to privately identify a cell containing
approximately the maximum number of database elements.  The standard
stability-based construction adds Laplace noise only to *occupied* cells and
suppresses any cell whose noisy count falls below a threshold of order
``(1/epsilon) * log(1/delta)``; because unoccupied cells are never released,
the mechanism works even when the number of cells is unbounded, at the cost of
a ``delta`` failure probability.

GoodCenter uses this mechanism twice: once to pick the "heavy" box of the
randomly-shifted partition of the JL-projected space (Algorithm 2, step 7) and
once per rotated axis to pick a heavy interval (step 9c).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Sequence

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.utils.rng import RngLike, as_generator


@dataclass(frozen=True)
class HistogramChoice:
    """Result of a stability-based histogram selection."""

    key: Optional[Hashable]
    noisy_count: float
    true_count: int

    @property
    def found(self) -> bool:
        """Whether a cell was released at all."""
        return self.key is not None


def _count_cells(labels: Iterable[Hashable]) -> Counter:
    counter: Counter = Counter()
    for label in labels:
        counter[label] += 1
    return counter


def release_threshold(params: PrivacyParams, beta: float = 0.05,
                      num_elements: int = 1) -> float:
    """The suppression threshold guaranteeing ``(epsilon, delta)``-DP.

    The classical analysis requires suppressing cells whose noisy count is
    below ``1 + (2/epsilon) * log(2/delta)``; the paper's Theorem 2.5 states
    the resulting utility as: if the max cell has ``T >= (2/epsilon) *
    log(4 n / (beta delta))`` elements then with probability ``1 - beta`` a
    cell with at least ``T - (4/epsilon) log(2 n / beta)`` elements is
    returned.
    """
    if params.delta <= 0:
        raise ValueError("stability-based histogram requires delta > 0")
    return 1.0 + (2.0 / params.epsilon) * math.log(2.0 / params.delta)


def noisy_histogram_from_counts(cells: Sequence, params: PrivacyParams,
                                rng: RngLike = None) -> Dict[Hashable, float]:
    """Stability-based noisy histogram from precomputed ``(key, count)`` cells.

    The counts-level entry point behind :func:`noisy_histogram`, for callers
    that already hold the occupied-cell histogram (e.g. a neighbor-backend
    :class:`~repro.neighbors.base.ProjectedView` whose shards counted the
    cells).  One ``Lap(2/epsilon)`` variate is drawn per cell **in the order
    the cells are given**; passing the cells in first-occurrence order of the
    underlying label sequence therefore reproduces the label-level path's
    noise draws bit for bit (a ``Counter`` iterates in exactly that order).

    Parameters
    ----------
    cells:
        Iterable of ``(key, count)`` pairs, one per occupied cell, keys
        unique.
    params:
        Privacy budget; requires ``delta > 0``.
    rng:
        Seed or generator.
    """
    generator = as_generator(rng)
    threshold = release_threshold(params)
    released: Dict[Hashable, float] = {}
    for key, count in cells:
        noisy = count + generator.laplace(0.0, 2.0 / params.epsilon)
        if noisy >= threshold:
            released[key] = noisy
    return released


def noisy_histogram(labels: Sequence[Hashable], params: PrivacyParams,
                    rng: RngLike = None) -> Dict[Hashable, float]:
    """Release a stability-based noisy histogram over the occupied cells.

    Every occupied cell receives ``Lap(2/epsilon)`` noise; cells whose noisy
    count falls below :func:`release_threshold` are suppressed (not present in
    the returned dict).  The result is ``(epsilon, delta)``-differentially
    private for any partition, including partitions with infinitely many
    cells.
    """
    counts = _count_cells(labels)
    return noisy_histogram_from_counts(counts.items(), params, rng=rng)


def stable_histogram_choice_from_counts(cells: Sequence,
                                        params: PrivacyParams,
                                        rng: RngLike = None) -> HistogramChoice:
    """The choosing mechanism over precomputed ``(key, count)`` cells.

    Identical to :func:`stable_histogram_choice` given the cells in
    first-occurrence order of the label sequence — same noise draws, same
    released key, bit for bit (see :func:`noisy_histogram_from_counts`).
    This is how GoodCenter's backend-batched box and axis-interval choices
    stay on the exact release distribution of the serial path.

    Parameters
    ----------
    cells:
        Iterable of ``(key, count)`` pairs, one per occupied cell, keys
        unique; the noise-draw order.
    params:
        Privacy budget; requires ``delta > 0``.
    rng:
        Seed or generator.
    """
    cells = list(cells)
    released = noisy_histogram_from_counts(cells, params, rng=rng)
    if not released:
        return HistogramChoice(key=None, noisy_count=0.0, true_count=0)
    best_key = max(released, key=lambda key: released[key])
    counts = dict(cells)
    return HistogramChoice(
        key=best_key,
        noisy_count=float(released[best_key]),
        true_count=int(counts[best_key]),
    )


def stable_histogram_choice(labels: Sequence[Hashable], params: PrivacyParams,
                            rng: RngLike = None) -> HistogramChoice:
    """Privately choose (approximately) the most populated cell.

    This is the "choosing mechanism" of paper Theorem 2.5.  Returns a
    :class:`HistogramChoice` whose ``key`` is ``None`` when every noisy count
    fell below the release threshold (which, per the theorem, only happens
    with probability ``beta`` when the max cell holds at least
    ``(2/epsilon) log(4 n / (beta delta))`` elements).

    Parameters
    ----------
    labels:
        The cell label of each database element.  Elements mapping to the
        same label are in the same cell.
    params:
        Privacy budget; requires ``delta > 0``.
    rng:
        Seed or generator.
    """
    counts = _count_cells(labels)
    return stable_histogram_choice_from_counts(counts.items(), params,
                                               rng=rng)


def choosing_mechanism_requirement(params: PrivacyParams, beta: float,
                                   num_elements: int) -> float:
    """The minimum max-cell count required by Theorem 2.5.

    ``T >= (2/epsilon) * log(4 n / (beta delta))`` guarantees that with
    probability at least ``1 - beta`` the mechanism returns a cell containing
    at least ``T - (4/epsilon) * log(2 n / beta)`` elements.
    """
    if params.delta <= 0:
        raise ValueError("choosing mechanism requires delta > 0")
    if not (0 < beta < 1):
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    return (2.0 / params.epsilon) * math.log(4.0 * num_elements / (beta * params.delta))


def choosing_mechanism_loss(params: PrivacyParams, beta: float,
                            num_elements: int) -> float:
    """The additive loss guaranteed by Theorem 2.5 (see above)."""
    if not (0 < beta < 1):
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    return (4.0 / params.epsilon) * math.log(2.0 * num_elements / beta)


def bucketize(values: np.ndarray, width: float, offset: float = 0.0) -> np.ndarray:
    """Map scalar values to integer bucket indices of a shifted uniform grid.

    ``bucket(v) = floor((v - offset) / width)``.  Used for building the
    partition labels fed to :func:`stable_histogram_choice`.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    values = np.asarray(values, dtype=float)
    return np.floor((values - offset) / width).astype(np.int64)


__all__ = [
    "HistogramChoice",
    "noisy_histogram",
    "noisy_histogram_from_counts",
    "stable_histogram_choice",
    "stable_histogram_choice_from_counts",
    "release_threshold",
    "choosing_mechanism_requirement",
    "choosing_mechanism_loss",
    "bucketize",
]
