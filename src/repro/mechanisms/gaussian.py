"""The Gaussian mechanism (paper Theorem 2.4, Dwork et al. 2006).

Adding ``N(0, sigma^2)`` noise per coordinate, with
``sigma >= (sensitivity / epsilon) * sqrt(2 ln(1.25/delta))``, to a function
of L2-sensitivity ``sensitivity`` preserves ``(epsilon, delta)``-DP.
GoodCenter's final step releases the noisy average of the located cluster with
this mechanism (via :mod:`repro.mechanisms.noisy_average`).
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_positive


def gaussian_sigma(sensitivity: float, params: PrivacyParams) -> float:
    """The standard deviation required by Theorem 2.4.

    ``sigma = (sensitivity / epsilon) * sqrt(2 ln(1.25 / delta))``.

    Raises
    ------
    ValueError
        If ``params.delta == 0`` (the Gaussian mechanism needs ``delta > 0``)
        or ``params.epsilon >= 1`` is violated is *not* enforced here; the
        classical analysis assumes ``epsilon < 1`` but the formula remains a
        valid (slightly loose) choice for moderately larger epsilon, so we
        only require positivity.
    """
    check_positive(sensitivity, "sensitivity")
    if params.delta <= 0:
        raise ValueError("the Gaussian mechanism requires delta > 0")
    return (sensitivity / params.epsilon) * math.sqrt(2.0 * math.log(1.25 / params.delta))


def gaussian_mechanism(value, sensitivity: float, params: PrivacyParams,
                       rng: RngLike = None) -> Union[float, np.ndarray]:
    """Release ``value`` (scalar or array) with Gaussian noise per coordinate.

    Parameters
    ----------
    value:
        Exact answer (scalar or array).
    sensitivity:
        L2-sensitivity of the query.
    params:
        Privacy budget; requires ``delta > 0``.
    rng:
        Seed or generator.
    """
    sigma = gaussian_sigma(sensitivity, params)
    generator = as_generator(rng)
    array = np.asarray(value, dtype=float)
    noise = generator.normal(0.0, sigma, size=array.shape if array.ndim else None)
    if array.ndim == 0:
        return float(array) + float(noise)
    return array + noise


def gaussian_tail_bound(sigma: float, beta: float) -> float:
    """A bound ``b`` with ``Pr[|N(0, sigma^2)| > b] <= beta``.

    Uses the standard sub-Gaussian tail ``b = sigma * sqrt(2 ln(2/beta))``.
    The utility analysis of GoodCenter (Lemma 4.12) uses per-coordinate tail
    bounds of exactly this form.
    """
    check_positive(sigma, "sigma")
    check_positive(beta, "beta")
    return sigma * math.sqrt(2.0 * math.log(2.0 / beta))


__all__ = ["gaussian_sigma", "gaussian_mechanism", "gaussian_tail_bound"]
