"""The sparse-vector technique: algorithm AboveThreshold (paper Theorem 4.8).

A data curator holding a database receives a stream of sensitivity-1 queries
and, per instantiation, answers ``below`` (``False``) until the first query
whose noisy value exceeds a noisy threshold, at which point it answers
``above`` (``True``) and halts.  Only that single positive answer is paid for
in the privacy budget regardless of how many negative answers preceded it.

GoodCenter (Algorithm 2, steps 2–6) instantiates AboveThreshold once and
feeds it up to ``2 n log(1/beta) / beta`` queries of the form "the maximum
number of projected points falling in one cell of this randomly shifted box
partition", stopping at the first partition that captures the cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.accounting.params import PrivacyParams
from repro.utils.rng import RngLike, as_generator


@dataclass(frozen=True)
class AboveThresholdResult:
    """Outcome of a single query to :class:`AboveThreshold`."""

    above: bool
    query_index: int


class AboveThreshold:
    """Streaming sparse-vector mechanism.

    Parameters
    ----------
    threshold:
        The (non-private) threshold the queries are compared against.
    params:
        The privacy budget for the whole instantiation.  The classical
        analysis splits ``epsilon`` in half: ``epsilon/2`` for the threshold
        noise and ``epsilon/2`` for the per-query noise.
    max_queries:
        Upper bound on the number of queries that will be asked.  Only used
        for the high-probability accuracy bound, not for privacy.
    rng:
        Seed or generator.

    Notes
    -----
    The mechanism is ``(epsilon, 0)``-differentially private regardless of the
    number of (sensitivity-1) queries asked, *provided* the caller stops after
    the first ``above`` answer.  :meth:`query` raises ``RuntimeError`` if
    called after the mechanism halted, so accidental reuse is loud.
    """

    def __init__(self, threshold: float, params: PrivacyParams,
                 max_queries: int = 1, rng: RngLike = None) -> None:
        if max_queries < 1:
            raise ValueError(f"max_queries must be at least 1, got {max_queries}")
        self._threshold = float(threshold)
        self._params = params
        self._max_queries = int(max_queries)
        self._rng = as_generator(rng)
        self._epsilon_threshold = params.epsilon / 2.0
        self._epsilon_queries = params.epsilon / 2.0
        self._noisy_threshold = self._threshold + self._rng.laplace(
            0.0, 2.0 / self._epsilon_threshold
        )
        self._halted = False
        self._queries_asked = 0

    @property
    def halted(self) -> bool:
        """Whether the mechanism already produced an ``above`` answer."""
        return self._halted

    @property
    def queries_asked(self) -> int:
        """The number of queries answered so far."""
        return self._queries_asked

    def query(self, value: float) -> AboveThresholdResult:
        """Ask one sensitivity-1 query with exact value ``value``.

        Returns
        -------
        AboveThresholdResult
            ``above=True`` if the noisy value exceeded the noisy threshold,
            in which case the mechanism halts.
        """
        if self._halted:
            raise RuntimeError(
                "AboveThreshold has already answered 'above'; instantiate a "
                "new mechanism (and pay fresh privacy budget) to continue"
            )
        index = self._queries_asked
        self._queries_asked += 1
        noisy_value = float(value) + self._rng.laplace(0.0, 4.0 / self._epsilon_queries)
        above = noisy_value >= self._noisy_threshold
        if above:
            self._halted = True
        return AboveThresholdResult(above=above, query_index=index)

    def accuracy_bound(self, beta: float) -> float:
        """High-probability accuracy ``alpha`` of Theorem 4.8.

        With probability at least ``1 - beta``, every ``above`` answer has
        true value at least ``threshold - alpha`` and every ``below`` answer
        has true value at most ``threshold + alpha``, where
        ``alpha = (8 / epsilon) * log(2 * max_queries / beta)``.
        """
        if not (0 < beta < 1):
            raise ValueError(f"beta must lie in (0, 1), got {beta}")
        return (8.0 / self._params.epsilon) * math.log(2.0 * self._max_queries / beta)


def sparse_vector_first_above(values, threshold: float, params: PrivacyParams,
                              rng: RngLike = None) -> Optional[int]:
    """Convenience wrapper: index of the first value flagged above threshold.

    Runs :class:`AboveThreshold` over the finite sequence ``values`` and
    returns the index of the first ``above`` answer, or ``None`` if all
    queries were answered ``below``.
    """
    values = list(values)
    mechanism = AboveThreshold(threshold, params, max_queries=max(len(values), 1), rng=rng)
    for index, value in enumerate(values):
        if mechanism.query(value).above:
            return index
    return None


__all__ = ["AboveThreshold", "AboveThresholdResult", "sparse_vector_first_above"]
