"""The paper's primary contribution: private location of a small cluster.

* :func:`~repro.core.good_radius.good_radius` — Algorithm 1 (GoodRadius).
* :func:`~repro.core.good_center.good_center` — Algorithm 2 (GoodCenter).
* :func:`~repro.core.one_cluster.one_cluster` — the combined solver of
  Theorem 3.2 (GoodRadius then GoodCenter on a split budget).
"""

from repro.core.types import (
    GoodRadiusResult,
    GoodCenterResult,
    OneClusterResult,
)
from repro.core.config import GoodCenterConfig, OneClusterConfig
from repro.core.params import (
    minimum_cluster_size,
    additive_loss_bound,
    good_radius_gamma,
    radius_approximation_factor,
)
from repro.core.good_radius import good_radius, RadiusScore
from repro.core.good_center import good_center
from repro.core.one_cluster import one_cluster

__all__ = [
    "GoodRadiusResult",
    "GoodCenterResult",
    "OneClusterResult",
    "GoodCenterConfig",
    "OneClusterConfig",
    "minimum_cluster_size",
    "additive_loss_bound",
    "good_radius_gamma",
    "radius_approximation_factor",
    "good_radius",
    "RadiusScore",
    "good_center",
    "one_cluster",
]
