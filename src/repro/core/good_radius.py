"""Algorithm GoodRadius (paper Algorithm 1, Lemma 3.6).

Given a database ``S`` of ``n`` points and a target cluster size ``t``,
privately output a radius ``z`` such that (w.h.p.) some ball of radius ``z``
contains at least ``t - O(Gamma)`` input points and ``z <= 4 r_opt``.

The algorithm:

1. Computes the sensitivity-2 capped-average score ``L(r, S)`` through the
   pluggable :mod:`repro.neighbors` backend layer (see :class:`RadiusScore`).
2. Early-exits with radius 0 if a Laplace-noised ``L(0, S)`` is already close
   to ``t`` (a cluster of identical points).
3. Otherwise defines the sensitivity-1, quasi-concave quality
   ``Q(r, S) = 1/2 * min(t - L(r/2, S), L(r, S) - t + 4 Gamma)``
   and hands it to a private quasi-concave solver (RecConcave by default,
   noisy binary search as an alternative) over the grid of candidate radii.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.params import good_radius_gamma
from repro.core.types import GoodRadiusResult
from repro.geometry.grid import GridDomain
from repro.mechanisms.laplace import laplace_noise
from repro.neighbors import (
    BackendLike,
    NeighborBackend,
    QueryPlan,
    resolve_backend,
)
from repro.quasiconcave.binary_search import noisy_binary_search
from repro.quasiconcave.quality import CallableQuality
from repro.quasiconcave.rec_concave import practical_promise, rec_concave
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_points, check_probability


class RadiusScore:
    """Evaluator of the capped-average score ``L(r, S)``.

    A thin wrapper over a :class:`~repro.neighbors.NeighborBackend`: the
    backend owns the distance computation strategy (dense matrix, blocked,
    KD-tree, or a shard-per-process pool), caches the per-point
    truncated-distance statistic — switching to the radii-chunked streaming
    walk for large targets, where nothing is persisted — and batches whole
    radius grids in one call.  The evaluator therefore never materialises an
    ``(n, n)`` matrix unless the dense backend was explicitly chosen (or
    selected automatically at small ``n``).

    Parameters
    ----------
    points:
        ``(n, d)`` input database.
    target:
        The target cluster size ``t`` (also the count cap); ``1 <= t <= n``.
    backend:
        Neighbor-backend selection (name, class, instance, or ``None`` for
        automatic); see :func:`repro.neighbors.resolve_backend`.
    backend_options:
        Constructor options applied when the backend is built here (e.g.
        ``{"num_workers": 4}`` for ``backend="sharded"``).
    """

    def __init__(self, points: np.ndarray, target: int,
                 backend: BackendLike = None,
                 backend_options: Optional[dict] = None) -> None:
        points = check_points(points)
        self._n = points.shape[0]
        self._target = check_integer(target, "target", minimum=1)
        if self._target > self._n:
            raise ValueError(
                f"target ({target}) cannot exceed the number of points ({self._n})"
            )
        self._backend = resolve_backend(points, backend,
                                        options=backend_options)

    @property
    def num_points(self) -> int:
        """The database size ``n``."""
        return self._n

    @property
    def target(self) -> int:
        """The target cluster size ``t`` (also the cap)."""
        return self._target

    @property
    def backend(self) -> NeighborBackend:
        """The neighbor backend answering the distance queries."""
        return self._backend

    def evaluate(self, radii) -> np.ndarray:
        """``L(r, S)`` for every radius in ``radii`` (Algorithm 1, step 1).

        The whole grid rides one single-query
        :class:`~repro.neighbors.QueryPlan` — bitwise the direct
        ``capped_average_scores`` call (the plan layer changes transport
        only), but the batch now shares the backends' plan submission and
        fan-out instrumentation path.

        Parameters
        ----------
        radii:
            Scalar or ``(m,)`` array of radii; negative radii give score 0.

        Returns
        -------
        numpy.ndarray
            ``(m,)`` float scores in the order supplied, evaluated in one
            batched backend call (one merge-walk / streaming pass for the
            whole grid).
        """
        return self.submit(radii).result()[0]

    def submit(self, radii):
        """Submit a score-profile batch as a plan.

        Returns a :class:`~repro.neighbors.PlanFuture` whose ``result()``
        holds ``[scores]``, bitwise identical to :meth:`evaluate`.  Note
        that ``capped_average_scores`` is a *coordinator* plan operation —
        its merge-walk / streaming evaluation runs before ``submit``
        returns, on every backend — so this is the uniform plan-carriage
        form of the batch (instrumentation, future-based hand-over), not a
        way to overlap two profile evaluations.
        """
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        plan = QueryPlan()
        plan.capped_average_scores(radii, self._target)
        return self._backend.submit(plan)

    def evaluate_single(self, radius: float) -> float:
        """``L(radius, S)`` for one radius (see :meth:`evaluate`)."""
        return float(self.evaluate(np.array([radius]))[0])


def _resolve_domain(points: np.ndarray, domain: Optional[GridDomain],
                    grid_side: int) -> GridDomain:
    """Use the supplied domain, or quantise the data's bounding box."""
    if domain is not None:
        if domain.dimension != points.shape[1]:
            raise ValueError(
                f"domain dimension {domain.dimension} does not match data "
                f"dimension {points.shape[1]}"
            )
        return domain
    low = float(np.floor(points.min()))
    high = float(np.ceil(points.max()))
    if high <= low:
        high = low + 1.0
    return GridDomain(dimension=points.shape[1], side=grid_side, low=low, high=high)


def good_radius(points, target: int, params: PrivacyParams, beta: float = 0.1,
                domain: Optional[GridDomain] = None,
                config: Optional[OneClusterConfig] = None,
                rng: RngLike = None,
                ledger: Optional[PrivacyLedger] = None,
                backend: BackendLike = None) -> GoodRadiusResult:
    """Privately approximate the radius of the smallest ball with ``target`` points.

    Parameters
    ----------
    points:
        ``(n, d)`` input database.
    target:
        Desired cluster size ``t`` (``1 <= t <= n``).
    params:
        Overall ``(epsilon, delta)`` budget of the call; split internally as
        ``epsilon/2`` for the zero-radius test and ``epsilon/2`` for the
        quasi-concave search, exactly as in the paper's privacy analysis
        (Lemma 4.5).
    beta:
        Failure probability.
    domain:
        The finite grid domain ``X^d``.  When omitted, the data's bounding box
        is quantised with ``config.grid_side`` points per axis.
    config:
        Solver configuration (radius method, paper vs practical constants).
    rng:
        Seed or generator.
    ledger:
        Optional privacy ledger to record sub-mechanism spends.
    backend:
        Neighbor-backend selection (name, class, or instance) for the ``L``
        evaluations; overrides ``config.neighbor_backend`` when supplied.
        Backend choice affects performance only — all backends return
        identical scores, so the released radius distribution is unchanged.

    Returns
    -------
    GoodRadiusResult
    """
    points = check_points(points)
    target = check_integer(target, "target", minimum=1)
    beta = check_probability(beta, "beta")
    if config is None:
        config = OneClusterConfig()
    if params.delta <= 0:
        raise ValueError("good_radius requires delta > 0 (RecConcave and Gamma need it)")

    domain = _resolve_domain(points, domain, config.grid_side)
    backend_options = None
    if backend is None:
        backend = config.neighbor_backend
        backend_options = config.neighbor_backend_options() or None
    score = RadiusScore(points, target, backend=backend,
                        backend_options=backend_options)
    laplace_rng, search_rng = spawn_generators(rng, 2)

    half = params.part(0.5)
    candidate_radii = domain.candidate_radii()
    solution_count = candidate_radii.shape[0]

    if config.paper_constants:
        gamma = good_radius_gamma(domain, params, beta)
    else:
        # Practical promise: the high-probability selection error of the
        # noisy-max based search (sensitivity-1 quality, budget epsilon/2),
        # i.e. O((1/epsilon) log(|F|/beta)).  The paper-faithful Gamma with
        # its 8^{log*} factor is available via config.paper_constants.
        gamma = (2.0 / half.epsilon) * math.log(4.0 * solution_count / beta)

    # ------------------------------------------------------------------ #
    # Step 2: zero-radius early exit.  Skipped (deterministically, based on
    # public parameters only) when the test threshold is non-positive, i.e.
    # when t <= 2 Gamma and the test could never be meaningful.
    # ------------------------------------------------------------------ #
    score_at_zero = score.evaluate_single(0.0)
    threshold_zero = target - 2.0 * gamma - (4.0 / params.epsilon) * math.log(2.0 / beta)
    if threshold_zero > 0:
        noisy_zero = score_at_zero + laplace_noise(4.0 / params.epsilon, rng=laplace_rng)
        if ledger is not None:
            ledger.record("laplace", half, note="GoodRadius zero-radius test")
        if noisy_zero > threshold_zero:
            return GoodRadiusResult(radius=0.0, gamma=gamma, score=score_at_zero,
                                    zero_cluster=True, method=config.radius_method)

    # ------------------------------------------------------------------ #
    # Steps 3-4: quasi-concave search over candidate radii.
    # ------------------------------------------------------------------ #
    def batch_quality(indices: np.ndarray) -> np.ndarray:
        radii = candidate_radii[indices]
        # One fused backend call for L(r) and L(r/2), riding a single-query
        # plan (RadiusScore.evaluate): each radius is scored independently
        # inside the profile walk, so batching never changes a value — it
        # halves the merge-walk passes (and, for the sharded backend, the
        # per-shard round trips).
        values = score.evaluate(np.concatenate([radii, radii / 2.0]))
        values_at_r = values[:radii.shape[0]]
        values_at_half = values[radii.shape[0]:]
        return 0.5 * np.minimum(
            target - values_at_half,
            values_at_r - target + 4.0 * gamma,
        )

    quality = CallableQuality(
        function=lambda index: float(batch_quality(np.array([index]))[0]),
        size=solution_count,
        batch_function=batch_quality,
    )

    if config.radius_method == "binary_search":
        # Monotone search for the smallest radius with L(r) >= t - 2 Gamma.
        monotone = CallableQuality(
            function=lambda index: score.evaluate_single(float(candidate_radii[index])),
            size=solution_count,
            batch_function=lambda indices: score.evaluate(candidate_radii[indices]),
        )
        search = noisy_binary_search(
            monotone, threshold=target - 2.0 * gamma, params=half,
            sensitivity=2.0, rng=search_rng,
        )
        index = search.index
    else:
        result = rec_concave(quality, promise=gamma, alpha=0.5, params=half,
                             rng=search_rng)
        index = result.index
    if ledger is not None:
        ledger.record(config.radius_method, half, note="GoodRadius radius search")

    radius = float(candidate_radii[index])
    return GoodRadiusResult(
        radius=radius,
        gamma=gamma,
        score=score.evaluate_single(radius),
        zero_cluster=False,
        method=config.radius_method,
    )


__all__ = ["RadiusScore", "good_radius"]
