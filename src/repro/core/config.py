"""Configuration objects for GoodCenter and the combined solver.

The paper's analysis uses large worst-case constants (boxes of side ``300 r``,
JL dimension ``46 log(2n/beta)``, bounding spheres of radius
``2700 r sqrt(k ln(dn/beta))``, ...).  Running with those constants is
supported (:meth:`GoodCenterConfig.paper`) but produces astronomically
conservative radii at laptop scale, so the default configuration
(:meth:`GoodCenterConfig.practical`) keeps the identical algorithmic structure
while choosing the multipliers adaptively (e.g. the box width is sized so that
one randomly-shifted partition captures the projected cluster with a fixed
target probability, instead of the fixed factor 300).  DESIGN.md documents
this substitution; the experiments report results under the practical
configuration and verify that the *shape* of the guarantees
(``w = O(sqrt(log n))``, ``Delta = O(log n / epsilon)``) holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class GoodCenterConfig:
    """Tunable constants of Algorithm GoodCenter.

    Attributes
    ----------
    jl_constant:
        ``k = ceil(jl_constant * ln(2 n / beta))`` is the JL target dimension
        (Algorithm 2, step 1 uses 46); always capped at the ambient dimension,
        and when the cap binds the projection becomes the identity.
    box_width_factor:
        Boxes in the projected space have side ``box_width_factor * r``
        (step 3a uses 300).  ``None`` (the practical default) sizes the boxes
        adaptively from ``capture_probability_target``.
    capture_probability_target:
        When ``box_width_factor is None``, the box side is chosen so that a
        single randomly-shifted partition captures the projected cluster in
        one box with at least this probability.
    projected_radius_factor:
        Upper bound, in units of ``r``, on the radius of the projected
        cluster under a non-trivial JL projection (the paper uses 3: a factor
        ``1 +/- 1/2`` distortion of a radius-``r`` ball).  When the projection
        is the identity the factor 1 is used instead.
    max_attempt_factor:
        The partition loop runs for at most
        ``max_attempt_factor * n * log(1/beta) / beta`` iterations (step 6
        uses 2).
    rotation_spread_constant:
        Multiplier on the Lemma 4.9 spread bound used for the rotated-axis
        interval length (the paper folds this into the 900 constant).
    threshold_slack_constant:
        AboveThreshold is instantiated with threshold
        ``t - threshold_slack_constant / epsilon * log(2 n / beta)`` (step 2
        uses 100).
    budget_split:
        Fractions of the GoodCenter epsilon given to (AboveThreshold, box
        choice, per-axis interval choices, NoisyAVG).  The paper splits
        evenly; the practical default weights the final noisy average most
        heavily because its noise dominates the centre error.
    partition_batch_size:
        How many partition-search attempts GoodCenter precomputes per
        neighbor-backend view request (Algorithm 2, steps 3–6).  ``None``
        (default) defers to the view's own
        :attr:`~repro.neighbors.base.ProjectedView.batch_size` — 1 for
        in-process backends, larger for the sharded backend, whose per-shard
        fan-out the batching amortises.  Ignored when GoodCenter runs
        without a backend (batching buys nothing in-parent).  Pure
        performance: the shift and noise streams are split, so the release
        distribution is identical at any batch size.
    """

    jl_constant: float = 4.0
    box_width_factor: Optional[float] = None
    capture_probability_target: float = 0.01
    projected_radius_factor: float = 3.0
    max_attempt_factor: float = 2.0
    rotation_spread_constant: float = 2.0
    threshold_slack_constant: float = 8.0
    budget_split: tuple = (0.15, 0.15, 0.2, 0.5)
    partition_batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("jl_constant", "capture_probability_target",
                     "projected_radius_factor", "max_attempt_factor",
                     "rotation_spread_constant", "threshold_slack_constant"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.capture_probability_target >= 1:
            raise ValueError("capture_probability_target must be below 1")
        if self.box_width_factor is not None:
            if self.box_width_factor <= 2 * self.projected_radius_factor:
                raise ValueError(
                    "box_width_factor must exceed twice projected_radius_factor, "
                    "otherwise no box can capture the projected cluster"
                )
        if len(self.budget_split) != 4 or any(f <= 0 for f in self.budget_split):
            raise ValueError(
                "budget_split must contain four positive fractions "
                "(AboveThreshold, box choice, per-axis choices, NoisyAVG)"
            )
        if sum(self.budget_split) > 1.0 + 1e-9:
            raise ValueError("budget_split fractions must sum to at most 1")
        if self.partition_batch_size is not None and self.partition_batch_size < 1:
            raise ValueError(
                f"partition_batch_size must be at least 1 or None, got "
                f"{self.partition_batch_size}"
            )

    @classmethod
    def paper(cls) -> "GoodCenterConfig":
        """The constants written in Algorithm 2 of the paper."""
        return cls(
            jl_constant=46.0,
            box_width_factor=300.0,
            projected_radius_factor=3.0,
            max_attempt_factor=2.0,
            rotation_spread_constant=2.0,
            threshold_slack_constant=100.0,
            budget_split=(0.25, 0.25, 0.25, 0.25),
        )

    @classmethod
    def practical(cls) -> "GoodCenterConfig":
        """Defaults suitable for laptop-scale experiments (n ~ 10^3 - 10^4)."""
        return cls()

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def projection_dimension(self, num_points: int, beta: float,
                             ambient_dimension: int = None) -> int:
        """The JL target dimension ``k`` of Algorithm 2, step 1.

        Parameters
        ----------
        num_points:
            The database size ``n``.
        beta:
            The failure probability the projection must survive.
        ambient_dimension:
            When given, ``k`` is capped at it (a square random projection
            gains nothing, so the cap binding means "use the identity").

        Returns
        -------
        int
            ``k = max(1, ceil(jl_constant * ln(2 n / beta)))``, capped.
        """
        k = max(1, int(math.ceil(self.jl_constant * math.log(2.0 * num_points / beta))))
        if ambient_dimension is not None:
            k = min(k, max(1, ambient_dimension))
        return k

    def effective_projected_radius_factor(self, identity_projection: bool) -> float:
        """The projected-cluster radius bound in units of ``r``: 1 under the
        identity map, ``projected_radius_factor`` under a real JL projection."""
        return 1.0 if identity_projection else self.projected_radius_factor

    def box_width(self, radius: float, k: int,
                  identity_projection: bool = False) -> float:
        """The side length of the randomly shifted boxes.

        With an explicit ``box_width_factor`` the paper's fixed multiple of
        ``r`` is used.  Otherwise the width is sized so that the per-axis
        survival probability ``q = 1 - diam/width`` satisfies
        ``q^k >= capture_probability_target``.
        """
        diameter = 2.0 * self.effective_projected_radius_factor(identity_projection) * radius
        if self.box_width_factor is not None:
            return self.box_width_factor * radius
        per_axis = self.capture_probability_target ** (1.0 / max(k, 1))
        return diameter / max(1.0 - per_axis, 1e-9)

    def per_axis_capture_probability(self, radius: float, k: int,
                                     identity_projection: bool = False) -> float:
        """Probability that no axis of the shifted partition splits the
        projected cluster."""
        width = self.box_width(radius, k, identity_projection)
        diameter = 2.0 * self.effective_projected_radius_factor(identity_projection) * radius
        per_axis = max(0.0, 1.0 - diameter / width)
        return per_axis ** k

    def max_attempts(self, num_points: int, beta: float) -> int:
        """The cap on partition attempts (Algorithm 2, step 6).

        Parameters
        ----------
        num_points:
            The database size ``n``.
        beta:
            The per-call failure probability.

        Returns
        -------
        int
            ``ceil(max_attempt_factor * n * log(1/beta) / beta)``, at least 1.
        """
        return max(1, int(math.ceil(
            self.max_attempt_factor * num_points * math.log(1.0 / beta) / beta
        )))

    def selected_set_diameter(self, radius: float, k: int,
                              identity_projection: bool = False) -> float:
        """Deterministic bound on the diameter (in ``R^d``) of the point set
        mapped into one chosen projected box.

        The box has diameter ``width * sqrt(k)`` in the projected space; under
        the identity map that is already a bound in ``R^d``, while a
        ``(1 - 1/2)`` JL lower distortion on squared distances inflates it by
        ``sqrt(2)``.
        """
        width = self.box_width(radius, k, identity_projection)
        factor = 1.0 if identity_projection else math.sqrt(2.0)
        return factor * width * math.sqrt(k)

    def rotated_interval_length(self, radius: float, k: int, dimension: int,
                                num_points: int, beta: float,
                                identity_projection: bool = False) -> float:
        """The per-axis interval length ``p`` of step 9a.

        Lemma 4.9: the projection of a set of diameter ``D`` onto a random
        axis has spread at most ``2 sqrt(ln(d n / beta) / d) * D`` w.h.p.; the
        spread also never exceeds ``D`` deterministically, so the smaller of
        the two is used.
        """
        diameter = self.selected_set_diameter(radius, k, identity_projection)
        relative_spread = min(
            2.0 * math.sqrt(math.log(max(2.0, dimension * num_points / beta)) / dimension),
            1.0,
        )
        return self.rotation_spread_constant * relative_spread * diameter

    def bounding_sphere_radius(self, interval_length: float, dimension: int) -> float:
        """Radius of the ball ``C`` circumscribing the box whose per-axis
        extent is ``3 * interval_length`` (step 10)."""
        return 1.5 * interval_length * math.sqrt(dimension)


@dataclass(frozen=True)
class OneClusterConfig:
    """Configuration of the combined 1-cluster solver.

    Attributes
    ----------
    center:
        The GoodCenter constants.
    radius_method:
        ``"recconcave"`` (default) or ``"binary_search"``.
    paper_constants:
        When true, use the paper's Γ promise in GoodRadius; when false
        (default), use the practical search-error based promise.
    radius_budget_fraction:
        Fraction of the privacy budget given to GoodRadius (the rest goes to
        GoodCenter).  The paper splits evenly; the practical default gives
        GoodCenter the larger share because its final noisy average dominates
        the overall error.
    grid_side:
        The ``|X|`` used when no explicit :class:`~repro.geometry.grid.GridDomain`
        is supplied (the data's bounding box is quantised with this many grid
        points per axis).
    neighbor_backend:
        Which :mod:`repro.neighbors` strategy answers the distance queries:
        ``"auto"`` (default; picks by workload size — dense, then sharded
        above ``SHARDED_MIN_POINTS`` on multi-CPU machines, then tree /
        chunked), ``"dense"``, ``"chunked"``, ``"tree"``, or ``"sharded"``.
        Affects performance only — every backend returns identical counts and
        scores.
    neighbor_workers:
        Worker-process count for ``neighbor_backend="sharded"`` (``0`` forces
        the serial in-process fallback, ``None`` — the default — sizes the
        pool from the CPU count).  For ``neighbor_backend="distributed"``
        this is the per-node worker count instead.  Only consulted for
        those two strategies.
    neighbor_nodes:
        Node-server addresses (``"host:port"`` strings, one
        ``python -m repro.neighbors.serve`` per entry) for
        ``neighbor_backend="distributed"`` — required by, and only
        consulted for, that strategy.
    neighbor_node_retries:
        Re-dial attempts per node failure before the distributed backend
        declares the node dead and hands its shards to the survivors
        (``0`` disables failover: the first transport failure raises).
        ``None`` — the default — keeps the backend's own default.  Only
        consulted for ``neighbor_backend="distributed"``.
    neighbor_node_retry_backoff:
        Base sleep in seconds before re-dial attempt ``i`` (grows as
        ``backoff * 2**i``).  ``None`` keeps the backend's default.  Only
        consulted for ``neighbor_backend="distributed"``.
    """

    center: GoodCenterConfig = field(default_factory=GoodCenterConfig.practical)
    radius_method: str = "recconcave"
    paper_constants: bool = False
    radius_budget_fraction: float = 0.35
    grid_side: int = 1025
    neighbor_backend: str = "auto"
    neighbor_workers: Optional[int] = None
    neighbor_nodes: Optional[Tuple[str, ...]] = None
    neighbor_node_retries: Optional[int] = None
    neighbor_node_retry_backoff: Optional[float] = None

    def __post_init__(self) -> None:
        if self.radius_method not in ("recconcave", "binary_search"):
            raise ValueError(
                "radius_method must be 'recconcave' or 'binary_search', got "
                f"{self.radius_method!r}"
            )
        if not (0 < self.radius_budget_fraction < 1):
            raise ValueError("radius_budget_fraction must lie in (0, 1)")
        if self.grid_side < 2:
            raise ValueError("grid_side must be at least 2")
        from repro.neighbors import BACKENDS, DISTRIBUTED_BACKEND_NAME

        valid = {"auto", DISTRIBUTED_BACKEND_NAME, *BACKENDS}
        if self.neighbor_backend not in valid:
            raise ValueError(
                f"neighbor_backend must be one of {sorted(valid)}, got "
                f"{self.neighbor_backend!r}"
            )
        if self.neighbor_workers is not None and self.neighbor_workers < 0:
            raise ValueError(
                f"neighbor_workers must be non-negative or None, got "
                f"{self.neighbor_workers}"
            )
        if self.neighbor_nodes is not None:
            object.__setattr__(self, "neighbor_nodes",
                               tuple(str(node) for node in self.neighbor_nodes))
        if (self.neighbor_node_retries is not None
                and self.neighbor_node_retries < 0):
            raise ValueError(
                f"neighbor_node_retries must be non-negative or None, got "
                f"{self.neighbor_node_retries}"
            )
        if (self.neighbor_node_retry_backoff is not None
                and self.neighbor_node_retry_backoff < 0):
            raise ValueError(
                f"neighbor_node_retry_backoff must be non-negative or None, "
                f"got {self.neighbor_node_retry_backoff}"
            )
        if (self.neighbor_backend == DISTRIBUTED_BACKEND_NAME
                and not self.neighbor_nodes):
            raise ValueError(
                "neighbor_backend='distributed' requires neighbor_nodes "
                "('host:port' strings, one node server per entry)"
            )

    def neighbor_backend_options(self) -> dict:
        """Constructor options for :func:`repro.neighbors.resolve_backend`.

        Non-empty only for the sharded and distributed strategies (the
        single-process backends take no tuning knobs from this config), so
        the options can always be passed through safely.
        """
        if self.neighbor_backend == "sharded" and self.neighbor_workers is not None:
            return {"num_workers": self.neighbor_workers}
        if self.neighbor_backend == "distributed":
            options: dict = {"nodes": list(self.neighbor_nodes)}
            if self.neighbor_workers is not None:
                options["node_workers"] = self.neighbor_workers
            if self.neighbor_node_retries is not None:
                options["retries"] = self.neighbor_node_retries
            if self.neighbor_node_retry_backoff is not None:
                options["retry_backoff"] = self.neighbor_node_retry_backoff
            return options
        return {}

    @classmethod
    def paper(cls) -> "OneClusterConfig":
        """Paper-faithful constants everywhere."""
        return cls(center=GoodCenterConfig.paper(), paper_constants=True,
                   radius_budget_fraction=0.5)

    def with_center(self, **overrides) -> "OneClusterConfig":
        """A copy with some GoodCenter constants replaced."""
        return replace(self, center=replace(self.center, **overrides))

    def with_neighbors(self, backend: str,
                       options: Optional[dict] = None) -> "OneClusterConfig":
        """A copy routing neighbor queries through ``backend`` + ``options``.

        The inverse of :meth:`neighbor_backend_options`: takes a strategy
        name plus the *constructor* option dict
        :func:`repro.neighbors.resolve_backend` accepts and folds both back
        into config fields.  The service layer uses this for queries that
        must rebuild backends internally (``k_cluster`` re-indexes its
        shrinking point set every iteration, so a registered dataset's
        resident *instance* cannot serve it — only its spec can).

        Parameters
        ----------
        backend:
            A strategy name (``"auto"``, ``"dense"``, ``"chunked"``,
            ``"tree"``, ``"sharded"``, ``"distributed"``).
        options:
            Constructor options: ``num_workers`` / ``node_workers`` →
            ``neighbor_workers``, ``nodes`` → ``neighbor_nodes``,
            ``retries`` → ``neighbor_node_retries``, ``retry_backoff`` →
            ``neighbor_node_retry_backoff``.  Unknown keys are rejected
            (they could not survive the round trip back through
            :meth:`neighbor_backend_options`).
        """
        options = dict(options or {})
        updates: dict = {"neighbor_backend": str(backend)}
        if "num_workers" in options:
            updates["neighbor_workers"] = options.pop("num_workers")
        if "node_workers" in options:
            updates["neighbor_workers"] = options.pop("node_workers")
        if "nodes" in options:
            updates["neighbor_nodes"] = tuple(options.pop("nodes"))
        if "retries" in options:
            updates["neighbor_node_retries"] = options.pop("retries")
        if "retry_backoff" in options:
            updates["neighbor_node_retry_backoff"] = options.pop("retry_backoff")
        if options:
            raise ValueError(
                f"unsupported neighbor backend options for config routing: "
                f"{sorted(options)}"
            )
        return replace(self, **updates)


__all__ = ["GoodCenterConfig", "OneClusterConfig"]
