"""Result types for the 1-cluster algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.geometry.balls import Ball


@dataclass(frozen=True)
class GoodRadiusResult:
    """Outcome of Algorithm GoodRadius.

    Attributes
    ----------
    radius:
        The released radius ``z``.  With high probability some ball of this
        radius contains at least ``t - O(Gamma)`` input points and
        ``radius <= 4 * r_opt`` (paper Lemma 4.6).
    gamma:
        The promise value Γ used (paper-faithful or practical).
    score:
        The (non-private, diagnostic) value of the capped-average score
        ``L(radius, S)``; populated only when ``collect_diagnostics`` was
        requested, ``nan`` otherwise.
    zero_cluster:
        Whether the algorithm took the early exit for a radius-0 cluster
        (Algorithm 1, step 2).
    method:
        Which search strategy produced the radius (``"recconcave"`` or
        ``"binary_search"``).
    """

    radius: float
    gamma: float
    score: float = float("nan")
    zero_cluster: bool = False
    method: str = "recconcave"


@dataclass(frozen=True)
class GoodCenterResult:
    """Outcome of Algorithm GoodCenter.

    Attributes
    ----------
    center:
        The released centre ``y_hat`` (``None`` when the algorithm failed to
        locate a heavy box or abstained in NoisyAVG).
    radius_bound:
        The guaranteed radius: a ball of this radius around ``center``
        contains the located sub-cluster (``O(r sqrt(log n))``).
    attempts:
        How many randomly-shifted partitions were tried before AboveThreshold
        fired.
    projected_dimension:
        The JL target dimension ``k`` actually used.
    captured_count:
        Non-private diagnostic: how many of the points selected into the set
        ``D`` (mapped into the chosen box) survived to the final average.
        ``-1`` when diagnostics were not collected.
    """

    center: Optional[np.ndarray]
    radius_bound: float
    attempts: int
    projected_dimension: int
    captured_count: int = -1

    @property
    def found(self) -> bool:
        """Whether a centre was actually released."""
        return self.center is not None


@dataclass(frozen=True)
class OneClusterResult:
    """Outcome of the combined 1-cluster solver (Theorem 3.2).

    Attributes
    ----------
    ball:
        The released ball: the GoodCenter centre with the guaranteed radius
        bound.  ``None`` if GoodCenter failed.
    radius_result:
        The GoodRadius sub-result.
    center_result:
        The GoodCenter sub-result.
    target:
        The requested cluster size ``t``.
    """

    ball: Optional[Ball]
    radius_result: GoodRadiusResult
    center_result: GoodCenterResult
    target: int

    @property
    def found(self) -> bool:
        """Whether a ball was released."""
        return self.ball is not None

    def coverage(self, points: np.ndarray, *, slack: float = 0.0) -> int:
        """Non-private evaluation helper: how many of ``points`` the released
        ball contains.  Benchmarks use this to measure the empirical additive
        loss Δ; it must never be fed back into a private pipeline."""
        if self.ball is None:
            return 0
        return self.ball.count(points, slack=slack)

    def effective_radius(self, points: np.ndarray, target: int = None) -> float:
        """Non-private evaluation helper: the smallest radius around the
        released centre that captures ``target`` (default: ``self.target``)
        of ``points``.  This is the quantity the radius-approximation
        experiments report, since the guaranteed bound is intentionally
        conservative."""
        if self.ball is None:
            return float("inf")
        if target is None:
            target = self.target
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        distances = np.linalg.norm(points - self.ball.center[None, :], axis=1)
        distances = np.sort(distances)
        target = min(target, distances.size)
        return float(distances[target - 1])


__all__ = ["GoodRadiusResult", "GoodCenterResult", "OneClusterResult"]
