"""The combined 1-cluster solver (paper Theorem 3.2).

``one_cluster`` splits its privacy budget between GoodRadius and GoodCenter
and stitches their outputs into a single released ball.  A zero radius from
GoodRadius (a cluster of ``t`` identical points) is handled by choosing the
heavy point directly with the stability-based histogram, which is both simpler
and tighter than running GoodCenter with a degenerate radius.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.good_center import good_center
from repro.core.good_radius import good_radius
from repro.core.types import GoodCenterResult, GoodRadiusResult, OneClusterResult
from repro.geometry.balls import Ball
from repro.geometry.grid import GridDomain
from repro.mechanisms.histogram import stable_histogram_choice
from repro.neighbors import BackendLike, NeighborBackend, resolve_backend
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_points, check_probability


def _zero_radius_center(points: np.ndarray, params: PrivacyParams,
                        rng) -> GoodCenterResult:
    """Locate a cluster of identical points with the choosing mechanism.

    The rounded rows are deduplicated with one vectorised ``np.unique`` and
    the histogram runs over the resulting integer labels.  (The histogram's
    per-cell noise draws follow first-occurrence order of the label sequence,
    which is the same regardless of the integer values ``np.unique`` assigns.)
    """
    rounded = np.round(points, decimals=12)
    unique_rows, inverse = np.unique(rounded, axis=0, return_inverse=True)
    labels = np.reshape(inverse, -1).tolist()
    choice = stable_histogram_choice(labels, params, rng=rng)
    if not choice.found:
        return GoodCenterResult(center=None, radius_bound=float("inf"),
                                attempts=0, projected_dimension=points.shape[1])
    center = unique_rows[int(choice.key)]
    return GoodCenterResult(
        center=np.asarray(center, dtype=float),
        radius_bound=0.0,
        attempts=1,
        projected_dimension=points.shape[1],
        captured_count=choice.true_count,
    )


def one_cluster(points, target: int, params: PrivacyParams, beta: float = 0.1,
                domain: Optional[GridDomain] = None,
                config: Optional[OneClusterConfig] = None,
                rng: RngLike = None,
                ledger: Optional[PrivacyLedger] = None,
                backend: BackendLike = None) -> OneClusterResult:
    """Privately locate a small ball containing roughly ``target`` points.

    This is the end-to-end algorithm of Theorem 3.2: GoodRadius followed by
    GoodCenter, each on half the budget (the split is configurable through
    ``config.radius_budget_fraction``).

    Parameters
    ----------
    points:
        ``(n, d)`` input database.
    target:
        The desired cluster size ``t`` (``1 <= t <= n``).
    params:
        The overall ``(epsilon, delta)`` budget for the whole call.
    beta:
        Failure probability (split evenly between the two phases).
    domain:
        Optional finite grid domain ``X^d``; inferred from the data's bounding
        box when omitted.
    config:
        Solver configuration; :class:`~repro.core.config.OneClusterConfig`
        defaults to the practical constants.
    rng:
        Seed or generator.
    ledger:
        Optional :class:`~repro.accounting.ledger.PrivacyLedger` recording
        every sub-mechanism spend.
    backend:
        Neighbor-backend selection (name, class, or instance); overrides
        ``config.neighbor_backend``.  Resolved once and shared by both
        phases: GoodRadius reuses its cached distance statistics and
        GoodCenter batches its partition search through the same instance
        (one worker pool, not two, when the backend is sharded).
        Performance only — the output distribution is backend-independent.

    Returns
    -------
    OneClusterResult
        The released ball (centre + guaranteed radius bound) together with the
        per-phase sub-results.  ``result.found`` is ``False`` when GoodCenter
        could not locate the cluster, which Theorem 3.2 says happens with
        probability at most ``beta`` once ``target`` exceeds the minimum
        cluster size.
    """
    points = check_points(points)
    target = check_integer(target, "target", minimum=1)
    if target > points.shape[0]:
        raise ValueError(
            f"target ({target}) cannot exceed the number of points ({points.shape[0]})"
        )
    beta = check_probability(beta, "beta")
    if config is None:
        config = OneClusterConfig()

    radius_rng, center_rng = spawn_generators(rng, 2)
    fraction = config.radius_budget_fraction
    radius_params, center_params = params.split(fraction, 1.0 - fraction)
    half_beta = beta / 2.0

    # Resolve the backend once so both phases share one instance (cached
    # truncated statistics, and a single worker pool for "sharded").  A
    # backend built *here* (from None / a name / a class) is also owned
    # here: it is closed before returning, so a sharded backend's worker
    # pool and shared-memory segment are released deterministically instead
    # of riding on garbage collection — callers that loop (k_cluster builds
    # one backend per iteration) would otherwise accumulate live pools and
    # leak segments to interpreter shutdown.  A caller-supplied *instance*
    # stays the caller's to close.
    owns_backend = not isinstance(backend, NeighborBackend)
    if backend is None:
        shared_backend = resolve_backend(
            points, config.neighbor_backend,
            options=config.neighbor_backend_options() or None,
        )
    else:
        shared_backend = resolve_backend(points, backend)

    try:
        radius_result: GoodRadiusResult = good_radius(
            points, target, radius_params, beta=half_beta, domain=domain,
            config=config, rng=radius_rng, ledger=ledger,
            backend=shared_backend,
        )

        if radius_result.zero_cluster or radius_result.radius <= 0.0:
            center_result = _zero_radius_center(points, center_params,
                                                center_rng)
            if ledger is not None:
                ledger.record("stable_histogram", center_params,
                              note="zero-radius cluster centre")
        else:
            center_result = good_center(
                points, radius_result.radius, target, center_params,
                beta=half_beta, config=config.center, rng=center_rng,
                ledger=ledger, backend=shared_backend,
            )
    finally:
        if owns_backend:
            close = getattr(shared_backend, "close", None)
            if close is not None:
                close()

    if center_result.found:
        ball = Ball(center=center_result.center, radius=center_result.radius_bound)
    else:
        ball = None
    return OneClusterResult(
        ball=ball,
        radius_result=radius_result,
        center_result=center_result,
        target=target,
    )


__all__ = ["one_cluster"]
