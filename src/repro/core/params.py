"""Parameter calculators for Theorem 3.2.

These functions report the quantities the paper's main theorem promises —
the minimum cluster size ``t``, the additive loss ``Delta`` and the radius
approximation factor ``w`` — both with the paper's worst-case constants and in
the simplified asymptotic form used for plotting.  Experiments use them to
annotate measured results with the corresponding theoretical curves.
"""

from __future__ import annotations

import math

from repro.accounting.params import PrivacyParams
from repro.geometry.grid import GridDomain
from repro.utils.iterated_log import log_star


def good_radius_gamma(domain: GridDomain, params: PrivacyParams,
                      beta: float) -> float:
    """The promise Γ defined in Algorithm 1 (GoodRadius).

    ``Gamma = 8^{log*(2|X| sqrt d)} * (144 log*(2|X| sqrt d) / epsilon) *
    log(24 log*(2|X| sqrt d) / (beta delta))``.
    """
    if params.delta <= 0:
        raise ValueError("Gamma requires delta > 0")
    if not (0 < beta < 1):
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    argument = 2.0 * domain.side * math.sqrt(domain.dimension)
    ls = max(1, log_star(argument))
    return (
        8.0 ** ls
        * (144.0 * ls / params.epsilon)
        * math.log(24.0 * ls / (beta * params.delta))
    )


def additive_loss_bound(domain: GridDomain, params: PrivacyParams,
                        beta: float, num_points: int) -> float:
    """The additive cluster-size loss Δ of Theorem 3.2.

    ``Delta = O((1/epsilon) * log(n/delta) * log(1/beta) *
    9^{log*(2|X| sqrt d)})`` — reported here without the hidden constant, i.e.
    as the product of the stated factors.
    """
    if params.delta <= 0:
        raise ValueError("Delta requires delta > 0")
    factor = domain.log_star_factor(base=9.0)
    return (
        (1.0 / params.epsilon)
        * math.log(num_points / params.delta)
        * math.log(1.0 / beta)
        * factor
    )


def minimum_cluster_size(domain: GridDomain, params: PrivacyParams,
                         beta: float, num_points: int) -> float:
    """The minimum target ``t`` required by Theorem 3.2.

    ``t >= O((sqrt(d)/epsilon) * log(1/beta) * log(nd/(beta delta)) *
    sqrt(log(1/(beta delta))) * 9^{log*(2|X| sqrt d)})`` — again reported as
    the product of the stated factors without the hidden constant.
    """
    if params.delta <= 0:
        raise ValueError("the bound requires delta > 0")
    d = domain.dimension
    factor = domain.log_star_factor(base=9.0)
    return (
        (math.sqrt(d) / params.epsilon)
        * math.log(1.0 / beta)
        * math.log(num_points * d / (beta * params.delta))
        * math.sqrt(math.log(1.0 / (beta * params.delta)))
        * factor
    )


def radius_approximation_factor(num_points: int, constant: float = 1.0) -> float:
    """The radius approximation factor ``w = O(sqrt(log n))`` of Theorem 3.2."""
    if num_points < 2:
        raise ValueError("num_points must be at least 2")
    return constant * math.sqrt(math.log(num_points))


def good_center_minimum_cluster(dimension: int, params: PrivacyParams,
                                beta: float, num_points: int) -> float:
    """The minimum cluster size required by Lemma 3.7 (GoodCenter):
    ``t >= O((sqrt(d)/epsilon) * log(1/beta) * log(nd/(beta eps delta)) *
    sqrt(log(1/(beta delta))))``."""
    if params.delta <= 0:
        raise ValueError("the bound requires delta > 0")
    return (
        (math.sqrt(dimension) / params.epsilon)
        * math.log(1.0 / beta)
        * math.log(num_points * dimension / (beta * params.epsilon * params.delta))
        * math.sqrt(math.log(1.0 / (beta * params.delta)))
    )


def k_clustering_budget_bound(num_points: int, dimension: int,
                              params: PrivacyParams) -> float:
    """Observation 3.5: iterating the 1-cluster algorithm supports roughly
    ``k <= (epsilon n)^{2/3} / d^{1/3}`` clusters."""
    return (params.epsilon * num_points) ** (2.0 / 3.0) / dimension ** (1.0 / 3.0)


__all__ = [
    "good_radius_gamma",
    "additive_loss_bound",
    "minimum_cluster_size",
    "radius_approximation_factor",
    "good_center_minimum_cluster",
    "k_clustering_budget_bound",
]
