"""Algorithm GoodCenter (paper Algorithm 2, Lemma 3.7).

Given the radius ``r`` produced by GoodRadius, privately locate a centre
``y_hat`` such that a ball of radius ``O(r sqrt(log n))`` around it contains
at least ``t - O((1/epsilon) log(n/beta))`` input points.

Structure (step numbers refer to Algorithm 2):

1.  Project the points into ``R^k``, ``k = O(log(n/beta))``, with a
    Johnson–Lindenstrauss map.  When ``k`` would reach the ambient dimension
    ``d`` the projection is the identity — the JL step exists only to make
    ``k`` small, so there is nothing to gain from a square random projection.
2.  Instantiate AboveThreshold with budget ``epsilon/4``.
3-6. Repeatedly draw a randomly shifted partition of ``R^k`` into boxes of
    side ``O(r)`` and ask AboveThreshold whether some box captures ``~ t``
    projected points; stop at the first positive answer.
7.  Use the stability-based histogram (``epsilon/4, delta/4``) to pick a heavy
    box ``B``; let ``D`` be the input points mapped into ``B``.
8-9. Rotate ``R^d`` by a random orthonormal basis; on each rotated axis pick a
    heavy interval of length ``p`` (stability-based histogram, per-axis budget
    chosen so the ``d`` choices compose to ``epsilon/4`` under advanced
    composition) and extend it by ``p`` on each side.
10. Intersect ``D`` with the bounding sphere ``C`` of the resulting box —
    this gives a *deterministic* diameter bound for the final step.
11. Release the noisy average of ``D ∩ C`` with NoisyAVG (``epsilon/4,
    delta/4``).

Under the identity projection the chosen box ``B`` already lives in ``R^d``
and is itself a deterministic diameter bound of order ``r sqrt(k)``, which is
exactly what steps 8–10 exist to provide; in that case those steps are skipped
and ``C`` is taken to be the circumscribed ball of ``B`` (this only ever
*reduces* the privacy spend — the per-axis budget goes unused — and matches
the paper's own explanation of why the rotation is needed, namely to avoid a
``sqrt(d)`` blow-up that cannot occur when ``k = d``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.accounting.composition import per_step_epsilon_for_advanced
from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import GoodCenterConfig
from repro.core.types import GoodCenterResult
from repro.geometry.balls import ball_membership
from repro.geometry.boxes import (
    AxisIntervalPartition,
    ShiftedBoxPartition,
    interval_labels,
)
from repro.geometry.jl import JohnsonLindenstrauss
from repro.geometry.rotation import project_onto_basis, random_orthonormal_basis
from repro.mechanisms.above_threshold import AboveThreshold
from repro.mechanisms.histogram import stable_histogram_choice_from_counts
from repro.mechanisms.noisy_average import noisy_average, noisy_average_from_stats
from repro.neighbors import (
    BackendLike,
    QueryPlan,
    first_occurrence_cells,
    resolve_backend,
)
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_points, check_positive, check_probability


#: Whether the in-parent partition search hands its winning attempt's label
#: array to step 7 (it always computes one per attempt anyway).  The rehash
#: this avoids is pure recomputation, so flipping the flag must not move a
#: single byte of any release — tests/test_release_parity.py monkeypatches it
#: off and asserts exactly that, guarding the reuse against ever feeding
#: step 7 labels that belong to a different partition of the batch.
_REUSE_SEARCH_LABELS = True

#: Whether the backend path runs steps 8-11 shard-side: the selected set D
#: travels as a label predicate (BoxSelection), the per-axis interval
#: histograms and NoisyAVG's (count, exact sum) statistics arrive merged
#: from the backend, and the parent never materialises the selected or
#: rotated coordinates.  The merged statistics are *canonical* — exact
#: fixed-point sums, first-occurrence-ordered histograms — so flipping the
#: flag must not move a byte of any release; tests/test_release_parity.py
#: disables it (forcing the historical in-parent rotated stage) and asserts
#: exactly that, on both projection paths and including the NoisyAVG abstain
#: branch.
_SHARD_SIDE_ROTATED_STAGE = True

#: Whether the backend path bundles its queries into
#: :class:`~repro.neighbors.QueryPlan`\ s.  Each dependency frontier of the
#: algorithm becomes one plan — the partition-search batch, the step-7 box
#: histogram, the step-9 per-axis histograms, and the steps-10-11 NoisyAVG
#: statistics — pinning the "one worker round trip per shard per stage"
#: contract the instrumentation tests assert.  Each stage already cost one
#: fan-out on the PR 4 per-query path (every plan here carries a single
#: query), so the plan routing buys not fewer fan-outs but the plan
#: execution guarantees: per-call selection-membership memoisation in the
#: workers, round-trip accounting via ``pool_stats``, and the wire form
#: multi-machine shards will speak.  A noise draw sits between consecutive
#: stages and the later stage's query *arguments* depend on it, so no
#: bitwise-faithful execution can fuse across a stage boundary — per-stage
#: plans are the fusion limit at exact parity.  Plans change transport only
#: — the serial evaluator runs the identical primitives, and the sharded
#: merges are the same shard-order folds — so flipping the flag must not
#: move a byte of any release; tests/test_release_parity.py disables it
#: (forcing the PR 4 per-query fan-outs) and asserts exactly that.
_FUSED_QUERY_PLANS = True

#: Whether the backend path *speculates* across noise gates: a noise draw
#: sits between consecutive stages and the later stage's query arguments
#: depend on it, so plans cannot fuse across a stage boundary — but the
#: noisy choice usually equals the argmax of the pre-noise counts, and that
#: argmax is known *before* the noise is drawn.  With the flag on,
#: GoodCenter submits the next stage's plan for the predicted choice
#: (:func:`_predict_slot`) via ``backend.submit()`` the moment the current
#: stage's counts arrive, draws the noise while the workers chew, and then
#: either consumes the in-flight result (prediction hit — the stage's round
#: trip overlapped the noise draw) or discards it and executes the real
#: plan exactly as before (mispredict).  A consumed speculative plan
#: carries *identical arguments* to the plan it replaces, and a discarded
#: one is never read, so flipping the flag must not move a byte of any
#: release — tests/test_query_plans.py forces full mispredict streaks and
#: asserts exactly that.  Hit/miss counters are recorded per stage on the
#: backend (surfaced through ``pool_stats()``).  Only strategies with
#: ``supports_speculation`` opt in (serial backends evaluate ``submit``
#: eagerly, so a mispredicted speculation there would be pure wasted work).
_SPECULATIVE_PLANS = True


def _predict_slot(counts) -> int:
    """The pre-noise prediction at a histogram noise gate: the slot of the
    largest count (first occurrence on ties — deterministic, and the choice
    the stability histogram is most likely to make).  Module-level so the
    mispredict regression tests can monkeypatch it into a pathological
    predictor."""
    return int(np.argmax(np.asarray(counts)))


def _failure(attempts: int, k: int) -> GoodCenterResult:
    return GoodCenterResult(center=None, radius_bound=float("inf"),
                            attempts=attempts, projected_dimension=k)


def good_center(points, radius: float, target: int, params: PrivacyParams,
                beta: float = 0.1, config: Optional[GoodCenterConfig] = None,
                rng: RngLike = None,
                ledger: Optional[PrivacyLedger] = None,
                backend: BackendLike = None) -> GoodCenterResult:
    """Privately locate the centre of a ball of radius ``~ radius`` holding
    ``~ target`` points.

    Parameters
    ----------
    points:
        ``(n, d)`` input database.
    radius:
        The cluster radius ``r`` (typically the GoodRadius output); must be
        positive — a zero radius means a cluster of identical points, which
        the combined solver handles separately.
    target:
        Desired cluster size ``t``.
    params:
        Overall ``(epsilon, delta)`` budget; split into four ``epsilon/4``
        parts exactly as in the paper's privacy analysis (Lemma 4.11).
    beta:
        Failure probability.
    config:
        The GoodCenter constants (paper or practical).
    rng:
        Seed or generator.
    ledger:
        Optional privacy ledger.
    backend:
        Optional neighbor-backend selection.  When given, *every* data-heavy
        stage rides the resolved backend: the partition search and step-7
        box histogram through a
        :class:`~repro.neighbors.base.ProjectedView` (on both the identity
        and JL projection paths), and steps 8-11 through the view's masked
        aggregate queries — the selected set travels as a
        :class:`~repro.neighbors.base.BoxSelection` label predicate, the
        rotated frame is just another ``backend.view(basis)``, and NoisyAVG
        consumes the merged ``(count, exact sum)`` statistics.  Each
        dependency frontier is bundled into one
        :class:`~repro.neighbors.QueryPlan` — the search batch, the box
        histogram, the step-9 axis histograms, the steps-10-11 statistics —
        so each stage costs exactly one worker round trip per shard, with
        the selection's per-shard membership derived once per call (workers
        memoise it under the selection's token).  The sharded backend
        evaluates all of it shard-side over its shared-memory block, so the
        parent's peak allocation in steps 8-11 is ``O(shard + d)`` — it
        never holds the projected image, the membership mask, or the
        rotated selected coordinates.  Pure performance — the projection is
        row-decomposable, the grid hashes and sphere mask are shared
        definitions, histogram cells arrive in first-occurrence order, and
        the aggregate sums are exact fixed-point (partition-independent), so
        the query sequence and every noise draw, and hence the release
        distribution, are unchanged.

    Returns
    -------
    GoodCenterResult
        ``center`` is ``None`` when the algorithm could not locate a heavy
        box/interval or NoisyAVG abstained; callers may retry with a fresh
        budget or report failure.
    """
    points = check_points(points)
    radius = check_positive(radius, "radius")
    target = check_integer(target, "target", minimum=1)
    beta = check_probability(beta, "beta")
    if params.delta <= 0:
        raise ValueError("good_center requires delta > 0")
    if config is None:
        config = GoodCenterConfig.practical()

    n, dimension = points.shape
    at_fraction, box_fraction, axes_fraction, avg_fraction = config.budget_split
    at_epsilon = params.epsilon * at_fraction
    box_epsilon = params.epsilon * box_fraction
    axes_epsilon = params.epsilon * axes_fraction
    avg_epsilon = params.epsilon * avg_fraction
    quarter_delta = params.delta / 4.0
    # The partition *shift* draws get their own stream (shift_rng), separate
    # from AboveThreshold's noise stream (partition_rng): the backend-batched
    # search below draws a few shifts ahead of their AboveThreshold queries,
    # and with a shared stream that lookahead would reorder the noise draws —
    # i.e. the backend choice would change the release.  With split streams
    # the query sequence, and hence the output distribution, is identical
    # whether or not the batched path runs.
    (jl_rng, partition_rng, box_rng, basis_rng, axis_rng, avg_rng,
     shift_rng) = spawn_generators(rng, 7)

    # ------------------------------------------------------------------ #
    # Step 1: Johnson-Lindenstrauss projection (identity when k reaches d).
    # ------------------------------------------------------------------ #
    k = config.projection_dimension(n, beta, ambient_dimension=dimension)
    identity_projection = k >= dimension
    projection: Optional[JohnsonLindenstrauss] = None
    if identity_projection:
        k = dimension
    else:
        projection = JohnsonLindenstrauss(input_dimension=dimension,
                                          output_dimension=k, rng=jl_rng)

    # With a backend, the projected points live behind a ProjectedView —
    # applied shard-side for the sharded strategy, so the parent never
    # materialises the (n, k) image.  Without one, the parent projects once
    # (through the same row-decomposable definition, so both paths hash
    # bit-identical coordinates).
    resolved = resolve_backend(points, backend) if backend is not None else None
    view = None
    projected = None
    if resolved is not None:
        view = resolved.view(None if projection is None else projection.matrix)
    elif projection is None:
        projected = points
    else:
        projected = projection.project(points)

    # ------------------------------------------------------------------ #
    # Steps 2-6: find a heavy randomly-shifted box partition.
    # ------------------------------------------------------------------ #
    threshold = target - (config.threshold_slack_constant / params.epsilon) * math.log(
        2.0 * n / beta
    )
    max_attempts = config.max_attempts(n, beta)
    above = AboveThreshold(threshold, PrivacyParams(at_epsilon, 0.0),
                           max_queries=max_attempts, rng=partition_rng)
    if ledger is not None:
        ledger.record("above_threshold", PrivacyParams(at_epsilon, 0.0),
                      note="GoodCenter partition search")
    width = config.box_width(radius, k, identity_projection)

    # Backend-batched partition search (identity *and* JL paths): the view
    # answers batches of heaviest-cell queries, amortising the sharded
    # backend's per-shard fan-out.  In-parent search uses batch size 1 (there
    # is no fan-out to amortise, and attempts past the accepted one would be
    # wasted hashes) and keeps each attempt's label array so the winning
    # partition need not be rehashed in step 7.
    batch_size = 1
    if view is not None:
        batch_size = (config.partition_batch_size
                      if config.partition_batch_size is not None
                      else view.batch_size)
        batch_size = max(1, int(batch_size))

    # Speculation rides the shard-side fused-plan path only: predictions are
    # submitted as plans over BoxSelection predicates, and only strategies
    # whose submit() genuinely overlaps work opt in.
    speculate = (view is not None and _SHARD_SIDE_ROTATED_STAGE
                 and _FUSED_QUERY_PLANS and _SPECULATIVE_PLANS
                 and getattr(resolved, "supports_speculation", False))

    chosen_partition: Optional[ShiftedBoxPartition] = None
    chosen_labels: Optional[np.ndarray] = None
    spec_histogram = None
    attempts = 0
    while attempts < max_attempts and chosen_partition is None:
        batch = [
            ShiftedBoxPartition(dimension=k, width=width, rng=shift_rng)
            for _ in range(min(batch_size, max_attempts - attempts))
        ]
        search_spec = None
        if view is not None:
            batch_shifts = np.stack([p.shifts for p in batch])
            if _FUSED_QUERY_PLANS:
                # One plan per batch: the whole attempt batch is a single
                # round trip per shard on the sharded backend.
                plan = QueryPlan()
                slot = plan.heaviest_cell_counts(view, width, batch_shifts)
                counts = resolved.execute(plan)[slot]
            else:
                counts = view.heaviest_cell_counts(width, batch_shifts)
            labels_batch = [None] * len(batch)
            if speculate:
                # Predict the accepted attempt: the first whose pre-noise
                # count clears the pre-noise threshold (AboveThreshold's
                # most likely acceptance).  Ship its step-7 box histogram
                # while the noisy queries run.
                passing = np.flatnonzero(
                    np.asarray([int(c) for c in counts], dtype=np.int64)
                    >= threshold
                )
                if passing.shape[0]:
                    predicted = int(passing[0])
                    spec_plan = QueryPlan()
                    spec_slot = spec_plan.cell_histogram(
                        view, width, batch[predicted].shifts,
                        return_inverse=False,
                    )
                    search_spec = (predicted, spec_slot,
                                   resolved.submit(spec_plan))
        else:
            labels_batch = [p.label_array(projected) for p in batch]
            counts = [
                int(np.unique(la, axis=0, return_counts=True)[1].max())
                for la in labels_batch
            ]
        accepted_slot = None
        for batch_slot, (partition, partition_labels, count) in enumerate(
                zip(batch, labels_batch, counts)):
            attempts += 1
            answer = above.query(int(count))
            if answer.above:
                chosen_partition = partition
                chosen_labels = partition_labels
                accepted_slot = batch_slot
                break
        if search_spec is not None:
            predicted, spec_slot, spec_future = search_spec
            search_hit = accepted_slot == predicted
            resolved.record_speculation("search->box", search_hit)
            if search_hit:
                spec_histogram = spec_future.result()[spec_slot]
    if chosen_partition is None:
        return _failure(attempts, k)

    # ------------------------------------------------------------------ #
    # Step 7: pick the heavy box with the choosing mechanism.  The occupied
    # cells reach the mechanism in first-occurrence (dataset-row) order on
    # every path, so the per-cell noise draws are bit-identical whether the
    # histogram was counted in-parent or merged across shards.
    # ------------------------------------------------------------------ #
    # With a backend and the shard-side seam on, the selected set D is
    # carried through steps 8-11 as a *label predicate* (BoxSelection) — the
    # parent never materialises a membership mask, a row list, or the
    # selected coordinates; it only merges the backends' (d,)-shaped
    # aggregate partials.
    shard_side = view is not None and _SHARD_SIDE_ROTATED_STAGE
    cell_positions = None
    if view is not None:
        want_inverse = not shard_side
        if spec_histogram is not None:
            # search->box hit: the box histogram is already in hand, computed
            # from the identical (width, shifts, return_inverse=False)
            # arguments — speculation only ran on the shard-side path, where
            # the inverse is never requested.
            histogram = spec_histogram
        elif _FUSED_QUERY_PLANS:
            plan = QueryPlan()
            slot = plan.cell_histogram(view, width, chosen_partition.shifts,
                                       return_inverse=want_inverse)
            histogram = resolved.execute(plan)[slot]
        else:
            histogram = view.cell_histogram(width, chosen_partition.shifts,
                                            return_inverse=want_inverse)
        if shard_side:
            cell_keys, cell_counts = histogram
        else:
            cell_keys, cell_counts, cell_positions = histogram
    else:
        if chosen_labels is None or not _REUSE_SEARCH_LABELS:
            chosen_labels = chosen_partition.label_array(projected)
        cell_keys, cell_counts = first_occurrence_cells(chosen_labels)
    cells = [(tuple(int(index) for index in key), int(count))
             for key, count in zip(cell_keys, cell_counts)]

    # Box-stage speculation: the stability histogram's choice is usually the
    # heaviest occupied cell, and the next stage's plan for that cell can be
    # built entirely from pre-noise data — including, on the JL path, the
    # random basis (its own independent stream, drawn once, so drawing it
    # before the box noise instead of after cannot change any draw).
    box_spec = None
    spec_basis = None
    spec_interval_length = None
    spec_frame_view = None
    if speculate and cells:
        predicted_key = cells[_predict_slot(cell_counts)][0]
        predicted_index = np.asarray(predicted_key, dtype=np.int64)
        spec_selection = view.box_selection(width, chosen_partition.shifts,
                                            predicted_index)
        spec_plan = QueryPlan()
        if identity_projection:
            # Steps 8-10 are skipped on this path, so the predicted next
            # frontier is the steps-10-11 statistics over the predicted box's
            # circumscribed ball.
            predicted_box = chosen_partition.box_for_label(predicted_key)
            spec_slot = spec_plan.masked_clipped_sum(
                view, spec_selection, predicted_box.center,
                predicted_box.diameter / 2.0,
            )
        else:
            spec_basis = random_orthonormal_basis(dimension, rng=basis_rng)
            spec_interval_length = config.rotated_interval_length(
                radius, k, dimension, n, beta, identity_projection
            )
            spec_frame_view = resolved.view(spec_basis)
            spec_slot = spec_plan.masked_axis_histograms(
                spec_frame_view, spec_selection, spec_interval_length
            )
        box_spec = (predicted_key, spec_selection, spec_slot,
                    resolved.submit(spec_plan))

    box_choice = stable_histogram_choice_from_counts(
        cells, PrivacyParams(box_epsilon, quarter_delta), rng=box_rng
    )
    if ledger is not None:
        ledger.record("stable_histogram", PrivacyParams(box_epsilon, quarter_delta),
                      note="GoodCenter box choice")
    box_hit = False
    if box_spec is not None:
        box_hit = box_choice.found and tuple(box_choice.key) == box_spec[0]
        resolved.record_speculation(
            "box->avg" if identity_projection else "box->axes", box_hit
        )
    if not box_choice.found:
        return _failure(attempts, k)
    chosen_index = np.asarray(box_choice.key, dtype=np.int64)
    selection = None
    selected = None
    spec_stats = None
    if shard_side:
        # On a box-stage hit the speculative selection *is* the chosen one
        # (same width/shifts/index arguments); reusing it keeps the workers'
        # token-keyed membership memo warm.
        selection = (box_spec[1] if box_hit else
                     view.box_selection(width, chosen_partition.shifts,
                                        chosen_index))
        # The histogram already carries the exact occupancy of the chosen
        # box — no membership pass needed for the emptiness guard.
        selected_count = int(box_choice.true_count)
        if box_hit and identity_projection:
            spec_stats = (box_spec[3], box_spec[2])
    else:
        if cell_positions is not None:
            # The histogram's per-point positions already encode membership,
            # so the view path needs no second hash pass (or sharded
            # fan-out).
            chosen_position = next(
                slot for slot, (key, _) in enumerate(cells)
                if key == box_choice.key
            )
            in_box = cell_positions == chosen_position
        else:
            in_box = np.all(chosen_labels == chosen_index[None, :], axis=1)
        selected = points[in_box]
        selected_count = int(selected.shape[0])
    if selected_count == 0:
        return _failure(attempts, k)
    chosen_box = chosen_partition.box_for_label(box_choice.key)
    selected_diameter = config.selected_set_diameter(radius, k, identity_projection)

    if identity_projection:
        # The box B is itself a subset of R^d with a known circumscribed ball;
        # steps 8-10 would only produce a looser deterministic bound, so the
        # bounding sphere is taken directly from B (see module docstring).
        sphere_center = chosen_box.center
        sphere_radius = chosen_box.diameter / 2.0
        frame_points = selected
        frame_view = view
        rotate_back = None
    else:
        # ---------------------------------------------------------------- #
        # Steps 8-9: random rotation, per-axis heavy intervals.  The rotated
        # frame is just another linear image of the dataset, so with a
        # backend it rides ``backend.view(basis)``: the per-axis interval
        # histograms arrive merged in first-occurrence order (bit-identical
        # noise draws) and the parent holds O(occupied intervals), never the
        # rotated selected coordinates.
        # ---------------------------------------------------------------- #
        # The basis stream is independent of every other stream and drawn
        # from exactly once, so the speculative early draw above (when it
        # happened) produced the very matrix this line would have — reuse it
        # rather than advancing the stream a second time.
        if spec_basis is not None:
            basis = spec_basis
            interval_length = spec_interval_length
        else:
            basis = random_orthonormal_basis(dimension, rng=basis_rng)
            interval_length = config.rotated_interval_length(
                radius, k, dimension, n, beta, identity_projection
            )
        axis_epsilon = per_step_epsilon_for_advanced(
            axes_epsilon, dimension, delta_prime=params.delta / 8.0
        )
        axis_delta = params.delta / (8.0 * dimension)
        axis_params = PrivacyParams(axis_epsilon, axis_delta)
        axis_rngs = spawn_generators(axis_rng, dimension)

        if shard_side:
            # Steps 8-9 are one plan: every axis histogram of the rotated
            # frame (and the selection's membership derivation) rides a
            # single round trip per shard.  On a box-stage miss the
            # speculative frame view is still reused — views are keyed by
            # token in the workers' image cache, so the re-projection done
            # for the discarded plan is not repeated for the real one.
            frame_view = (spec_frame_view if spec_frame_view is not None
                          else resolved.view(basis))
            if box_hit:
                axis_histograms = box_spec[3].result()[box_spec[2]]
            elif _FUSED_QUERY_PLANS:
                plan = QueryPlan()
                slot = plan.masked_axis_histograms(frame_view, selection,
                                                   interval_length)
                axis_histograms = resolved.execute(plan)[slot]
            else:
                axis_histograms = frame_view.masked_axis_histograms(
                    selection, interval_length
                )
        else:
            rotated = project_onto_basis(selected, basis)
            axis_label_matrix = interval_labels(rotated, interval_length)

        # Axes-stage speculation: predict every axis's heavy interval at
        # once (the per-axis argmaxes), derive the bounding sphere those
        # predictions imply, and ship the steps-10-11 statistics plan while
        # the d per-axis noise gates run.  A hit requires *every* axis
        # choice to land on its prediction — the sphere depends on all of
        # them.
        axes_spec = None
        if speculate and shard_side:
            pred_lower = np.empty(dimension)
            pred_upper = np.empty(dimension)
            predicted_axis_keys = []
            pred_partition = AxisIntervalPartition(width=interval_length)
            for axis in range(dimension):
                axis_keys, axis_counts = axis_histograms[axis]
                pred_key = int(axis_keys[_predict_slot(axis_counts)])
                predicted_axis_keys.append(pred_key)
                low, high = pred_partition.extended_interval(pred_key)
                pred_lower[axis] = low
                pred_upper[axis] = high
            pred_center = (pred_lower + pred_upper) / 2.0
            pred_radius = config.bounding_sphere_radius(interval_length,
                                                        dimension)
            spec_plan = QueryPlan()
            spec_slot = spec_plan.masked_clipped_sum(frame_view, selection,
                                                     pred_center, pred_radius)
            axes_spec = (predicted_axis_keys, spec_slot,
                         resolved.submit(spec_plan))

        axes_hit = axes_spec is not None
        lower_bounds = np.empty(dimension)
        upper_bounds = np.empty(dimension)
        for axis in range(dimension):
            partition = AxisIntervalPartition(width=interval_length)
            if shard_side:
                axis_keys, axis_counts = axis_histograms[axis]
            else:
                axis_keys, axis_counts = first_occurrence_cells(
                    axis_label_matrix[:, axis]
                )
            choice = stable_histogram_choice_from_counts(
                list(zip(axis_keys.tolist(), axis_counts.tolist())),
                axis_params, rng=axis_rngs[axis],
            )
            if not choice.found:
                if axes_spec is not None:
                    resolved.record_speculation("axes->avg", False)
                return _failure(attempts, k)
            if axes_spec is not None and int(choice.key) != axes_spec[0][axis]:
                axes_hit = False
            low, high = partition.extended_interval(int(choice.key))
            lower_bounds[axis] = low
            upper_bounds[axis] = high
        if axes_spec is not None:
            resolved.record_speculation("axes->avg", axes_hit)
            if axes_hit:
                spec_stats = (axes_spec[2], axes_spec[1])
        if ledger is not None:
            ledger.record("stable_histogram_axes",
                          PrivacyParams(axes_epsilon, quarter_delta),
                          note="GoodCenter per-axis interval choices "
                               "(advanced composition)")

        # -------------------------------------------------------------- #
        # Step 10: bounding sphere C in the rotated frame.
        # -------------------------------------------------------------- #
        sphere_center = (lower_bounds + upper_bounds) / 2.0
        sphere_radius = config.bounding_sphere_radius(interval_length, dimension)
        if not shard_side:
            frame_points = rotated
        rotate_back = basis

    # ------------------------------------------------------------------ #
    # Steps 10-11: captured count + NoisyAVG of D' in the working frame,
    # then map back if needed.  The shard-side path hands NoisyAVG the
    # merged (count, exact sum) statistics; the in-parent path hands it the
    # raw frame points.  Both funnel into the same release core over the
    # same ball_membership mask and the same exact column sums, so the
    # releases (abstain branch included) are bit-for-bit identical.
    # ------------------------------------------------------------------ #
    avg_params = PrivacyParams(avg_epsilon, quarter_delta)
    if shard_side:
        # Steps 10-11 are one plan: NoisyAVG's (count, exact sum) statistics
        # arrive in a single round trip per shard.  The sphere's centre
        # depends on the step-9 noise, so this frontier cannot fuse with the
        # axis-histogram plan without changing the release.
        if spec_stats is not None:
            # A box-stage (identity path) or axes-stage (JL path) hit: the
            # in-flight statistics were computed from the same
            # (selection, centre, radius) this plan would carry — the
            # predicted sphere is a deterministic function of the predicted
            # choices, which all landed.
            stats = spec_stats[0].result()[spec_stats[1]]
        elif _FUSED_QUERY_PLANS:
            plan = QueryPlan()
            slot = plan.masked_clipped_sum(frame_view, selection,
                                           sphere_center, sphere_radius)
            stats = resolved.execute(plan)[slot]
        else:
            stats = frame_view.masked_clipped_sum(selection, sphere_center,
                                                  sphere_radius)
        captured = int(stats.count)
        average = noisy_average_from_stats(
            stats.count, stats.vector_sum, diameter=2.0 * sphere_radius,
            params=avg_params, center=sphere_center, rng=avg_rng,
        )
    else:
        captured = int(np.count_nonzero(
            ball_membership(frame_points, sphere_center, sphere_radius)
        ))
        average = noisy_average(
            frame_points,
            diameter=2.0 * sphere_radius,
            params=avg_params,
            predicate=lambda pts: ball_membership(pts, sphere_center,
                                                  sphere_radius),
            center=sphere_center,
            rng=avg_rng,
        )
    if ledger is not None:
        ledger.record("noisy_average", PrivacyParams(avg_epsilon, quarter_delta),
                      note="GoodCenter final average")
    if not average.found:
        return _failure(attempts, k)
    if rotate_back is None:
        center = np.asarray(average.value, dtype=float)
    else:
        # Basis rows are the rotated axes, so rotated coordinates map back to
        # the standard frame through the matrix itself.
        center = np.asarray(average.value, dtype=float) @ rotate_back

    noise_bound = average.sigma * (math.sqrt(dimension) + math.sqrt(2.0 * math.log(2.0 / beta)))
    radius_bound = selected_diameter + noise_bound
    return GoodCenterResult(
        center=center,
        radius_bound=float(radius_bound),
        attempts=attempts,
        projected_dimension=k,
        captured_count=captured,
    )


__all__ = ["good_center"]
