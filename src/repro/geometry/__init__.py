"""Geometric substrate: grid domains, ball counting, projections, boxes."""

from repro.geometry.grid import GridDomain
from repro.geometry.balls import (
    Ball,
    count_in_ball,
    counts_around_points,
    capped_counts_around_points,
    capped_average_score,
    capped_average_score_profile,
    pairwise_distances,
)
from repro.geometry.minimal_ball import (
    smallest_ball_two_approx,
    smallest_interval_1d,
    smallest_ball_exact_1d,
    optimal_radius_lower_bound,
)
from repro.geometry.jl import JohnsonLindenstrauss, jl_target_dimension
from repro.geometry.rotation import random_orthonormal_basis, project_onto_basis
from repro.geometry.boxes import ShiftedBoxPartition, AxisIntervalPartition, Box

__all__ = [
    "GridDomain",
    "Ball",
    "count_in_ball",
    "counts_around_points",
    "capped_counts_around_points",
    "capped_average_score",
    "capped_average_score_profile",
    "pairwise_distances",
    "smallest_ball_two_approx",
    "smallest_interval_1d",
    "smallest_ball_exact_1d",
    "optimal_radius_lower_bound",
    "JohnsonLindenstrauss",
    "jl_target_dimension",
    "random_orthonormal_basis",
    "project_onto_basis",
    "ShiftedBoxPartition",
    "AxisIntervalPartition",
    "Box",
]
