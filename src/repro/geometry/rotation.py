"""Random orthonormal bases (paper Lemma 4.9).

GoodCenter's refinement step (Algorithm 2, steps 8–10) rotates ``R^d`` by a
uniformly random orthonormal basis so that, with high probability, the
projection of any fixed point set of diameter ``D`` onto every rotated axis
has spread only ``O(D * sqrt(log(dn/beta) / d))`` — this is what lets the
per-axis interval choices produce a box of diameter ``~ sqrt(d) * (D/sqrt(d))
= D`` instead of ``sqrt(d) * D``.

The rotated frame is *not* a special coordinate system anywhere in the
pipeline: it is just the linear image ``X B^T`` of the dataset under the
basis matrix, so with a neighbor backend the whole rotated stage runs over
``backend.view(basis)`` — shards apply the basis to their own rows through
the row-decomposable :func:`~repro.geometry.jl.project_rows` (bitwise equal
to slicing a parent-side rotation, see :func:`project_onto_basis`), answer
the per-axis interval histograms and NoisyAVG's masked clipped sum locally,
and only ``O(d)``-sized partials ever reach the parent.  Mapping a released
rotated-frame vector back to the standard frame is a parent-side ``v @ B``
(basis rows are the rotated axes).
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_points


def random_orthonormal_basis(dimension: int, rng: RngLike = None) -> np.ndarray:
    """A uniformly random (Haar) orthonormal basis of ``R^dimension``.

    Returns a ``(d, d)`` matrix whose *rows* are the basis vectors
    ``z_1, ..., z_d``.  Obtained from the QR decomposition of a Gaussian
    matrix with the sign correction that makes the distribution Haar.
    """
    if dimension < 1:
        raise ValueError(f"dimension must be at least 1, got {dimension}")
    generator = as_generator(rng)
    gaussian = generator.standard_normal((dimension, dimension))
    q, r = np.linalg.qr(gaussian)
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return (q * signs[None, :]).T


def project_onto_basis(points: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """Coordinates of ``points`` in the given orthonormal basis.

    ``basis`` has the basis vectors as rows; the result is ``points @ basis.T``
    so column ``i`` of the output is the projection onto ``z_i``.  Computed
    through :func:`repro.geometry.jl.project_rows`, so the rotated
    coordinates of any row subset are bitwise identical to slicing the full
    rotation — which is what lets the sharded neighbor backend label rotated
    axes shard-side without changing a release.
    """
    from repro.geometry.jl import project_rows

    points = check_points(points)
    basis = np.asarray(basis, dtype=float)
    if basis.shape[1] != points.shape[1]:
        raise ValueError(
            f"basis dimension {basis.shape[1]} does not match points "
            f"dimension {points.shape[1]}"
        )
    return project_rows(points, basis)


def rotated_projection_spread_bound(diameter: float, dimension: int,
                                    num_points: int, beta: float) -> float:
    """The per-axis spread bound of Lemma 4.9.

    For a point set of diameter ``diameter`` and a random orthonormal basis,
    with probability at least ``1 - beta`` every pair's projection onto every
    basis vector differs by at most
    ``2 sqrt(ln(d m / beta) / d) * diameter``.
    """
    if diameter < 0:
        raise ValueError("diameter must be non-negative")
    if not (0 < beta < 1):
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    if dimension < 1 or num_points < 1:
        raise ValueError("dimension and num_points must be at least 1")
    return 2.0 * math.sqrt(math.log(dimension * num_points / beta) / dimension) * diameter


__all__ = [
    "random_orthonormal_basis",
    "project_onto_basis",
    "rotated_projection_spread_bound",
]
