"""Randomly shifted box partitions and axis-interval partitions.

GoodCenter partitions the projected space ``R^k`` into axis-aligned boxes of a
fixed side length with a uniformly random shift per axis (Algorithm 2,
steps 3–4): if the target cluster has diameter at most a third of the side
length, each axis "splits" the cluster with probability at most 1/3-ish, so
with probability ``~ c^k`` no axis splits it and some box contains the whole
cluster.  The same building block, one axis at a time, is used for the
rotated-axis refinement (step 9).

Boxes are identified by integer index vectors; :class:`ShiftedBoxPartition`
maps points to those labels, which is exactly the input the stability-based
histogram mechanism needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro import kernels as _kernels
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_points, check_positive


def box_labels(points: np.ndarray, shifts: np.ndarray,
               width: float) -> np.ndarray:
    """Integer box-index vectors of every point under a shifted partition.

    The single definition of the grid hash ``floor((x - shift) / width)``.
    Both :meth:`ShiftedBoxPartition.label_array` and the sharded backend's
    distributed heaviest-cell counting call this helper, so the two code
    paths are bit-identical by construction — which is what lets GoodCenter's
    backend-batched partition search promise the exact same AboveThreshold
    queries as the serial loop.

    Parameters
    ----------
    points:
        ``(n, k)`` points.
    shifts:
        ``(k,)`` per-axis shift vector.
    width:
        The box side length.

    Returns
    -------
    numpy.ndarray
        ``(n, k)`` ``int64`` per-axis box indices.
    """
    points = np.asarray(points, dtype=float)
    shifts = np.asarray(shifts, dtype=float)
    return _kernels.fused_box_labels(points, shifts, width)


def interval_labels(values: np.ndarray, width: float,
                    offset: float = 0.0) -> np.ndarray:
    """Integer interval indices ``floor((v - offset) / width)``, elementwise.

    The one-dimensional sibling of :func:`box_labels` and, like it, the
    *single* definition of the hash: :class:`AxisIntervalPartition` and the
    backend view layer's batched per-axis labelling both call this helper, so
    the rotated-axis interval stage of GoodCenter produces bit-identical
    labels whether the axes are labelled serially in the parent or in one
    batched (possibly shard-side) pass.

    Parameters
    ----------
    values:
        Scalar values of any shape; labelled elementwise.
    width:
        The interval length.
    offset:
        The partition's origin (0 in the paper).

    Returns
    -------
    numpy.ndarray
        ``int64`` interval indices, same shape as ``values``.
    """
    values = np.asarray(values, dtype=float)
    return _kernels.fused_interval_labels(values, width, offset)


@dataclass(frozen=True)
class Box:
    """An axis-aligned box given by per-axis lower and upper bounds."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=float).reshape(-1)
        upper = np.asarray(self.upper, dtype=float).reshape(-1)
        if lower.shape != upper.shape:
            raise ValueError("lower and upper must have the same shape")
        if np.any(upper < lower):
            raise ValueError("upper must be at least lower on every axis")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @property
    def dimension(self) -> int:
        """The number of axes."""
        return int(self.lower.shape[0])

    @property
    def side_lengths(self) -> np.ndarray:
        """Per-axis side lengths."""
        return self.upper - self.lower

    @property
    def center(self) -> np.ndarray:
        """The box centre."""
        return (self.lower + self.upper) / 2.0

    @property
    def diameter(self) -> float:
        """Euclidean diameter (norm of the side-length vector)."""
        return float(np.linalg.norm(self.side_lengths))

    def contains(self, points) -> np.ndarray:
        """Boolean mask of points inside the (half-open) box."""
        points = check_points(points, dimension=self.dimension)
        above = np.all(points >= self.lower[None, :], axis=1)
        below = np.all(points < self.upper[None, :], axis=1)
        return above & below

    def expanded(self, margin: float) -> "Box":
        """The box enlarged by ``margin`` on every side (paper's ``I_hat``)."""
        check_positive(margin, "margin", strict=False)
        return Box(lower=self.lower - margin, upper=self.upper + margin)


class ShiftedBoxPartition:
    """A partition of ``R^k`` into boxes of side ``width`` with random shifts.

    Parameters
    ----------
    dimension:
        The number of axes ``k``.
    width:
        The side length of every box.
    rng:
        Seed or generator used to draw the per-axis shifts in ``[0, width)``.
    """

    def __init__(self, dimension: int, width: float, rng: RngLike = None) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be at least 1, got {dimension}")
        check_positive(width, "width")
        self.dimension = int(dimension)
        self.width = float(width)
        generator = as_generator(rng)
        self.shifts = generator.uniform(0.0, self.width, size=self.dimension)

    def label_array(self, points) -> np.ndarray:
        """The ``(n, k)`` integer index vectors of every point's box."""
        points = check_points(points, dimension=self.dimension)
        return box_labels(points, self.shifts, self.width)

    def labels(self, points) -> list:
        """The box label (a tuple of per-axis indices) of every point."""
        return [tuple(row) for row in self.label_array(points)]

    def heaviest_cell_count(self, points) -> int:
        """The maximum number of points falling into one box.

        This is the sensitivity-1 query GoodCenter feeds to AboveThreshold
        (Algorithm 2, step 5).
        """
        indices = self.label_array(points)
        _, counts = np.unique(indices, axis=0, return_counts=True)
        return int(counts.max())

    def box_for_label(self, label: Tuple[int, ...]) -> Box:
        """The geometric box corresponding to an integer label."""
        label_array = np.asarray(label, dtype=float)
        if label_array.shape[0] != self.dimension:
            raise ValueError(
                f"label has {label_array.shape[0]} axes, expected {self.dimension}"
            )
        lower = self.shifts + label_array * self.width
        upper = lower + self.width
        return Box(lower=lower, upper=upper)

    def cluster_capture_probability(self, cluster_diameter: float) -> float:
        """Lower bound on the probability that one box contains a set of the
        given diameter: ``(1 - diameter/width)^k`` (0 if diameter > width)."""
        if cluster_diameter < 0:
            raise ValueError("cluster_diameter must be non-negative")
        per_axis = max(0.0, 1.0 - cluster_diameter / self.width)
        return float(per_axis ** self.dimension)


class AxisIntervalPartition:
    """A partition of one axis into intervals ``[j*width + offset, (j+1)*width + offset)``.

    Used on every rotated axis in GoodCenter step 9.  The offset is 0 in the
    paper (the intervals need not be randomly shifted there because the target
    set's spread is at most the interval length and the interval is extended
    by one length on each side afterwards).
    """

    def __init__(self, width: float, offset: float = 0.0) -> None:
        check_positive(width, "width")
        self.width = float(width)
        self.offset = float(offset)

    def labels(self, values: np.ndarray) -> np.ndarray:
        """Integer interval index of every scalar value (the shared
        :func:`interval_labels` hash over the flattened input)."""
        values = np.asarray(values, dtype=float).reshape(-1)
        return interval_labels(values, self.width, self.offset)

    def interval(self, label: int) -> Tuple[float, float]:
        """The ``[low, high)`` endpoints of the interval with the given index."""
        low = self.offset + label * self.width
        return low, low + self.width

    def extended_interval(self, label: int, margin: float = None) -> Tuple[float, float]:
        """The interval extended by ``margin`` (default: one width) per side.

        This is the paper's ``I_hat`` (Figure 2): extending a heavy interval
        by the full cluster spread guarantees it contains the whole cluster.
        """
        if margin is None:
            margin = self.width
        low, high = self.interval(label)
        return low - margin, high + margin


__all__ = ["Box", "ShiftedBoxPartition", "AxisIntervalPartition", "box_labels",
           "interval_labels"]
