"""Finite grid domains ``X^d``.

The paper assumes the data universe is a finite, totally ordered set
``X \\subset R`` and identifies ``X^d`` with the real ``d``-dimensional unit
cube quantised with grid step ``1/(|X| - 1)`` (Remark 3.3 extends this to
arbitrary axis length and grid step).  The lower bound of Section 5 shows the
finiteness assumption is necessary: the error parameters must grow with
``log* |X|``.

:class:`GridDomain` captures that universe: it knows its per-axis grid, can
snap arbitrary points onto the grid, enumerate candidate radii, and report the
quantities (``|X|``, diameter, ``log*`` factors) that the parameter
calculators need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.utils.iterated_log import log_star
from repro.utils.validation import check_points


@dataclass(frozen=True)
class GridDomain:
    """A finite, axis-aligned grid domain ``X^d``.

    Parameters
    ----------
    dimension:
        The number of axes ``d``.
    side:
        The number of grid points per axis, ``|X|``; must be at least 2.
    low:
        The smallest coordinate value on every axis (default 0).
    high:
        The largest coordinate value on every axis (default 1).
    """

    dimension: int
    side: int
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValueError(f"dimension must be at least 1, got {self.dimension}")
        if self.side < 2:
            raise ValueError(f"side (|X|) must be at least 2, got {self.side}")
        if not (self.high > self.low):
            raise ValueError(
                f"high must exceed low, got low={self.low}, high={self.high}"
            )

    # ------------------------------------------------------------------ #
    # Basic geometry
    # ------------------------------------------------------------------ #
    @property
    def step(self) -> float:
        """The grid step ``(high - low) / (|X| - 1)``."""
        return (self.high - self.low) / (self.side - 1)

    @property
    def axis_length(self) -> float:
        """The length of each axis, ``high - low``."""
        return self.high - self.low

    @property
    def diameter(self) -> float:
        """The Euclidean diameter of the domain, ``axis_length * sqrt(d)``."""
        return self.axis_length * math.sqrt(self.dimension)

    @property
    def num_points(self) -> float:
        """``|X|^d`` (as a float; may overflow an int for large d)."""
        return float(self.side) ** self.dimension

    # ------------------------------------------------------------------ #
    # Paper-specific quantities
    # ------------------------------------------------------------------ #
    def log_star_factor(self, base: float = 9.0) -> float:
        """``base^{log*(2 |X| sqrt(d))}`` — the factor in Theorem 3.2."""
        argument = 2.0 * self.side * math.sqrt(self.dimension)
        return float(base) ** log_star(argument)

    def rec_concave_solution_count(self) -> int:
        """Size of the radius solution set used by GoodRadius (Algorithm 1,
        step 4): ``{0, 1/(2|X|), 2/(2|X|), ..., ceil(sqrt(d))}`` rescaled to
        the domain's grid step."""
        max_radius = self.diameter
        step = self.step / 2.0
        return int(math.ceil(max_radius / step)) + 1

    def candidate_radii(self) -> np.ndarray:
        """The grid of candidate radii GoodRadius searches over.

        Matches Algorithm 1: multiples of half the grid step from 0 up to the
        domain diameter (``ceil(sqrt(d))`` in the unit-cube normalisation).
        """
        step = self.step / 2.0
        count = self.rec_concave_solution_count()
        return step * np.arange(count, dtype=float)

    # ------------------------------------------------------------------ #
    # Point handling
    # ------------------------------------------------------------------ #
    def axis_values(self) -> np.ndarray:
        """The ``|X|`` coordinate values of one axis."""
        return np.linspace(self.low, self.high, self.side)

    def snap(self, points) -> np.ndarray:
        """Snap arbitrary points onto the grid (nearest grid node, clipped)."""
        points = check_points(points, dimension=self.dimension)
        clipped = np.clip(points, self.low, self.high)
        indices = np.rint((clipped - self.low) / self.step)
        return self.low + indices * self.step

    def contains(self, points, atol: float = 1e-9) -> bool:
        """Whether every point lies (approximately) on the grid."""
        points = check_points(points, dimension=self.dimension)
        if np.any(points < self.low - atol) or np.any(points > self.high + atol):
            return False
        offsets = (points - self.low) / self.step
        return bool(np.all(np.abs(offsets - np.rint(offsets)) <= atol / self.step))

    def sample_uniform(self, count: int, rng=None) -> np.ndarray:
        """Sample ``count`` grid points uniformly at random."""
        from repro.utils.rng import as_generator

        if count < 1:
            raise ValueError(f"count must be at least 1, got {count}")
        generator = as_generator(rng)
        indices = generator.integers(0, self.side, size=(count, self.dimension))
        return self.low + indices * self.step

    @classmethod
    def unit_cube(cls, dimension: int, side: int) -> "GridDomain":
        """The paper's canonical domain: the unit cube with ``|X|`` grid
        points per axis."""
        return cls(dimension=dimension, side=side, low=0.0, high=1.0)


__all__ = ["GridDomain"]
