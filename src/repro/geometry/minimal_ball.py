"""Non-private reference solvers for the minimal ball enclosing ``t`` points.

The paper recalls three facts about the (non-private) problem (Section 3):

1. It is NP-hard to solve exactly in general dimension (Shenmaier 2013).
2. A PTAS exists (Agarwal et al.).
3. There is a trivial factor-2 approximation: consider only balls centred at
   input points and return the smallest one containing ``t`` points.

These reference solvers provide the ``r_opt`` values experiments compare the
private algorithms against:

* :func:`smallest_ball_two_approx` — the factor-2 approximation (any d).
* :func:`smallest_interval_1d` / :func:`smallest_ball_exact_1d` — exact in
  one dimension via a sliding window over the sorted points.
* :func:`optimal_radius_lower_bound` — ``r_2approx / 2``, a certified lower
  bound on ``r_opt`` used when reporting approximation factors.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geometry.balls import Ball
from repro.neighbors import BackendLike, resolve_backend
from repro.utils.validation import check_points


def smallest_ball_two_approx(points: np.ndarray, target: int,
                             distances: np.ndarray = None,
                             backend: BackendLike = None) -> Ball:
    """Factor-2 approximation of the smallest ball containing ``target`` points.

    Returns the smallest ball *centred at an input point* that contains at
    least ``target`` input points.  Its radius is at most ``2 * r_opt``
    (paper Section 3, fact 3).

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    target:
        The number of points the ball must contain (``1 <= target <= n``).
    distances:
        Optional precomputed pairwise distance matrix (legacy path; takes
        precedence over ``backend`` when supplied).
    backend:
        Neighbor-backend selection; the backend's ``k``-th-nearest-distance
        query is exactly the per-centre radius this approximation minimises.
    """
    points = check_points(points)
    n = points.shape[0]
    if not (1 <= target <= n):
        raise ValueError(f"target must lie in [1, n={n}], got {target}")
    # For each candidate centre, the radius needed to capture `target` points
    # is the target-th smallest distance from that centre.
    if distances is not None:
        radii_needed = np.partition(distances, target - 1, axis=1)[:, target - 1]
    else:
        radii_needed = resolve_backend(points, backend).kth_distances(target)
    best_index = int(np.argmin(radii_needed))
    return Ball(center=points[best_index].copy(), radius=float(radii_needed[best_index]))


def optimal_radius_lower_bound(points: np.ndarray, target: int,
                               distances: np.ndarray = None,
                               backend: BackendLike = None) -> float:
    """A certified lower bound on ``r_opt``: half the 2-approximation radius."""
    return smallest_ball_two_approx(points, target, distances=distances,
                                    backend=backend).radius / 2.0


def smallest_interval_1d(values: np.ndarray, target: int) -> Tuple[float, float]:
    """The smallest interval ``[low, high]`` containing ``target`` of the values.

    Exact, ``O(n log n)``: sort and slide a window of ``target`` consecutive
    points.  Returns the interval endpoints.
    """
    values = np.asarray(values, dtype=float).reshape(-1)
    n = values.size
    if not (1 <= target <= n):
        raise ValueError(f"target must lie in [1, n={n}], got {target}")
    ordered = np.sort(values)
    widths = ordered[target - 1:] - ordered[: n - target + 1]
    best = int(np.argmin(widths))
    return float(ordered[best]), float(ordered[best + target - 1])


def smallest_ball_exact_1d(values: np.ndarray, target: int) -> Ball:
    """The exact smallest 1-d ball (interval) containing ``target`` points."""
    low, high = smallest_interval_1d(values, target)
    center = np.array([(low + high) / 2.0])
    return Ball(center=center, radius=(high - low) / 2.0)


def smallest_ball_exhaustive(points: np.ndarray, target: int,
                             candidate_centers: np.ndarray) -> Ball:
    """Smallest ball containing ``target`` points among explicit candidate centres.

    Used by the exponential-mechanism baseline, which searches over grid
    centres; also handy in tests for tiny exact instances.
    """
    points = check_points(points)
    candidate_centers = check_points(candidate_centers, dimension=points.shape[1])
    n = points.shape[0]
    if not (1 <= target <= n):
        raise ValueError(f"target must lie in [1, n={n}], got {target}")
    best_ball = None
    for center in candidate_centers:
        distances = np.linalg.norm(points - center[None, :], axis=1)
        radius = float(np.partition(distances, target - 1)[target - 1])
        if best_ball is None or radius < best_ball.radius:
            best_ball = Ball(center=center.copy(), radius=radius)
    return best_ball


__all__ = [
    "smallest_ball_two_approx",
    "optimal_radius_lower_bound",
    "smallest_interval_1d",
    "smallest_ball_exact_1d",
    "smallest_ball_exhaustive",
]
