"""Johnson–Lindenstrauss random projection (paper Lemma 4.10).

GoodCenter projects the input points into ``R^k`` with
``k = O(log(n/beta))`` so that the randomly-shifted-box argument — which pays
a ``2^{-k}``-ish success probability per repetition — only needs
``poly(n, 1/beta)`` repetitions, while point distances are preserved up to a
constant factor.

The projection is the classical dense Gaussian map
``f(x) = (1/sqrt(k)) A x`` with ``A`` having i.i.d. ``N(0,1)`` entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_points


def project_rows(points: np.ndarray, matrix: np.ndarray,
                 offset: np.ndarray = None) -> np.ndarray:
    """The linear image ``Y = X A^T (+ b)``, computed row-decomposably.

    This is the single definition of "apply a projection matrix to points"
    used by the JL map, the random-rotation step, and the neighbor-backend
    :class:`~repro.neighbors.base.ProjectedView` layer.  It deliberately
    avoids BLAS matrix multiplication: ``np.einsum`` (non-optimised) computes
    every output element with the same fixed-order scalar summation over the
    ``d`` axis, independently of how many rows are in the batch, so

    ``project_rows(X, A)[rows] == project_rows(X[rows], A)``  *bitwise*,

    for any row subset.  BLAS GEMM does not guarantee this (its reduction
    order can depend on the operand shapes), and the library's exact-parity
    contract — backend choice never changes a released value — requires a
    sharded backend projecting only its own rows to reproduce the parent's
    projection to the last ulp.  Determinism is bought with real (bounded)
    speed: single-threaded einsum runs a small-constant-factor slower than
    BLAS (~2x at ``n = 100k, d = k = 64`` on one core, more on many-core
    machines), and while the JL map has only ``k = O(log n)`` output
    columns, the rotation matrix is a full ``(d, d)``.  The projections are
    a vanishing share of the pipelines that use them (one pass per release,
    vs. hundreds of grid hashes), so parity wins the trade.

    Parameters
    ----------
    points:
        ``(n, d)`` rows to project.
    matrix:
        ``(k, d)`` projection matrix.
    offset:
        Optional ``(k,)`` translation added to every projected row.

    Returns
    -------
    numpy.ndarray
        ``(n, k)`` projected rows.
    """
    points = np.asarray(points, dtype=float)
    matrix = np.asarray(matrix, dtype=float)
    image = np.einsum("nd,kd->nk", points, matrix)
    if offset is not None:
        image = image + np.asarray(offset, dtype=float)[None, :]
    return image


def apply_linear_image(points: np.ndarray, matrix: np.ndarray = None,
                       offset: np.ndarray = None) -> np.ndarray:
    """``Y = X A^T (+ b)`` with identity conventions, row-decomposably.

    The single definition of "a view's linear image" shared by
    :meth:`repro.neighbors.base.ProjectedView.image` and the sharded
    backend's worker-side projection — one code path, so the two can never
    drift apart and break the bitwise parity contract.  ``matrix=None`` means
    the identity (the input is returned as-is when ``offset`` is also
    ``None``); a bare ``offset`` translates; otherwise defers to
    :func:`project_rows` (which is what makes any row subset's image bitwise
    equal to slicing the full image).
    """
    if matrix is None and offset is None:
        return points
    if matrix is None:
        return (np.asarray(points, dtype=float)
                + np.asarray(offset, dtype=float)[None, :])
    return project_rows(points, matrix, offset)


def jl_target_dimension(num_points: int, beta: float = 0.1,
                        constant: float = 46.0) -> int:
    """The projection dimension ``k`` used by GoodCenter.

    Algorithm 2 sets ``k = 46 * log(2 n / beta)``; the ``constant`` parameter
    exposes that 46 so that practical configurations can shrink it (the JL
    guarantee with distortion 1/2 needs roughly ``k >= 8/eta^2 * ln(n^2/beta)
    = 32 ln(...)``; anything proportional to ``log n`` preserves the
    algorithm's structure).
    """
    if num_points < 1:
        raise ValueError(f"num_points must be at least 1, got {num_points}")
    if not (0 < beta < 1):
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant}")
    return max(1, int(math.ceil(constant * math.log(2.0 * num_points / beta))))


@dataclass
class JohnsonLindenstrauss:
    """A fixed JL projection ``f(x) = (1/sqrt(k)) A x``.

    Parameters
    ----------
    input_dimension:
        The ambient dimension ``d``.
    output_dimension:
        The target dimension ``k``.
    rng:
        Seed or generator used to draw the projection matrix once.
    """

    input_dimension: int
    output_dimension: int
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.input_dimension < 1:
            raise ValueError("input_dimension must be at least 1")
        if self.output_dimension < 1:
            raise ValueError("output_dimension must be at least 1")
        generator = as_generator(self.rng)
        matrix = generator.standard_normal((self.output_dimension, self.input_dimension))
        self._matrix = matrix / math.sqrt(self.output_dimension)

    @property
    def matrix(self) -> np.ndarray:
        """The ``(k, d)`` projection matrix (already scaled by ``1/sqrt(k)``)."""
        return self._matrix

    def project(self, points) -> np.ndarray:
        """Project ``(n, d)`` points to ``(n, k)``.

        Delegates to :func:`project_rows`, so projecting any subset of the
        rows gives bitwise the same values as projecting all rows and
        slicing — the property the backend view layer relies on.
        """
        points = check_points(points, dimension=self.input_dimension)
        return project_rows(points, self._matrix)

    def __call__(self, points) -> np.ndarray:
        return self.project(points)

    @classmethod
    def for_points(cls, points: np.ndarray, beta: float = 0.1,
                   constant: float = 46.0, rng: RngLike = None) -> "JohnsonLindenstrauss":
        """Build a projection sized for ``points`` per Algorithm 2, step 1."""
        points = check_points(points)
        k = jl_target_dimension(points.shape[0], beta=beta, constant=constant)
        # Projecting to a dimension above the ambient dimension is pointless;
        # the identity-like behaviour is preserved by capping at d.
        k = min(k, points.shape[1]) if points.shape[1] > 1 else 1
        return cls(input_dimension=points.shape[1], output_dimension=k, rng=rng)


def jl_distortion_failure_probability(num_points: int, output_dimension: int,
                                      eta: float = 0.5) -> float:
    """Upper bound on the probability that some pairwise distance is distorted
    by more than a ``(1 +/- eta)`` factor (paper Lemma 4.10):
    ``2 n^2 exp(-eta^2 k / 8)``."""
    if not (0 < eta < 1):
        raise ValueError(f"eta must lie in (0, 1), got {eta}")
    return 2.0 * num_points ** 2 * math.exp(-eta ** 2 * output_dimension / 8.0)


__all__ = [
    "JohnsonLindenstrauss",
    "apply_linear_image",
    "jl_target_dimension",
    "jl_distortion_failure_probability",
    "project_rows",
]
