"""Ball counting and the capped-average score ``L(r, S)``.

The heart of GoodRadius (paper Section 3.1) is the function

``L(r, S) = (1/t) * max over distinct i_1..i_t of sum_j Bbar_r(x_{i_j}, S)``

where ``Bbar_r(x, S) = min(B_r(x, S), t)`` counts (capped at ``t``) the input
points within distance ``r`` of ``x``.  Averaging the ``t`` largest capped
counts reduces the sensitivity of the naive max-count score from ``Omega(t)``
to 2 (paper Lemma 4.5), which is what makes a private binary search /
RecConcave invocation possible.

This module provides vectorised implementations of those quantities plus a
:class:`Ball` value type used across the public API.  All counting routes
through the pluggable :mod:`repro.neighbors` backend layer (dense matrix,
blocked, or KD-tree — pass ``backend=`` to choose; the default ``"auto"``
picks by workload size).  The legacy ``distances=`` parameters still accept a
precomputed ``(n, n)`` matrix for callers that already hold one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neighbors import BackendLike, resolve_backend
from repro.utils.validation import check_points, check_positive


@dataclass(frozen=True)
class Ball:
    """A Euclidean ball: a centre and a radius."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float).reshape(-1)
        object.__setattr__(self, "center", center)
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    @property
    def dimension(self) -> int:
        """The ambient dimension of the ball's centre."""
        return int(self.center.shape[0])

    def contains(self, points, *, slack: float = 0.0) -> np.ndarray:
        """Boolean mask of the points within ``radius + slack`` of the centre."""
        points = check_points(points, dimension=self.dimension)
        distances = np.linalg.norm(points - self.center[None, :], axis=1)
        return distances <= self.radius + slack

    def count(self, points, *, slack: float = 0.0) -> int:
        """The number of points inside the (slack-enlarged) ball."""
        return int(np.count_nonzero(self.contains(points, slack=slack)))

    def scaled(self, factor: float) -> "Ball":
        """A ball with the same centre and ``factor`` times the radius."""
        check_positive(factor, "factor")
        return Ball(center=self.center.copy(), radius=self.radius * factor)


def ball_membership(points: np.ndarray, center: np.ndarray,
                    radius: float) -> np.ndarray:
    """Boolean mask of the points within ``radius`` of ``center``.

    The *single definition* of sphere membership shared by GoodCenter's
    step 10 (the captured count), NoisyAVG's selection predicate, and the
    neighbor-backend masked clipped-sum query
    (:meth:`repro.neighbors.base.ProjectedView.masked_clipped_sum`).  Each
    row's norm is computed independently of which other rows are present, so
    the mask is row-decomposable — a shard evaluating it over its own slice
    reproduces the parent's mask bitwise, which is what lets the clipped sum
    merge across shards without moving a byte of any release.
    """
    points = np.asarray(points, dtype=float)
    center = np.asarray(center, dtype=float).reshape(-1)
    return np.linalg.norm(points - center[None, :], axis=1) <= radius


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """The full ``(n, n)`` Euclidean distance matrix.

    GoodRadius evaluates ``L(r, S)`` at many radii; precomputing the distance
    matrix once makes each evaluation an ``O(n^2)`` comparison instead of an
    ``O(n^2 d)`` recomputation.
    """
    points = check_points(points)
    squared_norms = np.sum(points ** 2, axis=1)
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * points @ points.T
    np.maximum(squared, 0.0, out=squared)
    # The Gram-matrix formulation leaves tiny positive residues on the
    # diagonal; each point is at distance exactly zero from itself.
    np.fill_diagonal(squared, 0.0)
    return np.sqrt(squared)


def count_in_ball(points: np.ndarray, center: np.ndarray, radius: float) -> int:
    """``B_r(center, S)``: the number of points within ``radius`` of ``center``."""
    points = check_points(points)
    center = np.asarray(center, dtype=float).reshape(-1)
    if center.shape[0] != points.shape[1]:
        raise ValueError(
            f"center has dimension {center.shape[0]} but points have "
            f"dimension {points.shape[1]}"
        )
    if radius < 0:
        return 0
    distances = np.linalg.norm(points - center[None, :], axis=1)
    return int(np.count_nonzero(distances <= radius))


def counts_around_points(points: np.ndarray, radius: float,
                         distances: np.ndarray = None,
                         backend: BackendLike = None) -> np.ndarray:
    """``B_r(x_i, S)`` for every input point ``x_i`` simultaneously.

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    radius:
        The ball radius; negative radii give all-zero counts (matching the
        paper's convention ``B_r = 0`` for ``r < 0``).
    distances:
        Optional precomputed pairwise distance matrix (legacy path; takes
        precedence over ``backend`` when supplied).  Note the legacy path
        inherits the accuracy of the supplied matrix — a Gram-computed matrix
        (:func:`pairwise_distances`) puts duplicate points at distance ~1e-8,
        so its counts can differ from the backend path at boundary radii.
    backend:
        Neighbor-backend selection (name, class, instance, or ``None`` for
        automatic); see :func:`repro.neighbors.resolve_backend`.
    """
    points = check_points(points)
    if radius < 0:
        return np.zeros(points.shape[0], dtype=np.int64)
    if distances is not None:
        return np.count_nonzero(distances <= radius, axis=1).astype(np.int64)
    return resolve_backend(points, backend).radius_counts(radius)


def capped_counts_around_points(points: np.ndarray, radius: float, cap: int,
                                distances: np.ndarray = None,
                                backend: BackendLike = None) -> np.ndarray:
    """``Bbar_r(x_i, S) = min(B_r(x_i, S), cap)`` for every input point."""
    if cap < 0:
        raise ValueError(f"cap must be non-negative, got {cap}")
    counts = counts_around_points(points, radius, distances=distances,
                                  backend=backend)
    return np.minimum(counts, cap)


def capped_average_score(points: np.ndarray, radius: float, target: int,
                         distances: np.ndarray = None,
                         backend: BackendLike = None) -> float:
    """The sensitivity-2 score ``L(r, S)`` of GoodRadius (Algorithm 1, step 1).

    The average of the ``target`` largest capped counts
    ``Bbar_r(x_i, S) = min(B_r(x_i, S), target)``.

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    radius:
        The ball radius ``r``; negative values give 0.
    target:
        The target cluster size ``t`` (also the cap); must satisfy
        ``1 <= target <= n``.
    distances:
        Optional precomputed pairwise distance matrix (legacy path).
    backend:
        Neighbor-backend selection; see :func:`repro.neighbors.resolve_backend`.
    """
    points = check_points(points)
    n = points.shape[0]
    if not (1 <= target <= n):
        raise ValueError(f"target must lie in [1, n={n}], got {target}")
    if radius < 0:
        return 0.0
    if distances is not None:
        capped = capped_counts_around_points(points, radius, target,
                                             distances=distances)
        if target == n:
            top = capped
        else:
            top = np.partition(capped, n - target)[n - target:]
        return float(top.mean())
    return resolve_backend(points, backend).capped_average_score(radius, target)


def capped_average_score_profile(points: np.ndarray, radii: np.ndarray,
                                 target: int,
                                 backend: BackendLike = None) -> np.ndarray:
    """Evaluate ``L(r, S)`` on a whole grid of radii in one batched backend
    call (no per-radius Python loop, no dense matrix unless the backend is
    dense)."""
    points = check_points(points)
    radii = np.asarray(radii, dtype=float)
    return resolve_backend(points, backend).capped_average_scores(radii, target)


__all__ = [
    "Ball",
    "ball_membership",
    "pairwise_distances",
    "count_in_ball",
    "counts_around_points",
    "capped_counts_around_points",
    "capped_average_score",
    "capped_average_score_profile",
]
