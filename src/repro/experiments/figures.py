"""Experiments F1/F2 — the configurations illustrated in Figures 1 and 2.

The paper's two figures are illustrations of failure/repair modes rather than
measured plots; the reproduction therefore *verifies the phenomena they
illustrate*:

* **F1 (Figure 1).**  On the cross configuration, per-axis heavy-interval
  selection produces a box containing (almost) no data point, while the
  joint randomly-shifted-box selection used by GoodCenter finds a genuinely
  heavy box.  The experiment reports the empty-intersection rate of the naive
  strategy versus the occupancy of GoodCenter's box.
* **F2 (Figure 2).**  A heavy interval of length ``r`` captures only part of a
  diameter-``r`` cluster, but after extending it by ``r`` on each side it
  captures all of it — the experiment measures both capture fractions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.core.good_center import good_center
from repro.datasets.adversarial import (
    figure1_cross_configuration,
    figure2_interval_configuration,
)
from repro.experiments.harness import PipelinedRuns
from repro.geometry.boxes import AxisIntervalPartition
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def _naive_axiswise_box(points: np.ndarray, interval_length: float) -> np.ndarray:
    """The Figure-1 "first attempt": pick the heaviest interval per axis and
    return the count of points inside the resulting box."""
    masks = []
    for axis in range(points.shape[1]):
        partition = AxisIntervalPartition(width=interval_length)
        labels = partition.labels(points[:, axis])
        values, counts = np.unique(labels, return_counts=True)
        heavy = int(values[np.argmax(counts)])
        low, high = partition.interval(heavy)
        masks.append((points[:, axis] >= low) & (points[:, axis] < high))
    joint = np.logical_and.reduce(masks)
    return joint


def run_figure_configs(epsilon: float = 2.0, delta: float = 1e-6,
                       rng=None,
                       backend: BackendLike = "auto",
                       runs: Optional[PipelinedRuns] = None) -> List[Dict[str, object]]:
    """Verify the Figure-1 and Figure-2 phenomena.

    ``backend`` is forwarded to the GoodCenter run (release-neutral); a
    shared :class:`~repro.experiments.harness.PipelinedRuns` resolves the
    cross dataset's backend once and keeps it alive across calls."""
    generator = as_generator(rng)
    data_rng, center_rng = spawn_generators(generator, 2)
    rows: List[Dict[str, object]] = []
    owns_runs = runs is None
    if runs is None:
        runs = PipelinedRuns(backend)

    # Figure 1: naive per-axis selection vs GoodCenter's joint box.
    cross = figure1_cross_configuration(points_per_arm=400, rng=data_rng)
    interval_length = 0.1
    naive_mask = _naive_axiswise_box(cross, interval_length)
    target = 300
    try:
        result = good_center(cross, radius=0.05, target=target,
                             params=PrivacyParams(epsilon, delta),
                             rng=center_rng,
                             backend=runs.backend_for(cross))
    finally:
        if owns_runs:
            runs.close()
    rows.append({
        "figure": "F1", "n": cross.shape[0],
        "naive_box_count": int(np.count_nonzero(naive_mask)),
        "good_center_found": result.found,
        "good_center_captured": result.captured_count if result.found else 0,
        "target": target,
    })

    # Figure 2: interval capture before and after extension.
    values, offset = figure2_interval_configuration(cluster_size=400,
                                                    cluster_radius=0.05,
                                                    interval_length=0.05,
                                                    rng=data_rng)
    partition = AxisIntervalPartition(width=0.05, offset=offset)
    labels = partition.labels(values[:, 0])
    unique, counts = np.unique(labels, return_counts=True)
    heavy = int(unique[np.argmax(counts)])
    low, high = partition.interval(heavy)
    captured_plain = int(np.count_nonzero((values[:, 0] >= low) & (values[:, 0] < high)))
    low_ext, high_ext = partition.extended_interval(heavy)
    captured_extended = int(np.count_nonzero(
        (values[:, 0] >= low_ext) & (values[:, 0] < high_ext)))
    rows.append({
        "figure": "F2", "n": values.shape[0],
        "heavy_interval_capture": captured_plain,
        "extended_interval_capture": captured_extended,
        "cluster_size": values.shape[0],
    })
    return rows


__all__ = ["run_figure_configs"]
