"""Experiment E1 — the empirical analogue of Table 1.

Table 1 of the paper compares four approaches to the 1-cluster problem on
three axes: the needed cluster size ``t``, the additive loss ``Delta`` and the
radius approximation factor ``w``.  This experiment runs all four on the same
planted-cluster instance and reports the measured ``Delta`` and ``w``:

* ``this_work`` — the GoodRadius + GoodCenter pipeline (Theorem 3.2).
* ``private_aggregation`` — the NRS07-style majority-cluster baseline.
* ``exponential_mechanism`` — the grid-enumeration baseline (small domains,
  d <= 2 only).
* ``threshold_release`` — the d = 1 query-release baseline.
* ``nonprivate`` — the reference (loss 0, ratio 1 by construction).

The expected shape (matching the table): the exponential mechanism and the
threshold release achieve ``w ~ 1`` but are restricted (runtime / d=1);
private aggregation only works when the cluster is a majority and pays a
``sqrt(d)``-flavoured radius factor; this work handles minority clusters in
any dimension with a moderate radius factor.

The runner is *pipelined*: each repetition's dataset gets one long-lived
backend (shared by the reference, the solvers, and the evaluation), every
method's comparison-ball coverage count is submitted as an asynchronous
query plan the moment the method finishes, and the rows are assembled only
after the sweep — in submission order, so the output is byte-identical to a
serial run at any worker count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.baselines.exponential_ball import exponential_mechanism_cluster
from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.baselines.private_aggregation import private_aggregation_cluster
from repro.baselines.threshold_release import threshold_release_cluster_1d
from repro.core.one_cluster import one_cluster
from repro.datasets.synthetic import planted_cluster
from repro.experiments.harness import (
    PipelinedRuns,
    comparison_ball,
    coverage_counts_result,
    evaluate_result,
    submit_coverage_counts,
    timed,
)
from repro.geometry.grid import GridDomain
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def run_table1(n: int = 2000, dimension: int = 2, cluster_fraction: float = 0.3,
               epsilon: float = 2.0, delta: float = 1e-6,
               cluster_radius: float = 0.05, grid_side: int = 33,
               repetitions: int = 1, rng=None,
               backend: BackendLike = "auto",
               runs: Optional[PipelinedRuns] = None) -> List[Dict[str, object]]:
    """Run every Table-1 method on the same planted-cluster instance.

    Parameters
    ----------
    n, dimension, cluster_fraction, cluster_radius:
        Workload: ``n`` points, a planted cluster holding
        ``cluster_fraction * n`` of them (a *minority* by default, which is
        the regime the paper targets).
    epsilon, delta:
        Privacy budget for every private method.
    grid_side:
        ``|X|`` of the small grid used by the exponential-mechanism baseline
        (kept small because that baseline enumerates ``|X|^d`` centres).
    repetitions:
        Number of independent repetitions; rows report per-repetition results.
    rng:
        Seed or generator.
    backend:
        Neighbor-backend selection for the solvers that accept one (this
        work, the exponential-mechanism baseline, and the non-private
        reference); ``"auto"`` routes large bench configs away from the
        unconditional dense structures (release-neutral).
    runs:
        An existing :class:`~repro.experiments.harness.PipelinedRuns` to
        share backends with (e.g. across several experiment calls); when
        omitted one is created for this call and closed afterwards.
    """
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    owns_runs = runs is None
    if runs is None:
        runs = PipelinedRuns(backend)
    # One entry per eventual row, in row order:
    # (meta, method, result, seconds, reference, points, coverage future).
    pending: List[tuple] = []
    try:
        for repetition in range(repetitions):
            data_rng, *method_rngs = spawn_generators(generator, 5)
            data = planted_cluster(n=n, d=dimension,
                                   cluster_size=int(cluster_fraction * n),
                                   cluster_radius=cluster_radius,
                                   center=[0.28] * dimension, rng=data_rng)
            target = int(0.8 * cluster_fraction * n)
            engine = runs.backend_for(data.points)
            reference = nonprivate_one_cluster(data.points, target,
                                               backend=engine)
            reference_radius = max(reference.ball.radius, 1e-12)

            def add_row(method: str, result, seconds: float,
                        engine=engine, reference=reference,
                        reference_radius=reference_radius,
                        points=data.points, target=target,
                        repetition=repetition) -> None:
                # Kick the coverage count off asynchronously; it merges while
                # the next method (or repetition) runs.
                future = None
                if result.found:
                    future = submit_coverage_counts(
                        engine, [comparison_ball(result, reference_radius)]
                    )
                meta = {"repetition": repetition, "n": n, "d": dimension,
                        "t": target, "epsilon": epsilon}
                pending.append((meta, method, result, seconds, reference,
                                points, target, future))

            add_row("nonprivate", reference, 0.0)

            result, seconds = timed(one_cluster, data.points, target, params,
                                    rng=method_rngs[0], backend=engine)
            add_row("this_work", result, seconds)

            result, seconds = timed(private_aggregation_cluster, data.points,
                                    target, params, rng=method_rngs[1])
            add_row("private_aggregation", result, seconds)

            if dimension <= 2:
                domain = GridDomain.unit_cube(dimension, grid_side)
                snapped = domain.snap(np.clip(data.points, 0.0, 1.0))
                result, seconds = timed(exponential_mechanism_cluster, snapped,
                                        target, params, domain,
                                        rng=method_rngs[2],
                                        backend=runs.backend_for(snapped))
                add_row("exponential_mechanism", result, seconds)

            if dimension == 1:
                result, seconds = timed(threshold_release_cluster_1d,
                                        data.points, target, params,
                                        rng=method_rngs[3])
                add_row("threshold_release", result, seconds)

        # Resolve in submission order: deterministic merges make the rows
        # byte-identical to a serial run regardless of worker count.
        rows: List[Dict[str, object]] = []
        for meta, method, result, seconds, reference, points, target, future in pending:
            captured = (coverage_counts_result(future)[0]
                        if future is not None else None)
            record = evaluate_result(method, points, target, result, seconds,
                                     reference=reference, captured=captured)
            row = dict(meta)
            row.update(record.as_dict())
            rows.append(row)
        return rows
    finally:
        if owns_runs:
            runs.close()


__all__ = ["run_table1"]
