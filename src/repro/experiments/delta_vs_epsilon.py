"""Experiment E3 — additive loss versus epsilon (Theorem 3.2).

Theorem 3.2 promises an additive cluster-size loss
``Delta = O((1/epsilon) * log(n/delta))``.  The experiment fixes the workload
and sweeps epsilon; the measured loss (and centre error) should shrink roughly
like ``1/epsilon``.  Both search strategies for GoodRadius (RecConcave-style
and plain noisy binary search) are run so their losses can be compared — the
paper's point being that the binary search pays an extra ``log |X|`` factor.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.one_cluster import one_cluster
from repro.datasets.synthetic import planted_cluster
from repro.experiments.harness import evaluate_result, timed
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def run_delta_vs_epsilon(epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
                         n: int = 2000, dimension: int = 2,
                         cluster_fraction: float = 0.35,
                         delta: float = 1e-6, cluster_radius: float = 0.05,
                         rng=None,
                         backend: BackendLike = "auto") -> List[Dict[str, object]]:
    """Sweep epsilon and measure the additive loss for both radius methods.

    ``backend`` routes the solver and the non-private reference through
    :func:`repro.neighbors.auto_backend` by default (release-neutral)."""
    generator = as_generator(rng)
    rows: List[Dict[str, object]] = []
    data_rng, *solver_rngs = spawn_generators(generator, 1 + 2 * len(epsilons))
    data = planted_cluster(n=n, d=dimension,
                           cluster_size=int(cluster_fraction * n),
                           cluster_radius=cluster_radius, rng=data_rng)
    target = int(0.8 * cluster_fraction * n)
    for index, epsilon in enumerate(epsilons):
        params = PrivacyParams(epsilon, delta)
        for offset, method in enumerate(("recconcave", "binary_search")):
            config = OneClusterConfig(radius_method=method)
            result, seconds = timed(one_cluster, data.points, target, params,
                                    config=config,
                                    rng=solver_rngs[2 * index + offset],
                                    backend=backend)
            record = evaluate_result(f"this_work[{method}]", data.points, target,
                                     result, seconds, backend=backend)
            row = {"epsilon": epsilon, "n": n, "d": dimension, "t": target,
                   "radius_method": method,
                   "gamma": result.radius_result.gamma}
            row.update(record.as_dict())
            rows.append(row)
    return rows


__all__ = ["run_delta_vs_epsilon"]
