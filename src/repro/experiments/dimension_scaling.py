"""Experiment E4 — behaviour as the dimension grows (Theorem 3.2).

Theorem 3.2 requires ``t >= ~ sqrt(d)/epsilon`` and promises a radius factor
independent of ``d`` (only ``sqrt(log n)``), whereas the private-aggregation
baseline pays ``w = O(sqrt(d)/epsilon)``.  The experiment sweeps the dimension
with everything else fixed and records, for both methods, the centre error and
radius ratio; the expected shape is a much slower degradation for this work
than for the baseline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.accounting.params import PrivacyParams
from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.baselines.private_aggregation import private_aggregation_cluster
from repro.core.one_cluster import one_cluster
from repro.core.params import minimum_cluster_size
from repro.datasets.synthetic import planted_cluster
from repro.experiments.harness import evaluate_result, timed
from repro.geometry.grid import GridDomain
from repro.utils.rng import as_generator, spawn_generators


def run_dimension_scaling(dimensions: Sequence[int] = (2, 4, 8, 16),
                          n: int = 2000, cluster_fraction: float = 0.3,
                          epsilon: float = 2.0, delta: float = 1e-6,
                          cluster_radius: float = 0.05,
                          backend: str = "auto",
                          rng=None) -> List[Dict[str, object]]:
    """Sweep the dimension and compare against the aggregation baseline.

    ``backend`` selects the neighbor backend of this work's solver (the
    default ``"auto"`` hands low dimensions to the KD-tree and high
    dimensions to the chunked strategy, which is itself a dimension-scaling
    story worth sweeping).
    """
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    rows: List[Dict[str, object]] = []
    for dimension in dimensions:
        data_rng, ours_rng, baseline_rng = spawn_generators(generator, 3)
        data = planted_cluster(n=n, d=dimension,
                               cluster_size=int(cluster_fraction * n),
                               cluster_radius=cluster_radius,
                               center=[0.28] * dimension, rng=data_rng)
        target = int(0.8 * cluster_fraction * n)
        domain = GridDomain.unit_cube(dimension, 1025)
        theory_t = minimum_cluster_size(domain, params, beta=0.1, num_points=n)
        reference = nonprivate_one_cluster(data.points, target, backend=backend)

        result, seconds = timed(one_cluster, data.points, target, params,
                                rng=ours_rng, backend=backend)
        record = evaluate_result("this_work", data.points, target, result,
                                 seconds, reference=reference)
        row = {"d": dimension, "n": n, "t": target, "backend": backend,
               "theory_min_t": theory_t}
        row.update(record.as_dict())
        rows.append(row)

        result, seconds = timed(private_aggregation_cluster, data.points, target,
                                params, rng=baseline_rng)
        record = evaluate_result("private_aggregation", data.points, target,
                                 result, seconds, reference=reference)
        row = {"d": dimension, "n": n, "t": target, "backend": backend,
               "theory_min_t": theory_t}
        row.update(record.as_dict())
        rows.append(row)
    return rows


__all__ = ["run_dimension_scaling"]
