"""Experiment E2 — radius approximation factor versus n (Theorem 3.2).

Theorem 3.2 promises ``w = O(sqrt(log n))``: the released ball's radius grows
only with the square root of the logarithm of the database size, not with the
dimension.  The experiment plants a fixed-radius cluster, sweeps ``n`` (with
the target ``t`` a fixed fraction of ``n``), and records the measured radius
ratio; the expected shape is a slowly growing (roughly sqrt-log) curve,
contrasted with the ``sqrt(d)``-scaling of the private-aggregation baseline
measured in E4.

The sweep can additionally compare neighbor backends (``backends=``, e.g.
``("dense", "tree", "sharded")``): every backend returns identical scores, so
the per-``n`` rows differ only in the ``seconds`` column — which is exactly
the backend speedup the refactor is after.  The multi-process sharded backend
can also be requested per run through
``OneClusterConfig(neighbor_backend="sharded", neighbor_workers=...)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.accounting.params import PrivacyParams
from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.core.one_cluster import one_cluster
from repro.core.params import radius_approximation_factor
from repro.datasets.synthetic import planted_cluster
from repro.experiments.harness import evaluate_result, timed
from repro.utils.rng import as_generator, spawn_generators


def run_radius_scaling(sizes: Sequence[int] = (500, 1000, 2000, 4000),
                       dimension: int = 4, cluster_fraction: float = 0.35,
                       epsilon: float = 2.0, delta: float = 1e-6,
                       cluster_radius: float = 0.05,
                       backends: Sequence[str] = ("auto",),
                       rng=None) -> List[Dict[str, object]]:
    """Sweep ``n`` (and optionally neighbor backends) and measure the
    empirical radius approximation factor and wall-clock time."""
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    rows: List[Dict[str, object]] = []
    for n in sizes:
        data_rng, solver_rng = spawn_generators(generator, 2)
        data = planted_cluster(n=n, d=dimension,
                               cluster_size=int(cluster_fraction * n),
                               cluster_radius=cluster_radius, rng=data_rng)
        target = int(0.8 * cluster_fraction * n)
        solver_seed = solver_rng.integers(0, 2 ** 63)
        reference = nonprivate_one_cluster(data.points, target,
                                           backend=backends[0])
        for backend in backends:
            # Same seed per backend: identical scores mean identical output,
            # so the sweep isolates the wall-clock difference.
            result, seconds = timed(one_cluster, data.points, target, params,
                                    rng=int(solver_seed), backend=backend)
            record = evaluate_result("this_work", data.points, target, result,
                                     seconds, reference=reference)
            row = {"n": n, "d": dimension, "t": target, "backend": backend,
                   "theory_w": radius_approximation_factor(n)}
            row.update(record.as_dict())
            rows.append(row)
    return rows


__all__ = ["run_radius_scaling"]
