"""Experiment E10 — GoodCenter in isolation (Lemma 3.7).

GoodCenter is handed the *true* planted radius (taking GoodRadius out of the
loop) and asked to locate the centre.  Lemma 3.7 promises a ball of radius
``O(r sqrt(log n))`` around the output capturing ``t - O(log(n)/epsilon)``
points; the experiment records the centre error in units of the planted
radius and how many points the released ball captures, sweeping the target
cluster size to show the ``1/(epsilon t)`` decay of the final averaging noise.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.core.good_center import good_center
from repro.datasets.synthetic import planted_cluster
from repro.experiments.harness import timed
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def run_good_center(cluster_sizes: Sequence[int] = (400, 800, 1600),
                    n_multiplier: int = 3, dimension: int = 4,
                    cluster_radius: float = 0.05, epsilon: float = 1.0,
                    delta: float = 1e-6, rng=None,
                    backend: BackendLike = "auto") -> List[Dict[str, object]]:
    """Sweep the cluster size and measure the centre recovery error.

    ``backend`` routes the solver's data-heavy stages through
    :func:`repro.neighbors.auto_backend` by default, so large bench configs
    never build an unconditional dense structure (backend choice is
    release-neutral).
    """
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    rows: List[Dict[str, object]] = []
    for cluster_size in cluster_sizes:
        n = n_multiplier * cluster_size
        data_rng, solver_rng = spawn_generators(generator, 2)
        data = planted_cluster(n=n, d=dimension, cluster_size=cluster_size,
                               cluster_radius=cluster_radius, rng=data_rng)
        target = int(0.8 * cluster_size)
        result, seconds = timed(good_center, data.points, cluster_radius,
                                target, params, rng=solver_rng,
                                backend=backend)
        if result.found:
            error = float(np.linalg.norm(result.center - data.true_ball.center))
            distances = np.sort(np.linalg.norm(
                data.points - result.center[None, :], axis=1))
            effective_radius = float(distances[min(target, n) - 1])
        else:
            error = float("nan")
            effective_radius = float("nan")
        rows.append({
            "cluster_size": cluster_size, "n": n, "d": dimension, "t": target,
            "epsilon": epsilon, "found": result.found,
            "center_error_over_r": error / cluster_radius,
            "effective_radius_over_r": effective_radius / cluster_radius,
            "attempts": result.attempts, "seconds": seconds,
        })
    return rows


__all__ = ["run_good_center"]
