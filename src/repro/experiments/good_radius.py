"""Experiment E9 — GoodRadius in isolation (Lemma 3.6).

Lemma 3.6 promises that the released radius ``z`` satisfies
``z <= 4 r_opt`` and that some ball of radius ``z`` captures
``t - O(Gamma)`` points.  The experiment sweeps the planted-cluster radius
and records the measured ratio ``z / r_opt`` (expected: between ~1 and 4) and
the best capture count at radius ``z`` (expected: close to the planted size).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.core.good_radius import good_radius
from repro.datasets.synthetic import planted_cluster
from repro.experiments.harness import timed
from repro.geometry.balls import counts_around_points
from repro.geometry.minimal_ball import smallest_ball_two_approx
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def run_good_radius(cluster_radii: Sequence[float] = (0.02, 0.05, 0.1),
                    n: int = 2000, dimension: int = 4,
                    cluster_fraction: float = 0.35, epsilon: float = 1.0,
                    delta: float = 1e-6, rng=None,
                    backend: BackendLike = "auto") -> List[Dict[str, object]]:
    """Sweep the planted radius and check the Lemma 3.6 guarantees.

    ``backend`` covers the solver *and* the non-private evaluation queries
    (the 2-approximation reference and the capture counts), so no part of
    the experiment builds a dense distance structure at large ``n``.
    """
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    rows: List[Dict[str, object]] = []
    for cluster_radius in cluster_radii:
        data_rng, solver_rng = spawn_generators(generator, 2)
        data = planted_cluster(n=n, d=dimension,
                               cluster_size=int(cluster_fraction * n),
                               cluster_radius=cluster_radius, rng=data_rng)
        target = int(0.8 * cluster_fraction * n)
        reference = smallest_ball_two_approx(data.points, target,
                                             backend=backend)
        r_opt_upper = reference.radius            # <= 2 r_opt
        r_opt_lower = reference.radius / 2.0      # >= r_opt / 2

        result, seconds = timed(good_radius, data.points, target, params,
                                rng=solver_rng, backend=backend)
        best_capture = int(np.max(counts_around_points(data.points, result.radius,
                                                       backend=backend)))
        rows.append({
            "cluster_radius": cluster_radius, "n": n, "d": dimension,
            "t": target, "epsilon": epsilon,
            "released_radius": result.radius,
            "ratio_vs_2approx": result.radius / max(r_opt_upper, 1e-12),
            "ratio_vs_lower_bound": result.radius / max(r_opt_lower, 1e-12),
            "best_capture_at_radius": best_capture,
            "gamma": result.gamma,
            "seconds": seconds,
        })
    return rows


__all__ = ["run_good_radius"]
