"""Experiment harness: one module per table/figure analogue (see DESIGN.md).

Every experiment exposes a ``run_*`` function returning a list of plain-dict
rows plus a ``format_table`` helper, so the pytest-benchmark targets under
``benchmarks/`` and the EXPERIMENTS.md generation share one code path.
"""

from repro.experiments.harness import (
    EvaluationRecord,
    PipelinedRuns,
    evaluate_result,
    format_table,
)
from repro.experiments.table1 import run_table1
from repro.experiments.radius_scaling import run_radius_scaling
from repro.experiments.delta_vs_epsilon import run_delta_vs_epsilon
from repro.experiments.dimension_scaling import run_dimension_scaling
from repro.experiments.k_clustering import run_k_clustering
from repro.experiments.sample_aggregate import run_sample_aggregate
from repro.experiments.lower_bound import run_lower_bound
from repro.experiments.outliers import run_outliers
from repro.experiments.good_radius import run_good_radius
from repro.experiments.good_center import run_good_center
from repro.experiments.figures import run_figure_configs

__all__ = [
    "EvaluationRecord",
    "PipelinedRuns",
    "evaluate_result",
    "format_table",
    "run_table1",
    "run_radius_scaling",
    "run_delta_vs_epsilon",
    "run_dimension_scaling",
    "run_k_clustering",
    "run_sample_aggregate",
    "run_lower_bound",
    "run_outliers",
    "run_good_radius",
    "run_good_center",
    "run_figure_configs",
]
