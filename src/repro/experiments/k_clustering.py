"""Experiment E5 — the k-clustering heuristic (Observation 3.5).

Iterating the 1-cluster algorithm ``k`` times (removing covered points in
between) should cover most of a dataset made of ``k`` well-separated blobs.
The experiment generates ``k`` Gaussian blobs, runs the heuristic, and records
the fraction of points covered and how many blob centres were recovered (a
blob counts as recovered when some released ball's centre lies within three
blob standard deviations of it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.clustering.k_cluster import k_cluster
from repro.datasets.synthetic import gaussian_blobs
from repro.experiments.harness import (
    PipelinedRuns,
    coverage_counts_result,
    timed,
)
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def run_k_clustering(k_values=(2, 3, 4), n: int = 3000, dimension: int = 2,
                     spread: float = 0.03, epsilon: float = 4.0,
                     delta: float = 1e-6, rng=None,
                     backend: BackendLike = "auto",
                     runs: Optional[PipelinedRuns] = None) -> List[Dict[str, object]]:
    """Sweep the number of blobs/balls and measure coverage and recovery.

    ``backend`` routes each 1-cluster iteration through
    :func:`repro.neighbors.auto_backend` by default (release-neutral).  The
    per-trial ball-coverage diagnostic (``max_ball_count``) is counted
    through asynchronous query plans on a per-dataset long-lived backend
    (``runs``, created on demand) and merged only after the whole sweep, so
    trial ``k+1`` runs while trial ``k``'s counts are still in flight."""
    generator = as_generator(rng)
    owns_runs = runs is None
    if runs is None:
        runs = PipelinedRuns(backend)
    pending: List[tuple] = []
    try:
        for k in k_values:
            data_rng, solver_rng = spawn_generators(generator, 2)
            points, labels, centers = gaussian_blobs(n=n, d=dimension, k=k,
                                                     spread=spread, rng=data_rng)
            params = PrivacyParams(epsilon, delta)
            result, seconds = timed(k_cluster, points, k, params,
                                    target=max(1, n // (2 * k)), rng=solver_rng,
                                    backend=backend)
            recovered = 0
            for center in centers:
                distances = [float(np.linalg.norm(ball.center - center))
                             for ball in result.balls]
                if distances and min(distances) <= 3.0 * spread * np.sqrt(dimension):
                    recovered += 1
            future = (runs.submit_coverage(points, result.balls)
                      if result.balls else None)
            pending.append(({
                "k": k, "n": n, "d": dimension, "epsilon": epsilon,
                "balls_found": result.num_found,
                "covered_fraction": result.covered_fraction,
                "centers_recovered": recovered,
                "seconds": seconds,
            }, future))

        rows: List[Dict[str, object]] = []
        for row, future in pending:
            counts = coverage_counts_result(future) if future is not None else []
            row["max_ball_count"] = max(counts) if counts else 0
            rows.append(row)
        return rows
    finally:
        if owns_runs:
            runs.close()


__all__ = ["run_k_clustering"]
