"""Experiment E6 — sample and aggregate (paper Section 6, Thm 6.3 vs Thm 6.2).

The paper's claim: aggregating sub-sample analysis outputs with the 1-cluster
algorithm (Theorem 6.3) beats differentially private averaging (the
Theorem-6.2 / GUPT-style approach) because (a) it tolerates a *minority* of
well-clustered outputs and (b) it does not pay a ``sqrt(d)`` factor.  The
experiment estimates the dominant component's mean of a Gaussian mixture via
both aggregators and records the estimation error; the expected shape is that
the noisy-average aggregator degrades sharply as the secondary component's
weight grows (the sub-sample outputs stop being unimodal) while the 1-cluster
aggregator keeps tracking the dominant mean.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.datasets.synthetic import mixture_of_gaussians
from repro.experiments.harness import timed
from repro.neighbors import BackendLike
from repro.sample_aggregate.aggregators import noisy_average_aggregator
from repro.sample_aggregate.applications import private_gmm_center_estimator
from repro.utils.rng import as_generator, spawn_generators


def run_sample_aggregate(secondary_weights: Sequence[float] = (0.0, 0.2, 0.4),
                         n: int = 12000, dimension: int = 2,
                         block_size: int = 30, epsilon: float = 8.0,
                         delta: float = 1e-4, separation: float = 0.5,
                         subsample_fraction: float = 0.5,
                         alpha: float = 0.8,
                         backend: BackendLike = None,
                         rng=None) -> List[Dict[str, object]]:
    """Compare the 1-cluster aggregator with noisy averaging on GMM data.

    The aggregation budget is deliberately generous: the overall guarantee is
    amplified down by the sub-sampling lemma, and the point of the experiment
    is the *relative* behaviour of the two aggregators as the analysis outputs
    become multi-modal.

    ``backend`` (a name or class) is forwarded into
    :func:`~repro.sample_aggregate.framework.sample_and_aggregate`, where it
    accelerates the default 1-cluster aggregation (release-neutral).
    """
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    rows: List[Dict[str, object]] = []
    dominant_mean = np.full(dimension, 0.3)
    secondary_mean = dominant_mean + separation / np.sqrt(dimension)
    for weight in secondary_weights:
        data_rng, ours_rng, baseline_rng = spawn_generators(generator, 3)
        weights = [1.0 - weight, weight] if weight > 0 else [1.0, 0.0]
        points, _ = mixture_of_gaussians(
            n=n, d=dimension, means=[dominant_mean, secondary_mean],
            stddev=0.05, weights=weights, rng=data_rng,
        )
        for method, aggregator, method_rng in (
            ("one_cluster_aggregator", None, ours_rng),
            ("noisy_average_aggregator",
             noisy_average_aggregator(clip_radius=1.0,
                                      center=np.full(dimension, 0.5)),
             baseline_rng),
        ):
            result, seconds = timed(
                private_gmm_center_estimator, points, block_size, params,
                num_components=2, aggregator=aggregator, alpha=alpha,
                subsample_fraction=subsample_fraction, backend=backend,
                rng=method_rng,
            )
            if result.found:
                error = float(np.linalg.norm(result.point - dominant_mean))
            else:
                error = float("nan")
            rows.append({
                "secondary_weight": weight, "method": method, "n": n,
                "d": dimension, "block_size": block_size, "epsilon": epsilon,
                "found": result.found, "error": error,
                "num_blocks": result.num_blocks, "target": result.target,
                "seconds": seconds,
            })
    return rows


__all__ = ["run_sample_aggregate"]
