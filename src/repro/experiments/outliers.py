"""Experiment E8 — private outlier screening (paper Section 1.1).

A screening ball targeting 90% of the data should separate a dominant cluster
from injected outliers.  The experiment sweeps the contamination fraction and
records precision/recall of the released predicate against the ground-truth
outlier labels, plus the reduction in the data's diameter after screening
(the quantity that determines how much less noise a follow-up global-
sensitivity analysis would need).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.clustering.outliers import outlier_ball
from repro.datasets.synthetic import clustered_with_outliers
from repro.experiments.harness import timed
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def run_outliers(contamination_levels: Sequence[float] = (0.05, 0.1, 0.2),
                 n: int = 2000, dimension: int = 2, epsilon: float = 2.0,
                 delta: float = 1e-6, rng=None,
                 backend: BackendLike = "auto") -> List[Dict[str, object]]:
    """Sweep the outlier fraction and measure screening quality.

    ``backend`` routes the screening solver's ``t = 0.9 n`` profile through
    :func:`repro.neighbors.auto_backend` by default — the streaming
    large-target walk instead of an unconditional dense structure
    (release-neutral)."""
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    rows: List[Dict[str, object]] = []
    for contamination in contamination_levels:
        data_rng, solver_rng = spawn_generators(generator, 2)
        points, is_outlier = clustered_with_outliers(
            n=n, d=dimension, outlier_fraction=contamination, rng=data_rng
        )
        inlier_fraction = 1.0 - contamination
        screen, seconds = timed(outlier_ball, points, params,
                                inlier_fraction=inlier_fraction, rng=solver_rng,
                                backend=backend)
        if screen.found:
            flagged = screen.outlier_mask(points)
            true_positive = int(np.count_nonzero(flagged & is_outlier))
            precision = true_positive / max(1, int(np.count_nonzero(flagged)))
            recall = true_positive / max(1, int(np.count_nonzero(is_outlier)))
            inliers = points[~flagged]
            diameter_before = float(np.linalg.norm(points.max(axis=0) - points.min(axis=0)))
            diameter_after = float(np.linalg.norm(inliers.max(axis=0) - inliers.min(axis=0))) \
                if inliers.shape[0] > 0 else 0.0
        else:
            precision = recall = float("nan")
            diameter_before = diameter_after = float("nan")
        rows.append({
            "contamination": contamination, "n": n, "d": dimension,
            "epsilon": epsilon, "found": screen.found,
            "precision": precision, "recall": recall,
            "diameter_before": diameter_before, "diameter_after": diameter_after,
            "seconds": seconds,
        })
    return rows


__all__ = ["run_outliers"]
