"""Experiment E7 — the interior-point reduction (paper Section 5).

Theorem 5.3 reduces the interior point problem to the 1-cluster problem; the
experiment demonstrates the reduction empirically by running Algorithm
IntPoint (backed by our 1-cluster solver) on databases drawn from domains of
increasing size and recording how often the output is indeed an interior
point.  The companion theory columns report the ``Omega(log* |X|)`` sample-
complexity lower bound of Theorem 5.2, which is what makes the problem (and
hence the 1-cluster problem) impossible over infinite domains.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.experiments.harness import PipelinedRuns, timed
from repro.lowerbound.int_point import int_point
from repro.lowerbound.interior_point import (
    interior_point_sample_complexity_lower_bound,
    is_interior_point,
)
from repro.neighbors import BackendLike
from repro.utils.rng import as_generator, spawn_generators


def run_lower_bound(domain_sizes: Sequence[int] = (2 ** 8, 2 ** 16, 2 ** 32),
                    m: int = 600, epsilon: float = 2.0, delta: float = 1e-6,
                    repetitions: int = 3, rng=None,
                    backend: BackendLike = "auto",
                    runs: Optional[PipelinedRuns] = None) -> List[Dict[str, object]]:
    """Run the IntPoint reduction over increasingly large domains.

    ``backend`` is forwarded to the underlying 1-cluster solver
    (release-neutral; ``"auto"`` keeps large-``m`` bench configs off the
    dense paths).  When a :class:`~repro.experiments.harness.PipelinedRuns`
    is supplied, each trial additionally routes its step-4 depth scores
    through a backend query plan on a per-database engine managed by the
    helper (bitwise-identical value, see
    :func:`~repro.lowerbound.int_point.int_point`)."""
    generator = as_generator(rng)
    params = PrivacyParams(epsilon, delta)
    rows: List[Dict[str, object]] = []
    for domain_size in domain_sizes:
        successes = 0
        total_seconds = 0.0
        for _ in range(repetitions):
            data_rng, solver_rng = spawn_generators(generator, 2)
            data_generator = as_generator(data_rng)
            # Concentrated integer data inside a huge domain: the interesting
            # regime for the interior point problem.
            center = data_generator.integers(domain_size // 4, 3 * domain_size // 4)
            values = center + data_generator.integers(-domain_size // 8,
                                                      domain_size // 8, size=m)
            values = np.clip(values, 0, domain_size - 1).astype(float)
            trial_backend: BackendLike = backend
            if runs is not None:
                trial_backend = runs.backend_for(values.reshape(-1, 1))
            result, seconds = timed(int_point, values, cluster_size=m // 2,
                                    params=params, rng=solver_rng,
                                    backend=trial_backend)
            total_seconds += seconds
            if is_interior_point(result.value, values):
                successes += 1
        rows.append({
            "domain_size": float(domain_size), "m": m, "epsilon": epsilon,
            "success_rate": successes / repetitions,
            "theory_min_samples": interior_point_sample_complexity_lower_bound(domain_size),
            "mean_seconds": total_seconds / repetitions,
        })
    return rows


__all__ = ["run_lower_bound"]
