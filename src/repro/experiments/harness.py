"""Shared evaluation helpers for the experiment harness.

Every experiment measures the two quantities Table 1 of the paper compares —
the *additive loss in cluster size* ``Delta`` and the *radius approximation
factor* ``w`` — against a non-private reference solution, plus runtime and
whether the private run succeeded at all.  :func:`evaluate_result` centralises
that bookkeeping, and :func:`format_table` renders rows as the fixed-width
text tables EXPERIMENTS.md quotes.

For streaming evaluation workloads the harness also speaks the backend
layer's query-plan dialect: :func:`submit_coverage_counts` bundles the
coverage counts of a whole collection of released balls into **one**
:class:`~repro.neighbors.QueryPlan` (a single round trip per shard on the
sharded backend) and submits it asynchronously, so an experiment can kick
off the next run while the previous run's coverage merges — the pattern
``k_cluster`` uses internally for its per-ball diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.core.types import OneClusterResult
from repro.neighbors import BackendLike, NeighborBackend, PlanFuture, QueryPlan


@dataclass(frozen=True)
class EvaluationRecord:
    """Standardised measurements of one 1-cluster run.

    Attributes
    ----------
    method:
        Name of the solver that produced the result.
    found:
        Whether the solver released a ball at all.
    additive_loss:
        ``t`` minus the number of points captured by the released ball at the
        reference radius scale (``max(0, t - captured)``).
    radius_ratio:
        The released (effective) radius divided by the non-private reference
        radius (the empirical ``w``).
    effective_radius:
        Smallest radius around the released centre capturing ``t`` points.
    reference_radius:
        The non-private reference radius (exact in 1-d, 2-approx otherwise).
    center_error:
        Distance from the released centre to the reference centre (``nan``
        when not found).
    seconds:
        Wall-clock runtime of the private solver.
    """

    method: str
    found: bool
    additive_loss: float
    radius_ratio: float
    effective_radius: float
    reference_radius: float
    center_error: float
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (used to build result tables)."""
        return asdict(self)


def evaluate_result(method: str, points: np.ndarray, target: int,
                    result: OneClusterResult, seconds: float,
                    reference: Optional[OneClusterResult] = None,
                    backend: BackendLike = None) -> EvaluationRecord:
    """Measure a solver's output against the non-private reference.

    ``backend`` selects the neighbor backend used to compute the reference
    solution when none is supplied (at large ``n`` the default dense
    reference would itself be the bottleneck).
    """
    if reference is None:
        reference = nonprivate_one_cluster(points, target, backend=backend)
    reference_radius = max(reference.ball.radius, 1e-12)
    if not result.found:
        return EvaluationRecord(
            method=method, found=False, additive_loss=float(target),
            radius_ratio=float("inf"), effective_radius=float("inf"),
            reference_radius=reference_radius, center_error=float("nan"),
            seconds=seconds,
        )
    effective = result.effective_radius(points, target=target)
    captured_at_reference = result.ball.count(points) if result.ball.radius < float("inf") else 0
    # Additive loss: how many of the requested t points the ball at the
    # effective radius misses relative to a same-radius optimal ball; the
    # practical proxy used across experiments is the shortfall at 2x the
    # reference radius around the released centre.
    from repro.geometry.balls import Ball

    comparison_ball = Ball(center=result.ball.center, radius=2.0 * reference_radius)
    captured = comparison_ball.count(points)
    additive_loss = float(max(0, target - captured))
    center_error = float(np.linalg.norm(
        np.asarray(result.ball.center, dtype=float)
        - np.asarray(reference.ball.center, dtype=float)
    ))
    return EvaluationRecord(
        method=method, found=True, additive_loss=additive_loss,
        radius_ratio=float(effective / reference_radius),
        effective_radius=float(effective), reference_radius=reference_radius,
        center_error=center_error, seconds=seconds,
    )


def timed(function: Callable, *args, **kwargs):
    """Run ``function`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def submit_coverage_counts(backend: NeighborBackend, balls) -> PlanFuture:
    """Asynchronously count how many indexed points each ball covers.

    Bundles one ``count_within_many`` query per ball into a single
    :class:`~repro.neighbors.QueryPlan` and submits it — on the sharded
    backend the whole bundle is **one round trip per shard**, dispatched
    without blocking, so the caller can overlap the counting with its next
    private run and merge afterwards.  Counting is backend-exact (squared
    space, the library-wide convention), hence bitwise identical across
    backends and across sync/async submission.

    Parameters
    ----------
    backend:
        A ready :class:`~repro.neighbors.NeighborBackend` indexing the
        evaluation points.
    balls:
        An iterable of :class:`~repro.geometry.balls.Ball`-likes (anything
        with ``center`` and ``radius``).

    Returns
    -------
    PlanFuture
        Resolve with :func:`coverage_counts_result` (or ``.result()``
        directly: entry ``i`` is a ``(1, 1)`` count grid for ball ``i``).
    """
    plan = QueryPlan()
    for ball in balls:
        plan.count_within_many(
            np.asarray([np.asarray(ball.center, dtype=float)]),
            np.asarray([float(ball.radius)]),
        )
    return backend.submit(plan)


def coverage_counts_result(future: PlanFuture) -> List[int]:
    """Merge a :func:`submit_coverage_counts` future into per-ball counts."""
    return [int(grid[0, 0]) for grid in future.result()]


def summarise(records: Iterable[EvaluationRecord]) -> Dict[str, float]:
    """Aggregate a set of repetition records into mean statistics."""
    records = list(records)
    if not records:
        raise ValueError("at least one record is required")
    found = [record for record in records if record.found]
    success_rate = len(found) / len(records)
    if found:
        mean_loss = float(np.mean([record.additive_loss for record in found]))
        mean_ratio = float(np.mean([record.radius_ratio for record in found]))
        mean_error = float(np.nanmean([record.center_error for record in found]))
    else:
        mean_loss = float("nan")
        mean_ratio = float("nan")
        mean_error = float("nan")
    return {
        "success_rate": success_rate,
        "mean_additive_loss": mean_loss,
        "mean_radius_ratio": mean_ratio,
        "mean_center_error": mean_error,
        "mean_seconds": float(np.mean([record.seconds for record in records])),
    }


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3g}") -> str:
    """Render a list of dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[index]) for row in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    divider = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rendered
    )
    return "\n".join([header, divider, body])


__all__ = [
    "EvaluationRecord",
    "coverage_counts_result",
    "evaluate_result",
    "format_table",
    "submit_coverage_counts",
    "summarise",
    "timed",
]
