"""Shared evaluation helpers for the experiment harness.

Every experiment measures the two quantities Table 1 of the paper compares —
the *additive loss in cluster size* ``Delta`` and the *radius approximation
factor* ``w`` — against a non-private reference solution, plus runtime and
whether the private run succeeded at all.  :func:`evaluate_result` centralises
that bookkeeping, and :func:`format_table` renders rows as the fixed-width
text tables EXPERIMENTS.md quotes.

For streaming evaluation workloads the harness also speaks the backend
layer's query-plan dialect: :func:`submit_coverage_counts` bundles the
coverage counts of a whole collection of released balls into **one**
:class:`~repro.neighbors.QueryPlan` (a single round trip per shard on the
sharded backend) and submits it asynchronously, so an experiment can kick
off the next run while the previous run's coverage merges — the pattern
``k_cluster`` uses internally for its per-ball diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.core.types import OneClusterResult
from repro.neighbors import (
    BackendLike,
    NeighborBackend,
    PlanFuture,
    QueryPlan,
    resolve_backend,
)


@dataclass(frozen=True)
class EvaluationRecord:
    """Standardised measurements of one 1-cluster run.

    Attributes
    ----------
    method:
        Name of the solver that produced the result.
    found:
        Whether the solver released a ball at all.
    additive_loss:
        ``t`` minus the number of points captured by the released ball at the
        reference radius scale (``max(0, t - captured)``).
    radius_ratio:
        The released (effective) radius divided by the non-private reference
        radius (the empirical ``w``).
    effective_radius:
        Smallest radius around the released centre capturing ``t`` points.
    reference_radius:
        The non-private reference radius (exact in 1-d, 2-approx otherwise).
    center_error:
        Distance from the released centre to the reference centre (``nan``
        when not found).
    seconds:
        Wall-clock runtime of the private solver.
    """

    method: str
    found: bool
    additive_loss: float
    radius_ratio: float
    effective_radius: float
    reference_radius: float
    center_error: float
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (used to build result tables)."""
        return asdict(self)


def comparison_ball(result: OneClusterResult, reference_radius: float):
    """The ball whose coverage defines the additive-loss proxy: the released
    centre at twice the reference radius."""
    from repro.geometry.balls import Ball

    return Ball(center=np.asarray(result.ball.center, dtype=float),
                radius=2.0 * reference_radius)


def evaluate_result(method: str, points: np.ndarray, target: int,
                    result: OneClusterResult, seconds: float,
                    reference: Optional[OneClusterResult] = None,
                    backend: BackendLike = None,
                    captured: Optional[int] = None) -> EvaluationRecord:
    """Measure a solver's output against the non-private reference.

    ``backend`` selects the neighbor backend used to compute the reference
    solution when none is supplied (at large ``n`` the default dense
    reference would itself be the bottleneck).  ``captured`` supplies the
    :func:`comparison_ball` coverage count when the caller already holds it
    (the pipelined runners count it through an asynchronous backend plan);
    when omitted it is computed here.
    """
    if reference is None:
        reference = nonprivate_one_cluster(points, target, backend=backend)
    reference_radius = max(reference.ball.radius, 1e-12)
    if not result.found:
        return EvaluationRecord(
            method=method, found=False, additive_loss=float(target),
            radius_ratio=float("inf"), effective_radius=float("inf"),
            reference_radius=reference_radius, center_error=float("nan"),
            seconds=seconds,
        )
    effective = result.effective_radius(points, target=target)
    # Additive loss: how many of the requested t points the ball at the
    # effective radius misses relative to a same-radius optimal ball; the
    # practical proxy used across experiments is the shortfall at 2x the
    # reference radius around the released centre.
    if captured is None:
        captured = comparison_ball(result, reference_radius).count(points)
    additive_loss = float(max(0, target - int(captured)))
    center_error = float(np.linalg.norm(
        np.asarray(result.ball.center, dtype=float)
        - np.asarray(reference.ball.center, dtype=float)
    ))
    return EvaluationRecord(
        method=method, found=True, additive_loss=additive_loss,
        radius_ratio=float(effective / reference_radius),
        effective_radius=float(effective), reference_radius=reference_radius,
        center_error=center_error, seconds=seconds,
    )


def timed(function: Callable, *args, **kwargs):
    """Run ``function`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def submit_coverage_counts(backend: NeighborBackend, balls) -> PlanFuture:
    """Asynchronously count how many indexed points each ball covers.

    Bundles one ``count_within_many`` query per ball into a single
    :class:`~repro.neighbors.QueryPlan` and submits it — on the sharded
    backend the whole bundle is **one round trip per shard**, dispatched
    without blocking, so the caller can overlap the counting with its next
    private run and merge afterwards.  Counting is backend-exact (squared
    space, the library-wide convention), hence bitwise identical across
    backends and across sync/async submission.

    Parameters
    ----------
    backend:
        A ready :class:`~repro.neighbors.NeighborBackend` indexing the
        evaluation points.
    balls:
        An iterable of :class:`~repro.geometry.balls.Ball`-likes (anything
        with ``center`` and ``radius``).

    Returns
    -------
    PlanFuture
        Resolve with :func:`coverage_counts_result` (or ``.result()``
        directly: entry ``i`` is a ``(1, 1)`` count grid for ball ``i``).
    """
    plan = QueryPlan()
    for ball in balls:
        plan.count_within_many(
            np.asarray([np.asarray(ball.center, dtype=float)]),
            np.asarray([float(ball.radius)]),
        )
    return backend.submit(plan)


def coverage_counts_result(future: PlanFuture) -> List[int]:
    """Merge a :func:`submit_coverage_counts` future into per-ball counts."""
    return [int(grid[0, 0]) for grid in future.result()]


class PipelinedRuns:
    """One long-lived backend per dataset across a whole experiment sweep.

    The repeated-trial runners used to resolve (and tear down) a neighbor
    backend inside every trial; this helper keeps each dataset's backend
    alive for the duration of the sweep, hands it to the solvers, and lets
    the runners submit per-trial evaluation plans (coverage counts, depth
    scores, subsample aggregates) *asynchronously* — the next trial starts
    while the previous trial's plans are still in flight on the workers.

    Ordering guarantee: futures are resolved in submission order and every
    plan's merge is shard-order deterministic, so the assembled rows — and
    any summaries over them — are byte-identical to a serial run (timing
    columns aside), at any worker count, on every backend.

    Parameters
    ----------
    backend:
        The backend selection (name, class, instance, or ``None`` →
        ``"auto"``) resolved per dataset through
        :func:`~repro.neighbors.resolve_backend`.
    options:
        Construction options forwarded to :func:`resolve_backend`.

    Use as a context manager, or call :meth:`close` explicitly; backends the
    helper constructed are closed, instances supplied by the caller are left
    alone.
    """

    def __init__(self, backend: BackendLike = "auto",
                 options: Optional[dict] = None) -> None:
        self._backend = "auto" if backend is None else backend
        self._options = options
        self._engines: Dict[int, NeighborBackend] = {}
        # Hold a reference to each keyed dataset so its id() stays unique for
        # the helper's lifetime.
        self._datasets: Dict[int, np.ndarray] = {}
        self._closed = False

    def __enter__(self) -> "PipelinedRuns":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def backend(self) -> BackendLike:
        """The backend selection each dataset resolves."""
        return self._backend

    @property
    def num_backends(self) -> int:
        """How many distinct backends the sweep has resolved (accounting
        tests use this to prove there are no silent per-trial rebuilds)."""
        return len(self._engines)

    def backend_for(self, points: np.ndarray) -> NeighborBackend:
        """The long-lived backend indexing ``points`` (resolved on first
        use, identity-cached afterwards)."""
        if self._closed:
            raise RuntimeError("PipelinedRuns is closed")
        key = id(points)
        engine = self._engines.get(key)
        if engine is None:
            engine = resolve_backend(points, self._backend, self._options)
            self._engines[key] = engine
            self._datasets[key] = points
        return engine

    def submit_coverage(self, points: np.ndarray, balls) -> PlanFuture:
        """Submit the coverage counts of ``balls`` over ``points`` through
        the dataset's long-lived backend (see
        :func:`submit_coverage_counts`)."""
        return submit_coverage_counts(self.backend_for(points), balls)

    def stats(self) -> Dict[str, int]:
        """Aggregated plan/fan-out counters over every backend that exposes
        ``pool_stats()`` (plus ``backends``, the resolve count)."""
        totals: Dict[str, int] = {"backends": len(self._engines)}
        for engine in self._engines.values():
            pool_stats = getattr(engine, "pool_stats", None)
            if pool_stats is None:
                continue
            for key, value in pool_stats().items():
                if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
                    totals[key] = totals.get(key, 0) + int(value)
        return totals

    def close(self) -> None:
        """Close every backend the helper constructed (idempotent)."""
        if self._closed:
            return
        self._closed = True
        engines, self._engines = self._engines, {}
        self._datasets = {}
        for engine in engines.values():
            if engine is self._backend:
                continue
            close = getattr(engine, "close", None)
            if close is not None:
                close()


def summarise(records: Iterable[EvaluationRecord]) -> Dict[str, float]:
    """Aggregate a set of repetition records into mean statistics."""
    records = list(records)
    if not records:
        raise ValueError("at least one record is required")
    found = [record for record in records if record.found]
    success_rate = len(found) / len(records)
    if found:
        mean_loss = float(np.mean([record.additive_loss for record in found]))
        mean_ratio = float(np.mean([record.radius_ratio for record in found]))
        mean_error = float(np.nanmean([record.center_error for record in found]))
    else:
        mean_loss = float("nan")
        mean_ratio = float("nan")
        mean_error = float("nan")
    return {
        "success_rate": success_rate,
        "mean_additive_loss": mean_loss,
        "mean_radius_ratio": mean_ratio,
        "mean_center_error": mean_error,
        "mean_seconds": float(np.mean([record.seconds for record in records])),
    }


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3g}") -> str:
    """Render a list of dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[index]) for row in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    divider = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rendered
    )
    return "\n".join([header, divider, body])


__all__ = [
    "EvaluationRecord",
    "PipelinedRuns",
    "comparison_ball",
    "coverage_counts_result",
    "evaluate_result",
    "format_table",
    "submit_coverage_counts",
    "summarise",
    "timed",
]
