"""Synthetic data generators.

The paper motivates the 1-cluster problem with data-exploration scenarios
(locating a concentrated sub-population on a map, screening outliers,
aggregating sub-sample statistics).  The generators here produce the synthetic
stand-ins used across examples, tests and benchmarks:

* :func:`planted_cluster` — the canonical workload: a tight cluster of ``t``
  points planted inside uniform background noise, with the ground-truth centre
  and radius recorded so experiments can measure the approximation factor
  ``w`` and additive loss ``Delta``.
* :func:`gaussian_blobs` — ``k`` Gaussian clusters, for the k-clustering
  heuristic (Observation 3.5).
* :func:`clustered_with_outliers` — a dominant cluster plus a small fraction
  of far-away outliers, for the outlier-screening application.
* :func:`geospatial_hotspots` — a map-search-like workload: background
  population plus a few dense hotspots in ``[0, 1]^2``.
* :func:`mixture_of_gaussians` / :func:`identical_points_cluster` — inputs for
  the sample-and-aggregate experiments and the zero-radius edge case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.balls import Ball
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer, check_positive


@dataclass(frozen=True)
class PlantedClusterData:
    """A dataset with a known planted cluster.

    Attributes
    ----------
    points:
        The ``(n, d)`` dataset.
    cluster_indices:
        Indices of the planted-cluster members.
    true_ball:
        A ball that contains the whole planted cluster (the planting ball);
        the optimal ``t``-ball can only be smaller.
    """

    points: np.ndarray
    cluster_indices: np.ndarray
    true_ball: Ball

    @property
    def n(self) -> int:
        """Total number of points."""
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return int(self.points.shape[1])

    @property
    def cluster_size(self) -> int:
        """Number of planted-cluster members."""
        return int(self.cluster_indices.shape[0])

    @property
    def cluster_points(self) -> np.ndarray:
        """The planted-cluster members."""
        return self.points[self.cluster_indices]


def uniform_background(n: int, d: int, low: float = 0.0, high: float = 1.0,
                       rng: RngLike = None) -> np.ndarray:
    """``n`` points uniform in the cube ``[low, high]^d``."""
    check_integer(n, "n", minimum=1)
    check_integer(d, "d", minimum=1)
    if high <= low:
        raise ValueError("high must exceed low")
    generator = as_generator(rng)
    return generator.uniform(low, high, size=(n, d))


def planted_cluster(n: int, d: int, cluster_size: int, cluster_radius: float,
                    center: Optional[Sequence[float]] = None,
                    low: float = 0.0, high: float = 1.0,
                    rng: RngLike = None) -> PlantedClusterData:
    """Uniform background noise with a tight planted cluster.

    Parameters
    ----------
    n:
        Total number of points.
    d:
        Dimension.
    cluster_size:
        Number of points planted inside the cluster ball.
    cluster_radius:
        Radius of the planting ball.
    center:
        Cluster centre; drawn uniformly from the middle half of the cube when
        omitted (so the ball never crosses the domain boundary).
    low, high:
        Cube bounds.
    rng:
        Seed or generator.
    """
    check_integer(n, "n", minimum=1)
    check_integer(d, "d", minimum=1)
    check_integer(cluster_size, "cluster_size", minimum=1)
    check_positive(cluster_radius, "cluster_radius")
    if cluster_size > n:
        raise ValueError("cluster_size cannot exceed n")
    generator = as_generator(rng)
    span = high - low
    if center is None:
        center = generator.uniform(low + 0.25 * span, high - 0.25 * span, size=d)
    center = np.asarray(center, dtype=float).reshape(d)

    background = generator.uniform(low, high, size=(n - cluster_size, d))
    # Cluster members: uniform directions, radii biased toward the boundary so
    # the planted ball is genuinely "filled" rather than a degenerate point.
    directions = generator.standard_normal((cluster_size, d))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    directions = directions / norms
    radii = cluster_radius * generator.uniform(0.0, 1.0, size=(cluster_size, 1)) ** (1.0 / d)
    cluster_points = center[None, :] + directions * radii

    points = np.vstack([background, cluster_points])
    order = generator.permutation(n)
    points = points[order]
    cluster_mask = np.zeros(n, dtype=bool)
    cluster_mask[order >= (n - cluster_size)] = False
    # Recover cluster indices after the permutation: positions whose original
    # index was >= n - cluster_size.
    cluster_indices = np.where(order >= (n - cluster_size))[0]
    return PlantedClusterData(
        points=points,
        cluster_indices=cluster_indices,
        true_ball=Ball(center=center, radius=cluster_radius),
    )


def gaussian_blobs(n: int, d: int, k: int, spread: float = 0.03,
                   low: float = 0.0, high: float = 1.0,
                   weights: Optional[Sequence[float]] = None,
                   rng: RngLike = None):
    """``k`` spherical Gaussian blobs inside the cube.

    Returns
    -------
    (points, labels, centers):
        The ``(n, d)`` data, per-point blob labels, and the ``(k, d)`` blob
        centres.
    """
    check_integer(n, "n", minimum=1)
    check_integer(d, "d", minimum=1)
    check_integer(k, "k", minimum=1)
    check_positive(spread, "spread")
    generator = as_generator(rng)
    span = high - low
    centers = generator.uniform(low + 0.15 * span, high - 0.15 * span, size=(k, d))
    if weights is None:
        weights = np.full(k, 1.0 / k)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (k,) or np.any(weights <= 0):
            raise ValueError("weights must be k positive numbers")
        weights = weights / weights.sum()
    labels = generator.choice(k, size=n, p=weights)
    points = centers[labels] + generator.normal(0.0, spread, size=(n, d))
    points = np.clip(points, low, high)
    return points, labels, centers


def clustered_with_outliers(n: int, d: int, outlier_fraction: float = 0.1,
                            cluster_spread: float = 0.05,
                            separation_factor: float = 12.0,
                            rng: RngLike = None):
    """A dominant cluster plus a fraction of far-away outliers.

    Outliers are pushed to at least ``separation_factor * cluster_spread``
    away from the cluster centre so screening experiments have an unambiguous
    ground truth.

    Returns
    -------
    (points, is_outlier):
        The data and a boolean outlier mask.
    """
    check_integer(n, "n", minimum=2)
    if not (0 <= outlier_fraction < 1):
        raise ValueError("outlier_fraction must lie in [0, 1)")
    generator = as_generator(rng)
    num_outliers = int(round(outlier_fraction * n))
    num_inliers = n - num_outliers
    center = generator.uniform(0.35, 0.65, size=d)
    inliers = center[None, :] + generator.normal(0.0, cluster_spread, size=(num_inliers, d))
    outliers = generator.uniform(0.0, 1.0, size=(num_outliers, d))
    # Push outliers away from the cluster centre so they are unambiguous.
    away = outliers - center[None, :]
    norms = np.linalg.norm(away, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    outliers = center[None, :] + away / norms * np.maximum(
        norms, separation_factor * cluster_spread)
    points = np.vstack([inliers, outliers])
    is_outlier = np.zeros(n, dtype=bool)
    is_outlier[num_inliers:] = True
    order = generator.permutation(n)
    return points[order], is_outlier[order]


def geospatial_hotspots(n: int, num_hotspots: int = 3,
                        hotspot_fraction: float = 0.5,
                        hotspot_radius: float = 0.03,
                        rng: RngLike = None):
    """A 2-d map-search workload: background population plus dense hotspots.

    Returns
    -------
    (points, hotspot_centers):
        The ``(n, 2)`` data and the ``(num_hotspots, 2)`` hotspot centres.
    """
    check_integer(n, "n", minimum=1)
    check_integer(num_hotspots, "num_hotspots", minimum=1)
    if not (0 < hotspot_fraction <= 1):
        raise ValueError("hotspot_fraction must lie in (0, 1]")
    generator = as_generator(rng)
    centers = generator.uniform(0.1, 0.9, size=(num_hotspots, 2))
    num_hot = int(round(hotspot_fraction * n))
    num_background = n - num_hot
    background = generator.uniform(0.0, 1.0, size=(num_background, 2))
    assignments = generator.integers(0, num_hotspots, size=num_hot)
    hot = centers[assignments] + generator.normal(0.0, hotspot_radius, size=(num_hot, 2))
    points = np.vstack([background, np.clip(hot, 0.0, 1.0)])
    return points[generator.permutation(n)], centers


def identical_points_cluster(n: int, d: int, cluster_size: int,
                             rng: RngLike = None) -> np.ndarray:
    """Background noise plus ``cluster_size`` copies of one grid point.

    Exercises GoodRadius's zero-radius early exit (Algorithm 1, step 2).
    """
    check_integer(cluster_size, "cluster_size", minimum=1)
    if cluster_size > n:
        raise ValueError("cluster_size cannot exceed n")
    generator = as_generator(rng)
    background = generator.uniform(0.0, 1.0, size=(n - cluster_size, d))
    point = np.round(generator.uniform(0.2, 0.8, size=d), decimals=3)
    copies = np.tile(point, (cluster_size, 1))
    points = np.vstack([background, copies])
    return points[generator.permutation(n)]


def mixture_of_gaussians(n: int, d: int, means: Sequence[Sequence[float]],
                         stddev: float = 0.05,
                         weights: Optional[Sequence[float]] = None,
                         rng: RngLike = None):
    """Samples from a spherical Gaussian mixture with the given means.

    Used by the sample-and-aggregate experiments, which estimate the dominant
    component's mean from sub-sample statistics.

    Returns
    -------
    (points, labels):
        The samples and their component labels.
    """
    means = np.asarray(means, dtype=float)
    if means.ndim != 2 or means.shape[1] != d:
        raise ValueError(f"means must have shape (k, {d})")
    k = means.shape[0]
    generator = as_generator(rng)
    if weights is None:
        weights = np.full(k, 1.0 / k)
    else:
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
    labels = generator.choice(k, size=n, p=weights)
    points = means[labels] + generator.normal(0.0, stddev, size=(n, d))
    return points, labels


__all__ = [
    "PlantedClusterData",
    "uniform_background",
    "planted_cluster",
    "gaussian_blobs",
    "clustered_with_outliers",
    "geospatial_hotspots",
    "identical_points_cluster",
    "mixture_of_gaussians",
]
