"""Adversarial configurations illustrated in the paper's figures.

* **Figure 1** shows why GoodCenter's "first attempt" fails: on each axis a
  heavy interval exists, but the intersection of the per-axis heavy intervals
  is empty.  :func:`figure1_cross_configuration` builds the 2-d cross that
  realises this.
* **Figure 2** illustrates the interval-extension trick: a heavy interval ``I``
  of length ``r`` captures only part of a diameter-``r`` cluster, but ``I``
  extended by ``r`` on each side captures all of it.
  :func:`figure2_interval_configuration` builds a 1-d instance exhibiting it.
* :func:`split_cluster_configuration` is the sensitivity example from
  Section 3.1 showing that the *uncapped, unaveraged* score has sensitivity
  ``Omega(t)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer


def figure1_cross_configuration(points_per_arm: int = 200, arm_offset: float = 0.4,
                                spread: float = 0.02,
                                rng: RngLike = None) -> np.ndarray:
    """The Figure-1 counterexample to axis-by-axis interval selection.

    Two blobs: one at ``(0.5 - arm_offset, 0.5 + arm_offset)`` and one at
    ``(0.5 + arm_offset, 0.5 - arm_offset)``.  The marginal of the data on
    each axis has two heavy intervals; picking the heavier one per axis
    independently can select the pair of intervals whose intersection is
    empty (no data point lies in the box they define).
    """
    check_integer(points_per_arm, "points_per_arm", minimum=1)
    generator = as_generator(rng)
    blob_a = np.column_stack([
        generator.normal(0.5 - arm_offset, spread, size=points_per_arm),
        generator.normal(0.5 + arm_offset, spread, size=points_per_arm),
    ])
    blob_b = np.column_stack([
        generator.normal(0.5 + arm_offset, spread, size=points_per_arm),
        generator.normal(0.5 - arm_offset, spread, size=points_per_arm),
    ])
    points = np.vstack([blob_a, blob_b])
    return points[generator.permutation(points.shape[0])]


def figure2_interval_configuration(cluster_size: int = 100, cluster_radius: float = 0.05,
                                   interval_length: float = 0.05,
                                   rng: RngLike = None) -> Tuple[np.ndarray, float]:
    """A 1-d cluster straddling an interval boundary (Figure 2).

    Returns the 1-d points (shape ``(cluster_size, 1)``) and the partition
    offset such that the cluster straddles an interval boundary of the
    partition into intervals of ``interval_length``: no single interval
    contains all of the cluster, but every heavy interval extended by one
    interval length per side does.
    """
    check_integer(cluster_size, "cluster_size", minimum=2)
    generator = as_generator(rng)
    center = 0.5
    values = generator.uniform(center - cluster_radius, center + cluster_radius,
                               size=cluster_size)
    # Choose the partition offset so that a boundary falls exactly at the
    # cluster centre, guaranteeing the cluster is split across two intervals.
    offset = center % interval_length
    return values.reshape(-1, 1), float(offset)


def split_cluster_configuration(target: int) -> np.ndarray:
    """The Section-3.1 sensitivity example (1-d, embedded on the first axis).

    ``t/2`` copies of the origin, ``t/2`` copies of ``2 e_1`` and a single
    point at ``e_1``.  A ball of radius 1 around ``e_1`` contains everything;
    moving that single point to ``2 e_1`` destroys every radius-1 ball centred
    at an input point that contains more than ``t/2`` points, so the
    *uncapped max* score drops by ``Omega(t)`` — while the capped-average
    score ``L`` changes by at most 2.
    """
    check_integer(target, "target", minimum=2)
    half = target // 2
    zeros = np.zeros((half, 1))
    twos = np.full((half, 1), 2.0)
    middle = np.array([[1.0]])
    return np.vstack([zeros, middle, twos])


__all__ = [
    "figure1_cross_configuration",
    "figure2_interval_configuration",
    "split_cluster_configuration",
]
