"""Synthetic workload generators used by examples, tests and benchmarks."""

from repro.datasets.synthetic import (
    PlantedClusterData,
    planted_cluster,
    gaussian_blobs,
    uniform_background,
    clustered_with_outliers,
    geospatial_hotspots,
    identical_points_cluster,
    mixture_of_gaussians,
)
from repro.datasets.adversarial import (
    figure1_cross_configuration,
    figure2_interval_configuration,
    split_cluster_configuration,
)

__all__ = [
    "PlantedClusterData",
    "planted_cluster",
    "gaussian_blobs",
    "uniform_background",
    "clustered_with_outliers",
    "geospatial_hotspots",
    "identical_points_cluster",
    "mixture_of_gaussians",
    "figure1_cross_configuration",
    "figure2_interval_configuration",
    "split_cluster_configuration",
]
