"""repro — a reproduction of "Locating a Small Cluster Privately".

Nissim, Stemmer, and Vadhan (PODS 2016) give an efficient
``(epsilon, delta)``-differentially-private algorithm for the *1-cluster
problem*: locating a ball of approximately minimal radius that contains at
least ``t`` of the ``n`` input points.  This package implements that algorithm
(GoodRadius + GoodCenter), every substrate it relies on (DP primitive
mechanisms, quasi-concave promise-problem solvers, geometric tools), the
baselines it is compared against, the sample-and-aggregate framework built on
top of it, and the lower-bound machinery of the paper's Section 5.

Quickstart
----------
>>> import numpy as np
>>> from repro import one_cluster, PrivacyParams
>>> from repro.datasets import planted_cluster
>>> data = planted_cluster(n=2000, d=4, cluster_size=600, cluster_radius=0.05,
...                        rng=0)
>>> result = one_cluster(data.points, target=500,
...                      params=PrivacyParams(epsilon=1.0, delta=1e-6), rng=0)
>>> result.found
True
"""

from repro.accounting import PrivacyParams, PrivacyLedger
from repro.core import (
    one_cluster,
    good_radius,
    good_center,
    OneClusterResult,
    GoodRadiusResult,
    GoodCenterResult,
    OneClusterConfig,
    GoodCenterConfig,
)
from repro.geometry import Ball, GridDomain
from repro.clustering import k_cluster, outlier_ball, OutlierScreen
from repro.neighbors import (
    NeighborBackend,
    DenseBackend,
    ChunkedBackend,
    TreeBackend,
    ShardedBackend,
    auto_backend,
    resolve_backend,
)
from repro.sample_aggregate import sample_and_aggregate, StablePointResult

__version__ = "1.0.0"

__all__ = [
    "PrivacyParams",
    "PrivacyLedger",
    "one_cluster",
    "good_radius",
    "good_center",
    "OneClusterResult",
    "GoodRadiusResult",
    "GoodCenterResult",
    "OneClusterConfig",
    "GoodCenterConfig",
    "Ball",
    "GridDomain",
    "NeighborBackend",
    "DenseBackend",
    "ChunkedBackend",
    "TreeBackend",
    "ShardedBackend",
    "auto_backend",
    "resolve_backend",
    "k_cluster",
    "outlier_ball",
    "OutlierScreen",
    "sample_and_aggregate",
    "StablePointResult",
    "__version__",
]
