"""The interior point problem (paper Definition 5.1, Theorem 5.2).

An algorithm solves the interior point problem on a totally ordered domain
``X`` if, given a database ``D`` of elements of ``X``, it outputs some ``x``
with ``min D <= x <= max D``.  Bun–Nissim–Stemmer–Vadhan (FOCS 2015) showed
that solving it with ``(epsilon, delta)``-differential privacy requires sample
complexity ``n >= Omega(log* |X|)`` — in particular it is impossible over
infinite domains — and the paper's Section 5 reduces the interior point
problem to the 1-cluster problem, transferring the impossibility.
"""

from __future__ import annotations

import numpy as np

from repro.utils.iterated_log import log_star
from repro.utils.validation import check_points


def is_interior_point(value: float, database) -> bool:
    """Whether ``value`` lies between the minimum and maximum of the database."""
    values = np.asarray(database, dtype=float).reshape(-1)
    if values.size == 0:
        raise ValueError("database must be non-empty")
    return bool(values.min() <= value <= values.max())


def nonprivate_interior_point(database) -> float:
    """A trivially correct, non-private interior point: the median."""
    values = np.asarray(database, dtype=float).reshape(-1)
    if values.size == 0:
        raise ValueError("database must be non-empty")
    return float(np.median(values))


def interior_depths(database, thresholds) -> np.ndarray:
    """Depth ``q(S, a) = min(#{x <= a}, #{x >= a})`` of each threshold.

    The sensitivity-1 quality driving the final selection of Algorithm
    IntPoint.  Computed with one sort plus two ``searchsorted`` passes, so the
    integer counts — and hence the float scores — are bitwise identical to the
    naive ``count_nonzero`` comparisons at any batch size, and match the
    per-shard-summed counts of the backends' ``depth_counts`` plan op.
    """
    values = np.asarray(database, dtype=float).reshape(-1)
    if values.size == 0:
        raise ValueError("database must be non-empty")
    ordered = np.sort(values)
    thresholds = np.atleast_1d(np.asarray(thresholds, dtype=float))
    below = np.searchsorted(ordered, thresholds, side="right")
    above = ordered.shape[0] - np.searchsorted(ordered, thresholds, side="left")
    return np.minimum(below, above).astype(float)


def interior_point_sample_complexity_lower_bound(domain_size: float,
                                                 constant: float = 1.0) -> float:
    """The Theorem 5.2 lower bound, ``n >= Omega(log* |X|)``, reported as
    ``constant * log*(|X|)``."""
    if domain_size < 2:
        raise ValueError("domain_size must be at least 2")
    return constant * log_star(domain_size)


__all__ = [
    "is_interior_point",
    "nonprivate_interior_point",
    "interior_depths",
    "interior_point_sample_complexity_lower_bound",
]
