"""Algorithm IntPoint (paper Algorithm 3, Theorem 5.3).

The reduction showing that any private solver for the 1-cluster problem yields
a private solver for the interior point problem (and hence inherits the
``Omega(log* |X|)`` sample-complexity lower bound):

1. Take the middle ``n`` entries ``D`` of the input ``S`` (of size ``m > n``).
2. Run the 1-cluster solver on ``D``; it returns an interval ``I`` of length
   ``2r`` containing at least one point of ``D`` with ``r <= w * r_opt``.
3. Partition ``I`` into sub-intervals of length ``r / w``; at least one
   endpoint of some sub-interval must be an interior point of ``D``.
4. Choose among those endpoints privately, using a quasi-concave solver with
   the quality ``q(S, a) = min(#{x <= a}, #{x >= a})`` (the "depth" of
   ``a`` in ``S``), whose promise ``(m - n)/2`` is guaranteed because ``D``
   consists of the middle entries of ``S``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.core.one_cluster import one_cluster
from repro.core.types import OneClusterResult
from repro.lowerbound.interior_point import interior_depths
from repro.neighbors import BackendLike, NeighborBackend, resolve_backend
from repro.quasiconcave.quality import ArrayQuality, PlanQuality
from repro.quasiconcave.rec_concave import rec_concave
from repro.utils.iterated_log import log_star
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer


@dataclass(frozen=True)
class IntPointResult:
    """Outcome of the IntPoint reduction."""

    value: float
    is_zero_radius: bool
    cluster_result: Optional[OneClusterResult]
    candidate_count: int


def int_point_sample_size(n: int, w: float, params: PrivacyParams,
                          beta: float) -> float:
    """The Theorem 5.3 sample complexity of the reduction:
    ``m = n + 8^{log*(4w)} * (144 log*(4w) / epsilon) * log(12 log*(4w) /
    (beta delta))``."""
    if w <= 0:
        raise ValueError("w must be positive")
    if params.delta <= 0:
        raise ValueError("the bound requires delta > 0")
    ls = max(1, log_star(4.0 * w))
    return n + 8.0 ** ls * (144.0 * ls / params.epsilon) * math.log(
        12.0 * ls / (beta * params.delta)
    )


def int_point(database, cluster_size: int, params: PrivacyParams,
              approximation_factor: float = 4.0, beta: float = 0.1,
              cluster_solver: Optional[Callable[..., OneClusterResult]] = None,
              backend: BackendLike = None, rng: RngLike = None,
              **solver_kwargs) -> IntPointResult:
    """Solve the interior point problem via the 1-cluster reduction.

    Parameters
    ----------
    database:
        1-d array of ``m`` values from the (finite) domain.
    cluster_size:
        The size ``n`` of the middle sub-database handed to the 1-cluster
        solver (``n < m``; the slack ``m - n`` feeds the final quasi-concave
        selection's promise).
    params:
        Total privacy budget; the reduction is ``(2 epsilon, 2 delta)``-DP in
        terms of the per-phase budget, so we split the given budget in half
        per phase to stay within it.
    approximation_factor:
        The radius approximation factor ``w`` of the 1-cluster solver (used to
        size the sub-interval grid in step 3).
    beta:
        Failure probability.
    cluster_solver:
        The 1-cluster solver to reduce to; defaults to
        :func:`~repro.core.one_cluster.one_cluster`.  Any callable with the
        same signature works, which is how experiments demonstrate the
        reduction against different solvers.
    backend:
        Optional neighbor backend for the final depth selection (step 4).  A
        :class:`~repro.neighbors.NeighborBackend` *instance* — built over
        ``database.reshape(-1, 1)`` — routes the depth-score evaluations
        through one asynchronous ``depth_counts`` query plan
        (:class:`~repro.quasiconcave.PlanQuality`); because the per-shard
        counts are integers summed exactly, the released value is bitwise
        identical to the parent-side path.  A backend *name or class* is
        instead forwarded to the cluster solver (which resolves its own
        backend over the middle entries), preserving the historical
        ``solver_kwargs`` behaviour.
    rng:
        Seed or generator.
    solver_kwargs:
        Extra keyword arguments forwarded to the cluster solver.
    """
    values = np.asarray(database, dtype=float).reshape(-1)
    m = values.size
    cluster_size = check_integer(cluster_size, "cluster_size", minimum=1)
    if cluster_size >= m:
        raise ValueError("cluster_size must be smaller than the database size")
    if approximation_factor <= 0:
        raise ValueError("approximation_factor must be positive")
    if cluster_solver is None:
        cluster_solver = one_cluster
    depth_backend = None
    if backend is not None:
        if isinstance(backend, NeighborBackend):
            # Validate the instance against this database (as a column) and
            # use it for the step-4 depth plan; the cluster solver runs on a
            # different sub-database, so the instance is not forwarded.
            depth_backend = resolve_backend(values.reshape(-1, 1), backend)
        else:
            solver_kwargs.setdefault("backend", backend)
    cluster_rng, select_rng = spawn_generators(rng, 2)
    half = params.part(0.5)

    # Step 1: the middle n entries of the sorted database.
    ordered = np.sort(values)
    start = (m - cluster_size) // 2
    middle = ordered[start:start + cluster_size]

    # Step 2: run the 1-cluster solver on the middle entries with t = n.
    cluster = cluster_solver(middle.reshape(-1, 1), cluster_size, half,
                             beta=beta, rng=cluster_rng, **solver_kwargs)
    if not cluster.found:
        # Fall back to the interval defined by the GoodRadius radius around
        # the data's noisy middle; the reduction's guarantee is vacuous in
        # this (probability <= beta) branch, but we still return a value.
        center_value = float(np.median(middle))
        radius = max(cluster.radius_result.radius, 0.0)
    else:
        center_value = float(cluster.ball.center[0])
        # The measured radius of the released ball at the target count is the
        # practical analogue of the guaranteed 2r interval.
        radius = max(cluster.effective_radius(middle.reshape(-1, 1)), 0.0)

    if radius == 0.0:
        return IntPointResult(value=center_value, is_zero_radius=True,
                              cluster_result=cluster, candidate_count=1)

    # Step 3: endpoints of the sub-intervals of length r / w inside I.
    num_intervals = max(1, int(math.ceil(2.0 * approximation_factor)))
    endpoints = np.linspace(center_value - radius, center_value + radius,
                            num_intervals + 1)

    # Step 4: choose among the endpoints with the depth quality
    # q(S, a) = min(#{x <= a}, #{x >= a}), which is sensitivity-1 and
    # quasi-concave along the ordered endpoints.  Both paths compute the same
    # integer counts, so the released value does not depend on the transport.
    if depth_backend is not None:
        def compile_depths(plan, indices):
            return plan.depth_counts(endpoints[indices])

        def resolve_depths(results, token, indices):
            counts = results[token]
            return np.minimum(counts[:, 0], counts[:, 1]).astype(float)

        quality = PlanQuality(depth_backend, endpoints.size,
                              compile_depths, resolve_depths)
    else:
        quality = ArrayQuality(interior_depths(values, endpoints))
    promise = max(1.0, (m - cluster_size) / 2.0)
    selection = rec_concave(quality, promise=promise, alpha=0.5, params=half,
                            rng=select_rng)
    return IntPointResult(value=float(endpoints[selection.index]),
                          is_zero_radius=False, cluster_result=cluster,
                          candidate_count=endpoints.size)


__all__ = ["IntPointResult", "int_point", "int_point_sample_size"]
