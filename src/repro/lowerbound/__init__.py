"""Lower-bound machinery (paper Section 5)."""

from repro.lowerbound.interior_point import (
    is_interior_point,
    nonprivate_interior_point,
    interior_depths,
    interior_point_sample_complexity_lower_bound,
)
from repro.lowerbound.int_point import int_point, IntPointResult, int_point_sample_size

__all__ = [
    "is_interior_point",
    "nonprivate_interior_point",
    "interior_depths",
    "interior_point_sample_complexity_lower_bound",
    "int_point",
    "IntPointResult",
    "int_point_sample_size",
]
