"""Hot-kernel dispatch: native (numba) vs pure-python, chosen at import.

The profile of the 1-cluster pipeline is dominated by three row-decomposable
kernels — the blocked squared-distance slab, the grid hash / interval
labelling behind box histograms, and the exact fixed-point summation behind
masked aggregates.  This package provides two interchangeable
implementations of each:

* :mod:`repro.kernels._reference` — the pure-python (numpy/scipy) versions.
  These are the *defining* implementations: every released value of the
  library is specified by what they compute.
* :mod:`repro.kernels._native` — numba ``@njit`` versions that reproduce the
  reference **bit for bit** by construction: the distance slab accumulates
  per-pair squared terms left-to-right in axis order (exactly scipy
  ``cdist``'s accumulation), the grid hash applies the identical
  subtract/divide/floor/int64-cast scalar sequence, and the fixed-point
  column sum emits integer partials whose exact integer merge is the same
  canonical total as :mod:`repro.utils.exactsum`.

Selection happens once, at import time:

* ``REPRO_KERNELS=python`` — force the reference kernels (numba never
  imported).
* ``REPRO_KERNELS=native`` — require the native kernels; if numba (or scipy,
  whose ``cdist`` accumulation order the native slab is pinned to) is
  missing, a warning is emitted and the reference kernels are used.
* unset — native when numba *and* scipy are importable, reference otherwise
  (no warning; absence of optional accelerators is not an error).

Because the choice is made at import and both modes compute bitwise
identical values, no released byte ever depends on ``REPRO_KERNELS`` — the
parity suites are re-run under both modes to enforce exactly that.

Worker processes of the sharded backend import this package like any other
(the environment variable is inherited across both fork and spawn), so the
shard-side masked aggregates and grid hashes ride the same kernels as the
parent.
"""

from __future__ import annotations

import os
import warnings

from repro.kernels import _reference

#: The values ``REPRO_KERNELS`` accepts.
KERNEL_MODES = ("native", "python")

#: Environment variable read once at import to pick the kernel set.
KERNEL_ENV_VAR = "REPRO_KERNELS"


def _requested_mode() -> str:
    value = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
    if not value:
        return "auto"
    if value not in KERNEL_MODES:
        raise ValueError(
            f"{KERNEL_ENV_VAR}={value!r} is not a valid kernel mode; "
            f"expected one of {KERNEL_MODES} (or unset for automatic "
            f"selection)"
        )
    return value


def _load_native(requested: bool):
    """Try to import the native kernel set; explain failures when forced."""
    if not _reference.HAVE_SCIPY_CDIST:
        if requested:
            warnings.warn(
                "REPRO_KERNELS=native requires scipy (the native distance "
                "slab is pinned to cdist's accumulation order); falling back "
                "to the pure-python kernels",
                RuntimeWarning,
                stacklevel=3,
            )
        return None
    try:
        from repro.kernels import _native
    except ImportError as error:
        if requested:
            warnings.warn(
                f"REPRO_KERNELS=native but numba is unavailable ({error}); "
                "falling back to the pure-python kernels (install the "
                "'native' extra: pip install -e .[native])",
                RuntimeWarning,
                stacklevel=3,
            )
        return None
    return _native


_MODE_REQUESTED = _requested_mode()
_IMPL = None
if _MODE_REQUESTED != "python":
    _IMPL = _load_native(requested=_MODE_REQUESTED == "native")

#: Whether the numba-compiled kernel set is active.
HAVE_NATIVE = _IMPL is not None
if _IMPL is None:
    _IMPL = _reference

#: The active kernel mode: ``"native"`` or ``"python"``.
KERNEL_MODE = "native" if HAVE_NATIVE else "python"

# The dispatched kernels.  Call sites go through these names so the whole
# library — parent and shard workers alike — rides one kernel set.
squared_distance_slab = _IMPL.squared_distance_slab
squared_distance_gather = _IMPL.squared_distance_gather
fused_box_labels = _IMPL.fused_box_labels
fused_interval_labels = _IMPL.fused_interval_labels
fixed_point_column_partials = _IMPL.fixed_point_column_partials


def kernel_info() -> dict:
    """The active kernel configuration (for ``pool_stats`` and benchmarks)."""
    return {
        "mode": KERNEL_MODE,
        "requested": _MODE_REQUESTED,
        "have_scipy_cdist": _reference.HAVE_SCIPY_CDIST,
    }


__all__ = [
    "HAVE_NATIVE",
    "KERNEL_ENV_VAR",
    "KERNEL_MODE",
    "KERNEL_MODES",
    "fixed_point_column_partials",
    "fused_box_labels",
    "fused_interval_labels",
    "kernel_info",
    "squared_distance_gather",
    "squared_distance_slab",
]
