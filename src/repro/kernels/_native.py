"""Numba ``@njit`` hot kernels — bitwise-parity natives.

Importing this module requires numba; :mod:`repro.kernels` gates the import
and falls back to :mod:`repro.kernels._reference` when it is unavailable.

Every kernel reproduces its reference counterpart bit for bit:

* the distance kernels accumulate each pair's squared terms **left-to-right
  in axis order** — exactly scipy ``cdist``'s scalar loop (compiled without
  fastmath, so LLVM cannot reassociate, vectorise-with-reordering, or
  contract the multiply-add);
* the label kernels apply the identical scalar sequence per coordinate —
  subtract, divide, floor, cast to int64 — as the numpy expressions;
* the fixed-point kernel emits ``(limb, shift)`` integer partials whose
  exact integer merge equals :func:`repro.utils.exactsum.fixed_point_sum`'s
  canonical total (the decomposition differs from the reference's, the
  merged integer cannot).

``tests/test_kernels.py`` asserts all of this against the reference on an
adversarial zoo whenever numba is installed.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit

#: Mirrors :data:`repro.kernels._reference.SCALE_BITS`.
_SCALE_BITS = 1074

#: ``float(2**53)`` — exact mantissa scaling.
_MANTISSA_SCALE = 9007199254740992.0

#: Flush threshold for the fixed-point accumulator: ``512 * 2**53 < 2**63``.
_SEGMENT = 512

#: frexp exponents span ``[-1073, 1024]`` for finite nonzero float64, so
#: shifts ``e + (1074 - 53)`` span ``[-52, 2045]``; the accumulator table is
#: indexed by ``shift + _SHIFT_FLOOR``.
_SHIFT_FLOOR = 52
_SHIFT_TABLE = 2100


@njit(cache=True)
def _slab(queries, data):  # pragma: no cover - requires numba
    q, d = queries.shape
    n = data.shape[0]
    out = np.empty((q, n), dtype=np.float64)
    for i in range(q):
        for j in range(n):
            acc = 0.0
            for a in range(d):
                diff = queries[i, a] - data[j, a]
                acc += diff * diff
            out[i, j] = acc
    return out


@njit(cache=True)
def _gather(queries, neighbors):  # pragma: no cover - requires numba
    q, k, d = neighbors.shape
    out = np.empty((q, k), dtype=np.float64)
    for i in range(q):
        for j in range(k):
            acc = 0.0
            for a in range(d):
                # Translate-to-origin: the inner subtraction is the same
                # single rounding as the reference's difference tensor.
                diff = neighbors[i, j, a] - queries[i, a]
                acc += diff * diff
            out[i, j] = acc
    return out


@njit(cache=True)
def _box_labels(points, shifts, width):  # pragma: no cover - requires numba
    n, k = points.shape
    out = np.empty((n, k), dtype=np.int64)
    for i in range(n):
        for a in range(k):
            out[i, a] = np.int64(math.floor((points[i, a] - shifts[a]) / width))
    return out


@njit(cache=True)
def _interval_labels(values, width, offset):  # pragma: no cover - requires numba
    n = values.shape[0]
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        out[i] = np.int64(math.floor((values[i] - offset) / width))
    return out


@njit(cache=True)
def _column_partials(matrix):  # pragma: no cover - requires numba
    q, k = matrix.shape
    # Each emitted entry absorbs at least one element, so q*k bounds the
    # entry count.
    capacity = q * k
    limbs = np.empty(capacity, dtype=np.int64)
    shifts = np.empty(capacity, dtype=np.int64)
    columns = np.empty(capacity, dtype=np.int64)
    acc = np.zeros(_SHIFT_TABLE, dtype=np.int64)
    count = np.zeros(_SHIFT_TABLE, dtype=np.int64)
    out = 0
    for column in range(k):
        for row in range(q):
            mantissa, exponent = math.frexp(matrix[row, column])
            limb = np.int64(mantissa * _MANTISSA_SCALE)
            shift = exponent + (_SCALE_BITS - 53)
            slot = shift + _SHIFT_FLOOR
            acc[slot] += limb
            count[slot] += 1
            if count[slot] >= _SEGMENT:
                limbs[out] = acc[slot]
                shifts[out] = shift
                columns[out] = column
                out += 1
                acc[slot] = 0
                count[slot] = 0
        for slot in range(_SHIFT_TABLE):
            if count[slot] != 0:
                limbs[out] = acc[slot]
                shifts[out] = slot - _SHIFT_FLOOR
                columns[out] = column
                out += 1
                acc[slot] = 0
                count[slot] = 0
    return limbs[:out], shifts[:out], columns[:out]


def squared_distance_slab(queries: np.ndarray,
                          data: np.ndarray) -> np.ndarray:
    """Native ``(q, n)`` squared-distance slab (cdist accumulation order)."""
    return _slab(np.ascontiguousarray(queries, dtype=np.float64),
                 np.ascontiguousarray(data, dtype=np.float64))


def squared_distance_gather(queries: np.ndarray,
                            neighbors: np.ndarray) -> np.ndarray:
    """Native translate-to-origin gather kernel."""
    return _gather(np.ascontiguousarray(queries, dtype=np.float64),
                   np.ascontiguousarray(neighbors, dtype=np.float64))


def fused_box_labels(points: np.ndarray, shifts: np.ndarray,
                     width: float) -> np.ndarray:
    """Native fused grid hash (one pass, no float temporaries)."""
    return _box_labels(np.ascontiguousarray(points, dtype=np.float64),
                       np.ascontiguousarray(shifts, dtype=np.float64),
                       float(width))


def fused_interval_labels(values: np.ndarray, width: float,
                          offset: float = 0.0) -> np.ndarray:
    """Native elementwise interval hash (any input shape)."""
    values = np.asarray(values, dtype=np.float64)
    flat = np.ascontiguousarray(values).reshape(-1)
    return _interval_labels(flat, float(width),
                            float(offset)).reshape(values.shape)


def fixed_point_column_partials(matrix: np.ndarray):
    """Native fixed-point column partials (see the reference docstring)."""
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    return _column_partials(matrix)
