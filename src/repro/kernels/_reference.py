"""Pure-python (numpy/scipy) hot kernels — the defining implementations.

Every function here is the bit-level *specification* its native counterpart
in :mod:`repro.kernels._native` must reproduce.  The bodies are the exact
numpy expressions the library used before kernel dispatch existed, moved
here so both kernel sets live behind one import seam
(:mod:`repro.kernels`).

This module must not import anything from :mod:`repro` outside the kernels
package: the modules it accelerates (``repro.neighbors._distance``,
``repro.geometry.boxes``, ``repro.utils.exactsum``) import *it*.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on scipy installs
    from scipy.spatial.distance import cdist as _cdist
except ImportError:  # pragma: no cover - scipy-less environments
    _cdist = None

#: Whether scipy's ``cdist`` (the distance-slab reference kernel) is
#: available.  The native slab is pinned to cdist's left-to-right
#: accumulation order, so native mode requires it.
HAVE_SCIPY_CDIST = _cdist is not None

#: Every finite float64 is an integer multiple of ``2**-SCALE_BITS``
#: (mirrors :data:`repro.utils.exactsum.SCALE_BITS`; kept local because
#: exactsum imports this package).
SCALE_BITS = 1074

#: ``2**53`` — scaling a frexp mantissa (``0.5 <= |m| < 1``) by this yields
#: an exact integer with at most 53 bits.
_MANTISSA_SCALE = float(1 << 53)

#: Longest summation segment: ``512 * 2**53 < 2**63`` guarantees the int64
#: segment sums cannot overflow.
_SEGMENT = 512


def squared_distance_slab(queries: np.ndarray,
                          data: np.ndarray) -> np.ndarray:
    """Exact ``(q, n)`` squared Euclidean distances, by direct differencing.

    scipy's ``cdist`` accumulates ``(x_a - y_a)^2`` left-to-right over the
    axes — the order the native kernel replicates term for term.
    """
    if _cdist is not None:
        return _cdist(queries, data, metric="sqeuclidean")
    difference = queries[:, None, :] - data[None, :, :]
    return np.einsum("qnd,qnd->qn", difference, difference)


def squared_distance_gather(queries: np.ndarray,
                            neighbors: np.ndarray) -> np.ndarray:
    """Squared distances from each query to its own ``(q, k, d)`` candidate
    set, translate-to-origin (see
    :func:`repro.neighbors._distance.squared_distance_gather` for why this
    is bitwise the slab kernel's value)."""
    difference = neighbors - queries[:, None, :]
    if _cdist is not None:
        q, k, d = difference.shape
        flat = np.ascontiguousarray(difference.reshape(q * k, d))
        return _cdist(flat, np.zeros((1, d)),
                      metric="sqeuclidean").reshape(q, k)
    return np.einsum("qkd,qkd->qk", difference, difference)


def fused_box_labels(points: np.ndarray, shifts: np.ndarray,
                     width: float) -> np.ndarray:
    """The grid hash ``floor((x - shift) / width)`` as ``(n, k)`` int64.

    One scalar sequence per coordinate — subtract, divide, floor, cast —
    which is what the native kernel fuses into a single pass (no
    intermediate ``(n, k)`` float temporaries).
    """
    return np.floor((points - shifts[None, :]) / width).astype(np.int64)


def fused_interval_labels(values: np.ndarray, width: float,
                          offset: float = 0.0) -> np.ndarray:
    """Elementwise interval hash ``floor((v - offset) / width)`` (any shape)."""
    return np.floor((values - offset) / width).astype(np.int64)


def fixed_point_column_partials(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact fixed-point partial sums of a ``(q, k)`` float matrix, as
    integer arrays.

    Decomposes every column's exact sum (in ``2**-SCALE_BITS`` units, see
    :mod:`repro.utils.exactsum`) into ``(limb, shift)`` pairs: entry ``i``
    contributes ``limbs[i] * 2**shifts[i]`` to column ``columns[i]``'s
    total.  Each limb is a sum of at most ``_SEGMENT`` 53-bit mantissa
    integers sharing one exponent, so it fits int64 with headroom — the
    whole partial is plain fixed-width integers, picklable without
    arbitrary-precision payloads and producible by a compiled kernel.

    The decomposition itself is *not* canonical (the native kernel emits a
    different but equivalent one); the **merged total** per column —
    ``sum(limbs[i] << shifts[i])`` over the column's entries, exact integer
    arithmetic — is canonical, and equals
    :func:`repro.utils.exactsum.fixed_point_sum` of the column bit for bit.

    Returns
    -------
    (limbs, shifts, columns):
        Equal-length ``int64`` arrays (empty for an empty matrix).
    """
    matrix = np.asarray(matrix, dtype=float)
    q, k = matrix.shape
    empty = np.empty(0, dtype=np.int64)
    if q == 0 or k == 0:
        return empty, empty, empty
    mantissas, exponents = np.frexp(matrix)
    integers = (mantissas * _MANTISSA_SCALE).astype(np.int64)
    shifts = exponents.astype(np.int64) + (SCALE_BITS - 53)
    flat_integers = np.ascontiguousarray(integers.T).reshape(-1)
    flat_shifts = np.ascontiguousarray(shifts.T).reshape(-1)
    flat_columns = np.repeat(np.arange(k, dtype=np.int64), q)
    # Group by (column, shift): primary key last in lexsort.
    order = np.lexsort((flat_shifts, flat_columns))
    flat_integers = flat_integers[order]
    flat_shifts = flat_shifts[order]
    flat_columns = flat_columns[order]
    change = (np.diff(flat_shifts) != 0) | (np.diff(flat_columns) != 0)
    group_starts = np.concatenate(
        [[0], np.flatnonzero(change) + 1, [flat_shifts.shape[0]]]
    )
    starts = []
    for index in range(group_starts.shape[0] - 1):
        starts.extend(range(int(group_starts[index]),
                            int(group_starts[index + 1]), _SEGMENT))
    starts = np.asarray(starts, dtype=np.int64)
    limbs = np.add.reduceat(flat_integers, starts).astype(np.int64)
    return limbs, flat_shifts[starts], flat_columns[starts]
