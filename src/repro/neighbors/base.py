"""The :class:`NeighborBackend` protocol.

A backend is bound to one ``(n, d)`` dataset and answers the distance queries
the rest of the library needs:

* :meth:`~NeighborBackend.radius_counts` — ``B_r(x_i, S)`` for every dataset
  point (the per-point ball counts of paper Section 3.1);
* :meth:`~NeighborBackend.query_radius_counts` — the same counts around
  arbitrary query centres (used by the exponential-mechanism baseline);
* :meth:`~NeighborBackend.count_within_many` — the batched ``(centers,
  radii)`` grid form, which strategies fuse (one distance pass, or one
  request per shard, for a whole probe batch);
* :meth:`~NeighborBackend.kth_distances` — each point's distance to its
  ``k``-th nearest dataset point (the statistic behind the non-private
  factor-2 approximation).

Everything else — capped counts, the sensitivity-2 score ``L(r, S)`` and its
whole-grid profile — is derived here in the base class from one primitive the
concrete backends implement: each point's ``k`` smallest *squared* distances
(``min(B_r(x), k)`` only depends on the ``k`` nearest neighbours of ``x``, so
this is a sufficient statistic for every capped count).  All comparisons
happen in squared space — ``within radius r`` means ``d2 <= r*r`` — matching
scipy's KD-tree convention so every backend returns identical integer counts;
see :mod:`repro.neighbors._distance`.

The derived profile evaluation never materialises an ``(n, m)`` count matrix.
Small targets merge-walk the globally sorted truncated squared distances
against the sorted radii, maintaining a histogram of capped counts —
``O(n k log(nk) + m (n + k))`` time, ``O(n k)`` memory for ``m`` radii.
Large targets (by default ``t > n/2`` at ``n >= 8192``) switch to a
radii-chunked *streaming* walk that recomputes blocked distance passes per
radius chunk and persists nothing — ``O(n * block + chunk * t)`` memory at
every target, which keeps outlier screening (``t ~ 0.9 n``) off the
``O(n^2)``-memory cliff.  Both paths are bit-identical.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.neighbors._distance import (
    DEFAULT_MEMORY_BUDGET,
    capped_count_histograms,
    row_block_size,
    squared_radius_keys,
)
from repro.utils.validation import check_integer, check_points

#: Auto-select the streaming (non-persisted) ``L(r, S)`` walk when the target
#: exceeds this fraction of ``n`` …
STREAMING_TARGET_FRACTION = 0.5

#: … and the dataset is at least this large (below it the persisted statistic
#: is small enough that streaming only adds distance recomputation).
STREAMING_MIN_POINTS = 8192


#: Shared key mapping (negative radii match nothing); one definition for all
#: paths, see :func:`repro.neighbors._distance.squared_radius_keys`.
_squared_radii = squared_radius_keys


def _score_from_histogram(histogram: np.ndarray, target: int,
                          descending_values: np.ndarray) -> float:
    """Top-``target`` mean from one capped-count histogram.

    The single counting-sort walk both evaluation paths share (so the
    persisted and streaming profiles stay bit-identical by construction):
    take as many of the largest capped values as the histogram holds, until
    ``target`` values are taken.

    Parameters
    ----------
    histogram:
        ``(cap + 1,)`` ``int64`` histogram of capped counts.
    target:
        The number of top values averaged (the paper's ``t``).
    descending_values:
        ``arange(cap, -1, -1)`` — passed in so batch callers allocate it
        once.

    Returns
    -------
    float
        ``L(r, S)`` at the histogram's radius.
    """
    taken = np.minimum(np.cumsum(histogram[::-1]), target)
    per_value = np.diff(taken, prepend=0)
    return float(per_value @ descending_values) / target


def _scores_from_histograms(histograms: np.ndarray, cap: int,
                            target: int) -> np.ndarray:
    """``L(r, S)`` per radius from ``(m, cap + 1)`` capped-count histograms
    (see :func:`_score_from_histogram`)."""
    descending_values = np.arange(cap, -1, -1, dtype=np.int64)
    scores = np.empty(histograms.shape[0], dtype=float)
    for slot in range(histograms.shape[0]):
        scores[slot] = _score_from_histogram(histograms[slot], target,
                                             descending_values)
    return scores


def _capped_profile(sorted_values: np.ndarray, rows: np.ndarray, n: int,
                    k: int, radii: np.ndarray, target: int) -> np.ndarray:
    """``L(r, S)`` at every radius, from globally sorted truncated distances.

    The truncated matrix holds each point's ``k = min(target, n)`` smallest
    squared distances (including the self-distance 0), so the number of a
    row's entries ``<= r*r`` *is* the capped count ``min(B_r(x), target)``.
    Radii are processed in sorted order; the global sort of all ``n * k``
    truncated values (``sorted_values``, with ``rows`` recording which point
    each entry belongs to) lets the per-point counts be updated incrementally
    with one ``bincount`` per radius segment, and the top-``target`` mean is
    read off a histogram of the capped counts (counting sort) instead of
    partitioning an ``(n, m)`` matrix.
    """
    keys = _squared_radii(radii)
    order = np.argsort(keys, kind="stable")
    positions = np.searchsorted(sorted_values, keys[order], side="right")

    counts = np.zeros(n, dtype=np.int64)
    scores = np.empty(radii.shape[0], dtype=float)
    descending_values = np.arange(k, -1, -1, dtype=np.int64)
    consumed = 0
    for slot, position in enumerate(positions):
        if position > consumed:
            counts += np.bincount(rows[consumed:position], minlength=n)
            consumed = position
        histogram = np.bincount(counts, minlength=k + 1)
        scores[slot] = _score_from_histogram(histogram, target,
                                             descending_values)

    result = np.empty_like(scores)
    result[order] = scores
    return result


class NeighborBackend(abc.ABC):
    """Distance-query oracle over a fixed ``(n, d)`` dataset."""

    #: Registry name of the strategy ("dense", "chunked", "tree", "sharded").
    name: ClassVar[str] = "abstract"

    #: Whether the streaming large-target profile may be auto-selected for
    #: this strategy.  The dense backend opts out: it already holds the full
    #: matrix, so recomputing distances would only slow it down.
    streaming_auto: ClassVar[bool] = True

    def __init__(self, points) -> None:
        self._points = check_points(points)
        self._truncated_cache: Optional[Tuple[int, np.ndarray]] = None
        self._flat_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Dataset
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> np.ndarray:
        """The ``(n, d)`` dataset the backend indexes."""
        return self._points

    @property
    def num_points(self) -> int:
        """The dataset size ``n``."""
        return int(self._points.shape[0])

    @property
    def dimension(self) -> int:
        """The ambient dimension ``d``."""
        return int(self._points.shape[1])

    # ------------------------------------------------------------------ #
    # Primitives each strategy implements
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        """``B_r(c, S)`` for every query centre ``c`` (``int64``, shape
        ``(len(centers),)``); negative radii give all-zero counts."""

    @abc.abstractmethod
    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        """Each point's ``k`` smallest squared distances to the dataset
        (including the self-distance 0), row-sorted ascending; ``(n, k)``."""

    # ------------------------------------------------------------------ #
    # Derived queries (shared across strategies)
    # ------------------------------------------------------------------ #
    def radius_counts(self, radius: float) -> np.ndarray:
        """``B_r(x_i, S)`` for every dataset point ``x_i``.

        Parameters
        ----------
        radius:
            The ball radius ``r``; negative radii give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` ``int64`` counts (each at least 1 for ``r >= 0``, since a
            point always contains itself).
        """
        return self.query_radius_counts(self._points, radius)

    def count_within_many(self, centers, radii) -> np.ndarray:
        """``B_r(c, S)`` for every centre ``c`` at every radius in ``radii``.

        The batched form of :meth:`query_radius_counts`: one call answers a
        whole ``(centers, radii)`` grid, which lets backends fuse the work —
        the chunked strategy computes each distance slab once for all radii,
        and the sharded strategy submits a single request per shard instead of
        one per radius.  This base implementation simply loops over the radii.

        Parameters
        ----------
        centers:
            ``(q, d)`` query centres.
        radii:
            ``(m,)`` radii; negative entries give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(m, q)`` ``int64`` counts; row ``j`` holds the counts at
            ``radii[j]``.
        """
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        return np.stack([
            self.query_radius_counts(centers, float(radius)) for radius in radii
        ]) if radii.size else np.empty((0, centers.shape[0]), dtype=np.int64)

    def truncated_squared(self, k: int) -> np.ndarray:
        """Row-sorted ``(n, k)`` matrix of each point's ``k`` smallest
        squared distances; cached (a larger cached answer serves smaller
        ``k``)."""
        k = check_integer(k, "k", minimum=1)
        k = min(k, self.num_points)
        if self._truncated_cache is None or self._truncated_cache[0] < k:
            self._truncated_cache = (k, self._compute_truncated_squared(k))
            self._flat_cache = None
        return self._truncated_cache[1][:, :k]

    def kth_distances(self, k: int) -> np.ndarray:
        """Each point's distance to its ``k``-th nearest dataset point
        (``k = 1`` is the self-distance 0).  This is the radius a ball centred
        at the point needs to capture ``k`` points — the quantity behind the
        non-private factor-2 approximation."""
        k = check_integer(k, "k", minimum=1)
        if k > self.num_points:
            raise ValueError(
                f"k ({k}) cannot exceed the number of points ({self.num_points})"
            )
        return np.sqrt(self.truncated_squared(k)[:, k - 1])

    def capped_radius_counts(self, radius: float, cap: int) -> np.ndarray:
        """``Bbar_r(x_i, S) = min(B_r(x_i, S), cap)`` for every dataset point
        (the capped counts of paper Section 3.1; capping is what drops the
        score's sensitivity from ``Omega(t)`` to 2, Lemma 4.5).

        Parameters
        ----------
        radius:
            The ball radius; negative radii give all-zero counts.
        cap:
            The cap (the paper always uses the target ``t``); ``cap=0`` gives
            all zeros.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` ``int64`` capped counts.
        """
        cap = check_integer(cap, "cap", minimum=0)
        if cap == 0 or radius < 0:
            return np.zeros(self.num_points, dtype=np.int64)
        truncated = self.truncated_squared(min(cap, self.num_points))
        counts = np.count_nonzero(truncated <= radius * radius, axis=1)
        return np.minimum(counts.astype(np.int64), cap)

    def capped_average_scores(self, radii, target: int,
                              streaming: Optional[bool] = None) -> np.ndarray:
        """The GoodRadius score ``L(r, S)`` at every radius in ``radii``.

        ``L(r, S)`` is the mean of the ``target`` largest capped counts
        ``min(B_r(x_i, S), target)`` (paper Algorithm 1, step 1; the
        sensitivity-2 score of Lemma 4.5).

        Two exact evaluation strategies are available:

        * **Persisted** (the default for small targets): cache each point's
          ``min(target, n)`` smallest squared distances and merge-walk the
          globally sorted statistic against the sorted radii.  ``O(n * t)``
          memory — a large win when ``target << n``.
        * **Streaming** (the default for large targets): never persist the
          statistic; process the radii in chunks and recompute blocked
          distance passes per chunk, histogramming capped counts on the fly.
          ``O(n * block + chunk * target)`` memory at *every* target, which is
          what keeps outlier screening (``t ~ 0.9 n``) off the ``O(n^2)``
          memory cliff.

        Both paths produce bit-identical scores (they count the same integer
        quantities in the same squared space).

        Parameters
        ----------
        radii:
            Scalar or ``(m,)`` array of radii; negative radii give score 0.
        target:
            The target cluster size ``t`` (also the count cap);
            ``1 <= target <= n``.
        streaming:
            ``None`` (default) picks automatically — streaming when
            ``target > STREAMING_TARGET_FRACTION * n`` and
            ``n >= STREAMING_MIN_POINTS`` (and the strategy has not opted
            out); ``True``/``False`` force a path.

        Returns
        -------
        numpy.ndarray
            ``(m,)`` float scores, in the order of the supplied radii.
        """
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        n = self.num_points
        target = check_integer(target, "target", minimum=1)
        if target > n:
            raise ValueError(f"target must lie in [1, n={n}], got {target}")
        if streaming is None:
            streaming = (self.streaming_auto
                         and n >= STREAMING_MIN_POINTS
                         and target > STREAMING_TARGET_FRACTION * n)
        if streaming:
            return self._streaming_profile(radii, target)
        sorted_values, rows, k = self._sorted_flat(min(target, n))
        return _capped_profile(sorted_values, rows, n, k, radii, target)

    def capped_average_score(self, radius: float, target: int) -> float:
        """``L(radius, S)`` for a single radius (see
        :meth:`capped_average_scores`)."""
        return float(self.capped_average_scores(
            np.asarray([radius], dtype=float), target)[0])

    # ------------------------------------------------------------------ #
    # Streaming large-target profile (radii-chunked, nothing persisted)
    # ------------------------------------------------------------------ #
    def _streaming_profile(self, radii: np.ndarray, target: int) -> np.ndarray:
        """Radii-chunked streaming evaluation of ``L(r, S)``.

        The radii are processed in chunks sized so the per-chunk histograms
        stay within (half of) the default memory budget; each chunk costs one
        blocked pass over the pairwise distances, delegated to
        :meth:`_capped_count_histograms` so multi-process strategies can
        parallelise the pass.
        """
        cap = min(target, self.num_points)
        keys = _squared_radii(radii)
        chunk = int(max(8, min(
            max(keys.shape[0], 1),
            DEFAULT_MEMORY_BUDGET // (16 * (cap + 1)),
        )))
        scores = np.empty(keys.shape[0], dtype=float)
        for start in range(0, keys.shape[0], chunk):
            histograms = self._capped_count_histograms(
                keys[start:start + chunk], cap
            )
            scores[start:start + chunk] = _scores_from_histograms(
                histograms, cap, target
            )
        return scores

    def _capped_count_histograms(self, keys: np.ndarray,
                                 cap: int) -> np.ndarray:
        """``(len(keys), cap + 1)`` histograms of capped counts over all
        dataset points (one blocked brute-force pass; strategies with worker
        processes override this to split the pass across query rows)."""
        block = row_block_size(self.num_points, self.dimension)
        return capped_count_histograms(self._points, self._points, keys, cap,
                                       block)

    def _sorted_flat(self, k: int):
        """Globally sorted truncated squared distances + row ids, cached."""
        truncated = self.truncated_squared(k)
        k = truncated.shape[1]
        if self._flat_cache is None or self._flat_cache[0] != k:
            flat = truncated.ravel()
            flat_order = np.argsort(flat, kind="stable")
            rows = flat_order // k
            if flat.size < 2 ** 31:
                rows = rows.astype(np.int32)
            self._flat_cache = (k, flat[flat_order], rows)
        return self._flat_cache[1], self._flat_cache[2], k


__all__ = [
    "NeighborBackend",
    "STREAMING_MIN_POINTS",
    "STREAMING_TARGET_FRACTION",
]
