"""The :class:`NeighborBackend` protocol.

A backend is bound to one ``(n, d)`` dataset and answers the distance queries
the rest of the library needs:

* :meth:`~NeighborBackend.radius_counts` — ``B_r(x_i, S)`` for every dataset
  point (the per-point ball counts of paper Section 3.1);
* :meth:`~NeighborBackend.query_radius_counts` — the same counts around
  arbitrary query centres (used by the exponential-mechanism baseline);
* :meth:`~NeighborBackend.count_within_many` — the batched ``(centers,
  radii)`` grid form, which strategies fuse (one distance pass, or one
  request per shard, for a whole probe batch);
* :meth:`~NeighborBackend.kth_distances` — each point's distance to its
  ``k``-th nearest dataset point (the statistic behind the non-private
  factor-2 approximation).

Everything else — capped counts, the sensitivity-2 score ``L(r, S)`` and its
whole-grid profile — is derived here in the base class from one primitive the
concrete backends implement: each point's ``k`` smallest *squared* distances
(``min(B_r(x), k)`` only depends on the ``k`` nearest neighbours of ``x``, so
this is a sufficient statistic for every capped count).  All comparisons
happen in squared space — ``within radius r`` means ``d2 <= r*r`` — matching
scipy's KD-tree convention so every backend returns identical integer counts;
see :mod:`repro.neighbors._distance`.

The derived profile evaluation never materialises an ``(n, m)`` count matrix.
Small targets merge-walk the globally sorted truncated squared distances
against the sorted radii, maintaining a histogram of capped counts —
``O(n k log(nk) + m (n + k))`` time, ``O(n k)`` memory for ``m`` radii.
Large targets (by default ``t > n/2`` at ``n >= 8192``) switch to a
radii-chunked *streaming* walk that recomputes blocked distance passes per
radius chunk and persists nothing — ``O(n * block + chunk * t)`` memory at
every target, which keeps outlier screening (``t ~ 0.9 n``) off the
``O(n^2)``-memory cliff.  Both paths are bit-identical.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Tuple

import numpy as np

from repro.neighbors._distance import (
    DEFAULT_MEMORY_BUDGET,
    capped_count_histograms,
    row_block_size,
    squared_radius_keys,
)
from repro.utils.exactsum import (
    exact_column_sums,
    fixed_point_column_sums,
    fixed_point_to_float,
)
from repro.utils.validation import check_integer, check_points

#: Auto-select the streaming (non-persisted) ``L(r, S)`` walk when the target
#: exceeds this fraction of ``n`` …
STREAMING_TARGET_FRACTION = 0.5

#: … and the dataset is at least this large (below it the persisted statistic
#: is small enough that streaming only adds distance recomputation).
STREAMING_MIN_POINTS = 8192


#: Shared key mapping (negative radii match nothing); one definition for all
#: paths, see :func:`repro.neighbors._distance.squared_radius_keys`.
_squared_radii = squared_radius_keys


class BackendUnavailableError(RuntimeError):
    """A backend's remote execution substrate became unreachable.

    Raised by transports (the distributed backend's node connections) when a
    node dies, a connection drops mid-message, or a per-call timeout fires.
    The distributed backend's failover layer catches it per node — re-dialing
    the node (replaying ``init``) or, if the node stays dead, handing its
    shards to the surviving nodes and replaying only its batch — so with
    retries enabled the error surfaces to callers only when recovery is
    exhausted: every node dead, the failure budget burned, the backend
    closed, or ``retries=0`` (the fail-fast mode).  Whenever it does surface,
    the contract is the original one, deliberately distinct from the sharded
    pool's silent serial fallback: the failure is reported instead of
    silently absorbed, and crucially *no partial merge* is ever returned,
    because a release computed from a subset of shards would be wrong, not
    just slow.
    """


def _score_from_histogram(histogram: np.ndarray, target: int,
                          descending_values: np.ndarray) -> float:
    """Top-``target`` mean from one capped-count histogram.

    The single counting-sort walk both evaluation paths share (so the
    persisted and streaming profiles stay bit-identical by construction):
    take as many of the largest capped values as the histogram holds, until
    ``target`` values are taken.

    Parameters
    ----------
    histogram:
        ``(cap + 1,)`` ``int64`` histogram of capped counts.
    target:
        The number of top values averaged (the paper's ``t``).
    descending_values:
        ``arange(cap, -1, -1)`` — passed in so batch callers allocate it
        once.

    Returns
    -------
    float
        ``L(r, S)`` at the histogram's radius.
    """
    taken = np.minimum(np.cumsum(histogram[::-1]), target)
    per_value = np.diff(taken, prepend=0)
    return float(per_value @ descending_values) / target


def _scores_from_histograms(histograms: np.ndarray, cap: int,
                            target: int) -> np.ndarray:
    """``L(r, S)`` per radius from ``(m, cap + 1)`` capped-count histograms
    (see :func:`_score_from_histogram`)."""
    descending_values = np.arange(cap, -1, -1, dtype=np.int64)
    scores = np.empty(histograms.shape[0], dtype=float)
    for slot in range(histograms.shape[0]):
        scores[slot] = _score_from_histogram(histograms[slot], target,
                                             descending_values)
    return scores


def _capped_profile(sorted_values: np.ndarray, rows: np.ndarray, n: int,
                    k: int, radii: np.ndarray, target: int) -> np.ndarray:
    """``L(r, S)`` at every radius, from globally sorted truncated distances.

    The truncated matrix holds each point's ``k = min(target, n)`` smallest
    squared distances (including the self-distance 0), so the number of a
    row's entries ``<= r*r`` *is* the capped count ``min(B_r(x), target)``.
    Radii are processed in sorted order; the global sort of all ``n * k``
    truncated values (``sorted_values``, with ``rows`` recording which point
    each entry belongs to) lets the per-point counts be updated incrementally
    with one ``bincount`` per radius segment, and the top-``target`` mean is
    read off a histogram of the capped counts (counting sort) instead of
    partitioning an ``(n, m)`` matrix.
    """
    keys = _squared_radii(radii)
    order = np.argsort(keys, kind="stable")
    positions = np.searchsorted(sorted_values, keys[order], side="right")

    counts = np.zeros(n, dtype=np.int64)
    scores = np.empty(radii.shape[0], dtype=float)
    descending_values = np.arange(k, -1, -1, dtype=np.int64)
    consumed = 0
    for slot, position in enumerate(positions):
        if position > consumed:
            counts += np.bincount(rows[consumed:position], minlength=n)
            consumed = position
        histogram = np.bincount(counts, minlength=k + 1)
        scores[slot] = _score_from_histogram(histogram, target,
                                             descending_values)

    result = np.empty_like(scores)
    result[order] = scores
    return result


def depth_count_pairs(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """``[#{v <= a}, #{v >= a}]`` for every threshold ``a``.

    The single definition every depth-count path shares — the in-process
    backends evaluate it over the whole first coordinate, the sharded
    workers over their own shard's slice — so the per-shard integer
    partials sum to exactly the whole-dataset counts at any shard topology
    (exact integer comparisons, no floating-point accumulation).

    Parameters
    ----------
    values:
        ``(n,)`` data values (the first coordinate of the indexed points).
    thresholds:
        ``(m,)`` query thresholds.

    Returns
    -------
    numpy.ndarray
        ``(m, 2)`` ``int64``; column 0 counts ``v <= a``, column 1 counts
        ``v >= a``.
    """
    ordered = np.sort(np.asarray(values, dtype=float))
    thresholds = np.asarray(thresholds, dtype=float)
    below = np.searchsorted(ordered, thresholds, side="right")
    above = ordered.shape[0] - np.searchsorted(ordered, thresholds,
                                               side="left")
    return np.stack([below, above], axis=1).astype(np.int64)


def first_occurrence_cells(labels: np.ndarray):
    """Unique labels with counts, ordered by first occurrence.

    ``labels`` is either a ``(n,)`` scalar label array or a ``(n, k)``
    label-vector array (one row per element).  Returns ``(unique, counts)``
    with the unique labels ordered by the position of their first occurrence
    in the input — the same cell order a ``collections.Counter`` built from
    the label sequence would iterate in.  That ordering is load-bearing: the
    stability-based histogram mechanism draws one noise variate per occupied
    cell *in cell order*, so any path that precomputes the histogram (the
    backend view layer, the sharded merge) must present the cells in exactly
    this order for the release to be bit-identical to the label-sequence
    path.
    """
    labels = np.asarray(labels)
    if labels.ndim == 1:
        unique, first, counts = np.unique(labels, return_index=True,
                                          return_counts=True)
    else:
        unique, first, counts = np.unique(labels, axis=0, return_index=True,
                                          return_counts=True)
    order = np.argsort(first, kind="stable")
    return unique[order], counts[order]


#: Monotonic ids for :class:`BoxSelection` instances.  The sharded workers
#: key their per-shard membership cache on this token, so the masked queries
#: of one ``good_center`` call (and of one :class:`QueryPlan`) derive each
#: shard's membership at most once per worker instead of once per query.
_SELECTION_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class BoxSelection:
    """A label predicate: "the points whose image under *this view* falls in
    box ``label`` of the shifted partition ``(width, shifts)``".

    GoodCenter's selected set ``D`` (Algorithm 2, step 7) is exactly such a
    predicate over the partition-search view.  Passing the *predicate* — not
    a membership mask or a row list — to the masked aggregate queries lets
    the sharded backend ship it to the workers, each of which re-derives its
    own shard's membership from its (cached) search image: the selection
    never materialises as an ``O(n)`` array anywhere, parent included.

    Build one with :meth:`ProjectedView.box_selection`; it stays valid for
    masked queries on *any* view of the same backend (GoodCenter evaluates it
    against the rotated-frame view).  The ``token`` identifies the selection
    across queries: workers memoise their shard's membership rows under it,
    so repeated masked queries (or the queries of one plan) re-derive
    nothing.
    """

    view: "ProjectedView"
    width: float
    shifts: np.ndarray
    label: np.ndarray
    token: Optional[int] = None

    def membership(self) -> np.ndarray:
        """The ``(n,)`` boolean membership mask (materialised; the sharded
        masked queries never call this in the parent)."""
        return self.view.label_mask(self.width, self.shifts, self.label)


@dataclass(frozen=True)
class ClippedSum:
    """Result of :meth:`ProjectedView.masked_clipped_sum`.

    Attributes
    ----------
    count:
        How many selected image points fell inside the clip ball.
    vector_sum:
        ``(k,)`` correctly-rounded exact sum of ``y - center`` over those
        points — the statistics :func:`repro.mechanisms.noisy_average.noisy_average_from_stats`
        consumes.
    """

    count: int
    vector_sum: np.ndarray


class ProjectedView:
    """A queryable linear image ``Y = X A^T (+ b)`` of a backend's points.

    GoodCenter never asks distance questions about the *projected* points —
    only grid-hash questions ("how heavy is the heaviest box of this shifted
    partition?", "what is the box histogram?", "which points fall in this
    box?", "what are the per-axis interval labels?") and, since the steps
    8-11 migration, *masked aggregate* questions over a selected subset
    ("what are the per-axis interval histograms of the selected points?",
    "how many selected points fall in this sphere, and what is the exact sum
    of their offsets from its centre?").  A view answers all of them over an
    arbitrary linear image (a JL projection, a random rotation, or the
    identity) of the points a backend indexes, without the caller ever
    materialising the image itself.

    This base implementation serves the in-process strategies (dense /
    chunked / tree): the image is computed once with the row-decomposable
    :func:`repro.geometry.jl.project_rows` and cached on the view, so a
    partition search probing many shifted partitions pays the projection cost
    once.  :class:`~repro.neighbors.sharded.ShardedBackend` overrides
    :meth:`NeighborBackend.view` with a fan-out implementation that ships the
    small ``(k, d)`` matrix to the workers once and applies it shard-side
    over the shared-memory block — the parent never holds the ``(n, k)``
    image.  Because ``project_rows`` is bitwise row-decomposable and the grid
    hashes (:func:`repro.geometry.boxes.box_labels`,
    :func:`repro.geometry.boxes.interval_labels`) are shared single
    definitions, every strategy's view returns identical integers — the
    exact-parity contract extends to projected queries.

    Parameters
    ----------
    backend:
        The :class:`NeighborBackend` whose points the view images.
    matrix:
        ``(k, d)`` projection matrix, or ``None`` for the identity view.
    offset:
        Optional ``(k,)`` translation of the image.
    """

    def __init__(self, backend: "NeighborBackend", matrix=None,
                 offset=None) -> None:
        self._backend = backend
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=float)
            if matrix.ndim != 2 or matrix.shape[1] != backend.dimension:
                raise ValueError(
                    f"matrix must have shape (k, {backend.dimension}), got "
                    f"{matrix.shape}"
                )
        self._matrix = matrix
        if offset is not None:
            offset = np.asarray(offset, dtype=float).reshape(-1)
            k = matrix.shape[0] if matrix is not None else backend.dimension
            if offset.shape[0] != k:
                raise ValueError(
                    f"offset must have {k} entries, got {offset.shape[0]}"
                )
        self._offset = offset
        self._image_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Geometry of the image
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> "NeighborBackend":
        """The backend whose points the view images."""
        return self._backend

    @property
    def matrix(self) -> Optional[np.ndarray]:
        """The ``(k, d)`` projection matrix (``None`` = identity view)."""
        return self._matrix

    @property
    def offset(self) -> Optional[np.ndarray]:
        """The ``(k,)`` translation of the image (``None`` = no shift)."""
        return self._offset

    @property
    def image_dimension(self) -> int:
        """The dimension ``k`` of the image space."""
        if self._matrix is not None:
            return int(self._matrix.shape[0])
        return self._backend.dimension

    @property
    def num_points(self) -> int:
        """The number of imaged points (the backend's ``n``)."""
        return self._backend.num_points

    @property
    def batch_size(self) -> int:
        """How many partition-search attempts callers should batch per
        :meth:`heaviest_cell_counts` call.  1 for in-process views (there is
        no fan-out to amortise, and batching would waste hash passes beyond
        the accepted attempt); the sharded view raises it."""
        return 1

    def _check_rows(self, rows) -> np.ndarray:
        """Validate a row-subset index array (no negative wrap-around: the
        sharded view routes rows to shards by value, so python-style negative
        indices would silently diverge from the in-process view)."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size and (int(rows.min()) < 0
                          or int(rows.max()) >= self.num_points):
            raise ValueError("rows must lie in [0, n)")
        return rows

    def image(self, rows=None) -> np.ndarray:
        """The projected coordinates of (a row subset of) the points.

        With ``rows=None`` the full ``(n, k)`` image is computed once and
        cached on the view; with an index array only those rows are
        projected (bitwise identical to slicing the full image, by
        :func:`~repro.geometry.jl.project_rows` row-decomposability).
        Identity views return (slices of) the backend's own points without
        copying.
        """
        if rows is not None:
            rows = self._check_rows(rows)
        points = self._backend.points
        if self._matrix is None and self._offset is None:
            return points if rows is None else points[rows]
        from repro.geometry.jl import apply_linear_image

        if rows is not None:
            return apply_linear_image(points[rows], self._matrix,
                                      self._offset)
        if self._image_cache is None:
            self._image_cache = apply_linear_image(points, self._matrix,
                                                   self._offset)
        return self._image_cache

    # ------------------------------------------------------------------ #
    # Grid-hash queries
    # ------------------------------------------------------------------ #
    def _check_shifts(self, shifts, batched: bool) -> np.ndarray:
        shifts = np.asarray(shifts, dtype=float)
        if batched:
            shifts = np.atleast_2d(shifts)
            width_axis = shifts.shape[1]
        else:
            shifts = shifts.reshape(-1)
            width_axis = shifts.shape[0]
        if width_axis != self.image_dimension:
            raise ValueError(
                f"shifts have dimension {width_axis}, expected "
                f"{self.image_dimension}"
            )
        return shifts

    def heaviest_cell_counts(self, width: float, shifts) -> np.ndarray:
        """Heaviest-box occupancy of the image, per shifted partition.

        For each row of ``shifts`` (the per-axis offsets of one randomly
        shifted partition of side ``width``) returns
        ``max_B |{i : Y_i in box B}|`` — the sensitivity-1 query GoodCenter
        feeds to AboveThreshold.

        Parameters
        ----------
        width:
            The box side length.
        shifts:
            ``(a, k)`` per-attempt shift vectors (a single ``(k,)`` vector is
            promoted to one attempt).

        Returns
        -------
        numpy.ndarray
            ``(a,)`` ``int64`` heaviest-cell counts.
        """
        from repro.geometry.boxes import box_labels

        shifts = self._check_shifts(shifts, batched=True)
        image = self.image()
        counts = np.empty(shifts.shape[0], dtype=np.int64)
        for attempt in range(shifts.shape[0]):
            labels = box_labels(image, shifts[attempt], float(width))
            _, cell_counts = np.unique(labels, axis=0, return_counts=True)
            counts[attempt] = int(cell_counts.max())
        return counts

    def label_array(self, width: float, shifts) -> np.ndarray:
        """The ``(n, k)`` integer box-index vectors of every imaged point
        under one shifted partition (the view analogue of
        :meth:`~repro.geometry.boxes.ShiftedBoxPartition.label_array`)."""
        from repro.geometry.boxes import box_labels

        shifts = self._check_shifts(shifts, batched=False)
        return box_labels(self.image(), shifts, float(width))

    def cell_histogram(self, width: float, shifts, return_inverse: bool = False):
        """Occupied boxes of one shifted partition, with their counts.

        Returns ``(labels, counts)`` where ``labels`` is ``(m, k)`` (one row
        per occupied box) and ``counts`` is ``(m,)``, ordered by the box's
        first occurrence in dataset-row order — the cell order the
        stability-based histogram mechanism needs for bit-identical noise
        draws (see :func:`first_occurrence_cells`).

        With ``return_inverse=True`` a third ``(n,)`` array maps every imaged
        point to its box's position in ``labels``, so a caller choosing a box
        from the histogram gets the membership mask as ``inverse == position``
        without a second hash pass (or, for the sharded view, a second
        fan-out).
        """
        labels = self.label_array(width, shifts)
        if not return_inverse:
            return first_occurrence_cells(labels)
        unique, first, inverse, counts = np.unique(
            labels, axis=0, return_index=True, return_inverse=True,
            return_counts=True,
        )
        order = np.argsort(first, kind="stable")
        position = np.empty(order.shape[0], dtype=np.int64)
        position[order] = np.arange(order.shape[0], dtype=np.int64)
        return unique[order], counts[order], position[np.reshape(inverse, -1)]

    def label_mask(self, width: float, shifts, label) -> np.ndarray:
        """Boolean mask of the imaged points falling in the box ``label``
        of the shifted partition ``(width, shifts)``."""
        label = np.asarray(label, dtype=np.int64).reshape(-1)
        labels = self.label_array(width, shifts)
        if label.shape[0] != labels.shape[1]:
            raise ValueError(
                f"label has {label.shape[0]} axes, expected {labels.shape[1]}"
            )
        return np.all(labels == label[None, :], axis=1)

    def axis_interval_labels(self, width: float, offset: float = 0.0,
                             rows=None) -> np.ndarray:
        """Per-axis interval labels of (a row subset of) the image.

        Labels *all* ``k`` axes of the image in one call —
        ``result[:, j] = floor((Y[:, j] - offset) / width)`` — which is how
        GoodCenter's rotated-axis stage (Algorithm 2, step 9) gets its ``d``
        per-axis histograms in a single backend round-trip instead of one
        serial pass per axis.

        Parameters
        ----------
        width:
            The interval length ``p``.
        offset:
            The partition origin (0 in the paper).
        rows:
            Optional sorted-or-not index array restricting the labelling to a
            subset of the points (GoodCenter labels only the points mapped
            into the chosen box).  Row order of the result follows ``rows``.

        Returns
        -------
        numpy.ndarray
            ``(q, k)`` ``int64`` interval labels.
        """
        from repro.geometry.boxes import interval_labels

        return interval_labels(self.image(rows), float(width), float(offset))

    # ------------------------------------------------------------------ #
    # Masked aggregation (GoodCenter steps 8-11)
    # ------------------------------------------------------------------ #
    def box_selection(self, width: float, shifts, label) -> BoxSelection:
        """A :class:`BoxSelection` predicate over *this* view's image.

        Parameters
        ----------
        width, shifts:
            The shifted partition (as in :meth:`label_mask`).
        label:
            The ``(k,)`` integer box label selecting the points.
        """
        shifts = self._check_shifts(shifts, batched=False)
        label = np.asarray(label, dtype=np.int64).reshape(-1)
        if label.shape[0] != self.image_dimension:
            raise ValueError(
                f"label has {label.shape[0]} axes, expected "
                f"{self.image_dimension}"
            )
        return BoxSelection(view=self, width=float(width), shifts=shifts,
                            label=label, token=next(_SELECTION_TOKENS))

    def _selection_rows(self, selection) -> np.ndarray:
        """Normalise a masked-query selection to ascending global rows.

        A selection is a :class:`BoxSelection` (evaluated against the view it
        was built from — it must share this view's backend), an ``(n,)``
        boolean membership mask, or an integer row array (sorted here;
        duplicate rows keep multiset semantics).  Ascending dataset-row order
        is part of the query contract — it is the order the per-axis
        histograms' first-occurrence cells are defined over.
        """
        if isinstance(selection, BoxSelection):
            if selection.view.backend is not self.backend:
                raise ValueError(
                    "the BoxSelection was built over a different backend's "
                    "view; selections only transfer between views of the "
                    "same backend"
                )
            return np.flatnonzero(selection.membership())
        array = np.asarray(selection)
        if array.dtype == np.bool_:
            if array.shape != (self.num_points,):
                raise ValueError(
                    f"boolean selection must have shape ({self.num_points},), "
                    f"got {array.shape}"
                )
            return np.flatnonzero(array)
        return np.sort(self._check_rows(array), kind="stable")

    def masked_count(self, selection) -> int:
        """How many points the selection covers (duplicates counted)."""
        return int(self._selection_rows(selection).shape[0])

    def masked_sum(self, selection) -> np.ndarray:
        """The ``(k,)`` exact (correctly-rounded) sum of the selected image
        points.

        Computed through :func:`repro.utils.exactsum.exact_column_sums`, so
        the value is independent of how the rows are partitioned — every
        backend, at every shard count, returns bitwise the same vector.
        An empty selection sums to zeros.
        """
        rows = self._selection_rows(selection)
        return exact_column_sums(self.image(rows))

    def masked_minmax(self, selection) -> np.ndarray:
        """Per-axis extremes of the selected image points.

        Returns a ``(2, k)`` array — row 0 the minima, row 1 the maxima.
        An empty selection returns the merge identities ``+inf`` / ``-inf``.
        Min/max are exact and associative, so the sharded merge is trivially
        bitwise.
        """
        rows = self._selection_rows(selection)
        k = self.image_dimension
        if rows.shape[0] == 0:
            return np.vstack([np.full(k, np.inf), np.full(k, -np.inf)])
        image = self.image(rows)
        return np.vstack([image.min(axis=0), image.max(axis=0)])

    def masked_clipped_partial(self, selection, center,
                               clip_radius: float) -> Tuple[int, List[int]]:
        """The mergeable (fixed-point) form of :meth:`masked_clipped_sum`:
        ``(count, per-column exact integer sums)``.  Partials from disjoint
        row ranges merge by integer addition; the sharded view uses this as
        its wire format."""
        from repro.geometry.balls import ball_membership

        center = np.asarray(center, dtype=float).reshape(-1)
        if center.shape[0] != self.image_dimension:
            raise ValueError(
                f"center has dimension {center.shape[0]}, expected "
                f"{self.image_dimension}"
            )
        rows = self._selection_rows(selection)
        image = self.image(rows)
        inside = ball_membership(image, center, float(clip_radius))
        deltas = image[inside] - center[None, :]
        return int(np.count_nonzero(inside)), fixed_point_column_sums(deltas)

    def masked_clipped_sum(self, selection, center,
                           clip_radius: float) -> ClippedSum:
        """NoisyAVG's sufficient statistics, computed over the image.

        Restricts the selection to the image points within ``clip_radius`` of
        ``center`` (the bounding sphere ``C`` of Algorithm 2, step 10 — the
        shared :func:`repro.geometry.balls.ball_membership` definition) and
        returns their count with the exact sum of ``y - center`` — everything
        step 11's noisy average needs, in ``O(k)`` parent memory.  The one
        conversion of the fixed-point partial happens here, on the total.
        """
        count, totals = self.masked_clipped_partial(selection, center,
                                                    clip_radius)
        vector_sum = np.asarray(
            [fixed_point_to_float(total) for total in totals], dtype=float
        )
        return ClippedSum(count=count, vector_sum=vector_sum)

    def masked_axis_histograms(self, selection, width: float,
                               offset: float = 0.0) -> list:
        """Per-axis interval histograms of the selected image points.

        For each of the ``k`` image axes, returns ``(labels, counts)`` over
        the occupied intervals of the axis partition ``floor((y - offset) /
        width)``, ordered by first occurrence in ascending dataset-row order
        — exactly the cell order GoodCenter's per-axis stability-histogram
        draws (step 9) are defined over, so a caller feeding these histograms
        to :func:`repro.mechanisms.histogram.stable_histogram_choice_from_counts`
        reproduces the label-sequence path's noise bit for bit.  The result
        is ``O(occupied intervals)`` per axis; the sharded view additionally
        never materialises the ``(q, k)`` label matrix in the parent (this
        in-process base labels its own rows transiently).
        """
        from repro.geometry.boxes import interval_labels

        rows = self._selection_rows(selection)
        labels = interval_labels(self.image(rows), float(width), float(offset))
        return [first_occurrence_cells(labels[:, axis])
                for axis in range(self.image_dimension)]


# --------------------------------------------------------------------------- #
# Query plans: one-round-trip multi-query execution
# --------------------------------------------------------------------------- #

#: Plan operations evaluated over a selection (their per-shard partials are
#: computed from the memoised membership rows).
MASKED_PLAN_OPS = frozenset({
    "masked_count", "masked_sum", "masked_minmax", "masked_clipped_sum",
    "masked_axis_histograms",
})

#: Plan operations evaluated against a :class:`ProjectedView` (the masked
#: ones plus the grid-hash queries).
VIEW_PLAN_OPS = MASKED_PLAN_OPS | frozenset({
    "heaviest_cell_counts", "cell_histogram", "axis_interval_labels",
})

#: Whole-dataset plan operations answered by the backend itself.
#: ``count_within_many`` and ``depth_counts`` decompose into per-shard
#: partials and join the single fused round trip; ``capped_average_scores``
#: is a *coordinator* operation (its merge-walk / streaming evaluation runs
#: its own internal fan-outs) carried in a plan so score batches ride the
#: same submission and instrumentation path.
BACKEND_PLAN_OPS = frozenset({
    "count_within_many", "capped_average_scores", "depth_counts",
})


@dataclass(frozen=True)
class PlanQuery:
    """One operation of a :class:`QueryPlan`.

    Attributes
    ----------
    op:
        The primitive's name (a member of :data:`VIEW_PLAN_OPS` or
        :data:`BACKEND_PLAN_OPS`).
    view_slot:
        Index into the plan's view table (``None`` for backend-level
        operations).
    selection_slot:
        Index into the plan's selection table (``None`` for unselected
        operations).  Queries sharing a slot share one membership
        derivation per shard.
    args:
        The validated positional payload, in the order of the underlying
        method's signature (after the selection, where one applies).
    """

    op: str
    view_slot: Optional[int]
    selection_slot: Optional[int]
    args: tuple


class QueryPlan:
    """An ordered bundle of backend queries executed in one round trip.

    A plan collects any number of the existing read-only primitives —
    masked aggregates, grid hashes, batched ball counts — over one or more
    :class:`ProjectedView`\\ s and selections, and hands them to
    :meth:`NeighborBackend.execute` (or :meth:`NeighborBackend.submit` for
    asynchronous submission).  The payoff is transport, not semantics: the
    sharded backend ships the whole bundle to each shard as a *single*
    worker task — one round trip per shard for the entire plan, with the
    shard's selection membership and projected images derived at most once —
    while the in-process backends evaluate the same bundle as a plain loop,
    so parity across backends is by construction.

    Each append method validates its arguments eagerly (so mistakes surface
    where the plan is built, not inside a worker) and returns the query's
    *result slot*: ``execute`` returns a list whose entry at that slot holds
    the query's result, with exactly the type and values the corresponding
    direct method call would return.

    Plans are read-only bundles — they carry no noise, no mutation, and no
    dataflow between their queries (a query's arguments cannot depend on
    another query's result; dependent rounds are separate plans, which
    :meth:`NeighborBackend.submit` lets callers overlap).
    """

    def __init__(self) -> None:
        self._views: List["ProjectedView"] = []
        self._selections: List[Any] = []
        self._queries: List[PlanQuery] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def views(self) -> List["ProjectedView"]:
        """The distinct views the plan queries (deduplicated by identity)."""
        return list(self._views)

    @property
    def selections(self) -> List[Any]:
        """The distinct selections the plan queries (deduplicated by
        identity; queries sharing a slot share one membership derivation)."""
        return list(self._selections)

    @property
    def queries(self) -> List[PlanQuery]:
        """The ordered queries; ``execute`` returns one result per entry."""
        return list(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def _slot_of(self, table: list, item) -> int:
        for slot, existing in enumerate(table):
            if existing is item:
                return slot
        table.append(item)
        return len(table) - 1

    def _append(self, op: str, view: Optional["ProjectedView"],
                selection, args: tuple) -> int:
        view_slot = None if view is None else self._slot_of(self._views, view)
        selection_slot = (None if selection is None
                          else self._slot_of(self._selections, selection))
        self._queries.append(PlanQuery(op=op, view_slot=view_slot,
                                       selection_slot=selection_slot,
                                       args=args))
        return len(self._queries) - 1

    @staticmethod
    def _require_view(view) -> "ProjectedView":
        if not isinstance(view, ProjectedView):
            raise TypeError(
                f"plan queries need a ProjectedView, got {type(view).__name__}"
            )
        return view

    # ------------------------------------------------------------------ #
    # Grid-hash queries
    # ------------------------------------------------------------------ #
    def heaviest_cell_counts(self, view: "ProjectedView", width: float,
                             shifts) -> int:
        """Append a :meth:`ProjectedView.heaviest_cell_counts` query
        (GoodCenter's partition-search batch); returns its result slot."""
        view = self._require_view(view)
        shifts = view._check_shifts(shifts, batched=True)
        return self._append("heaviest_cell_counts", view, None,
                            (float(width), shifts))

    def cell_histogram(self, view: "ProjectedView", width: float, shifts,
                       return_inverse: bool = False) -> int:
        """Append a :meth:`ProjectedView.cell_histogram` query; returns its
        result slot."""
        view = self._require_view(view)
        shifts = view._check_shifts(shifts, batched=False)
        return self._append("cell_histogram", view, None,
                            (float(width), shifts, bool(return_inverse)))

    def axis_interval_labels(self, view: "ProjectedView", width: float,
                             offset: float = 0.0, rows=None) -> int:
        """Append a :meth:`ProjectedView.axis_interval_labels` query; returns
        its result slot."""
        view = self._require_view(view)
        if rows is not None:
            rows = view._check_rows(rows)
        return self._append("axis_interval_labels", view, None,
                            (float(width), float(offset), rows))

    # ------------------------------------------------------------------ #
    # Masked aggregation
    # ------------------------------------------------------------------ #
    def _masked(self, op: str, view, selection, args: tuple = ()) -> int:
        view = self._require_view(view)
        if selection is None:
            raise ValueError(f"{op} requires a selection")
        return self._append(op, view, selection, args)

    def masked_count(self, view: "ProjectedView", selection) -> int:
        """Append a :meth:`ProjectedView.masked_count` query; returns its
        result slot."""
        return self._masked("masked_count", view, selection)

    def masked_sum(self, view: "ProjectedView", selection) -> int:
        """Append a :meth:`ProjectedView.masked_sum` query; returns its
        result slot."""
        return self._masked("masked_sum", view, selection)

    def masked_minmax(self, view: "ProjectedView", selection) -> int:
        """Append a :meth:`ProjectedView.masked_minmax` query; returns its
        result slot."""
        return self._masked("masked_minmax", view, selection)

    def masked_clipped_sum(self, view: "ProjectedView", selection, center,
                           clip_radius: float) -> int:
        """Append a :meth:`ProjectedView.masked_clipped_sum` query (NoisyAVG's
        ``(count, exact sum)`` statistics); returns its result slot."""
        view = self._require_view(view)
        center = np.asarray(center, dtype=float).reshape(-1)
        if center.shape[0] != view.image_dimension:
            raise ValueError(
                f"center has dimension {center.shape[0]}, expected "
                f"{view.image_dimension}"
            )
        return self._masked("masked_clipped_sum", view, selection,
                            (center, float(clip_radius)))

    def masked_axis_histograms(self, view: "ProjectedView", selection,
                               width: float, offset: float = 0.0) -> int:
        """Append a :meth:`ProjectedView.masked_axis_histograms` query
        (GoodCenter's step-9 per-axis interval histograms); returns its
        result slot."""
        return self._masked("masked_axis_histograms", view, selection,
                            (float(width), float(offset)))

    # ------------------------------------------------------------------ #
    # Whole-dataset queries
    # ------------------------------------------------------------------ #
    def count_within_many(self, centers, radii) -> int:
        """Append a :meth:`NeighborBackend.count_within_many` query (the
        batched ``(centers, radii)`` count grid); returns its result slot.
        Decomposes into per-shard partials, so it joins the plan's single
        fused round trip."""
        centers = check_points(centers, name="centers")
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        return self._append("count_within_many", None, None, (centers, radii))

    def capped_average_scores(self, radii, target: int,
                              streaming: Optional[bool] = None) -> int:
        """Append a :meth:`NeighborBackend.capped_average_scores` batch (the
        GoodRadius score profile); returns its result slot.  A *coordinator*
        operation: its merge-walk / streaming evaluation runs the backend's
        own internal fan-outs rather than joining the per-shard bundle."""
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        target = check_integer(target, "target", minimum=1)
        return self._append("capped_average_scores", None, None,
                            (radii, target, streaming))

    def depth_counts(self, thresholds) -> int:
        """Append a :meth:`NeighborBackend.depth_counts` query (the interior
        point reduction's one-sided rank counts); returns its result slot.
        Decomposes into per-shard integer partials, so it joins the plan's
        single fused round trip."""
        thresholds = np.atleast_1d(np.asarray(thresholds, dtype=float))
        if thresholds.ndim != 1:
            raise ValueError("thresholds must be a 1-d array")
        return self._append("depth_counts", None, None, (thresholds,))


class PlanFuture:
    """Handle for a submitted :class:`QueryPlan`.

    The base class wraps an already-computed result list — the serial
    backends evaluate eagerly at submission, so ``submit`` degrades to
    ``execute`` with a deferred hand-over.  The sharded backend returns a
    subclass whose per-shard tasks are genuinely in flight; its
    :meth:`result` collects and merges them **in shard order**, so the
    merged values — and therefore every released value derived from them —
    are bitwise independent of worker scheduling and of how many plans were
    overlapped.
    """

    def __init__(self, results: List[Any]) -> None:
        self._results = list(results)

    def done(self) -> bool:
        """Whether :meth:`result` will return without blocking."""
        return True

    def result(self) -> List[Any]:
        """The per-query results, indexed by the slots the plan's append
        methods returned.  Blocks until the plan completes; repeated calls
        return the same list."""
        return self._results


class NeighborBackend(abc.ABC):
    """Distance-query oracle over a fixed ``(n, d)`` dataset."""

    #: Registry name of the strategy ("dense", "chunked", "tree", "sharded").
    name: ClassVar[str] = "abstract"

    #: Whether the streaming large-target profile may be auto-selected for
    #: this strategy.  The dense backend opts out: it already holds the full
    #: matrix, so recomputing distances would only slow it down.
    streaming_auto: ClassVar[bool] = True

    #: Whether speculative plan submission pays off on this strategy.  Only
    #: strategies whose :meth:`submit` genuinely overlaps work with the
    #: parent (or whose plan execution is instrumented for the regression
    #: tests) opt in; serial strategies evaluate ``submit`` eagerly, so a
    #: speculative plan there is pure wasted work on a mispredict.
    supports_speculation: ClassVar[bool] = False

    def __init__(self, points) -> None:
        self._points = check_points(points)
        self._truncated_cache: Optional[Tuple[int, np.ndarray]] = None
        self._flat_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        #: Per-stage speculative-execution accounting, recorded by callers
        #: (GoodCenter's noise-gate predictor) via :meth:`record_speculation`.
        self._speculation: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Speculative-execution accounting
    # ------------------------------------------------------------------ #
    def record_speculation(self, stage: str, hit: bool) -> None:
        """Record the outcome of one speculative plan submission.

        ``stage`` names the noise gate the prediction crossed (e.g.
        ``"box->axes"``); every submitted speculation is recorded exactly
        once — as a hit when the noisy choice matched the pre-noise argmax
        prediction and the speculative result was consumed, as a miss when
        it was discarded.  Purely diagnostic: the counters never influence
        any query or release.
        """
        entry = self._speculation.setdefault(str(stage),
                                             {"hits": 0, "misses": 0})
        entry["hits" if hit else "misses"] += 1

    def speculation_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage ``{"hits": ..., "misses": ...}`` speculation counters
        (a copy; empty until a caller speculates through this backend)."""
        return {stage: dict(entry)
                for stage, entry in self._speculation.items()}

    # ------------------------------------------------------------------ #
    # Dataset
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> np.ndarray:
        """The ``(n, d)`` dataset the backend indexes."""
        return self._points

    @property
    def num_points(self) -> int:
        """The dataset size ``n``."""
        return int(self._points.shape[0])

    @property
    def dimension(self) -> int:
        """The ambient dimension ``d``."""
        return int(self._points.shape[1])

    # ------------------------------------------------------------------ #
    # Projected dataset views
    # ------------------------------------------------------------------ #
    def view(self, matrix=None, offset=None) -> ProjectedView:
        """A :class:`ProjectedView` over the linear image ``X A^T (+ b)`` of
        the indexed points.

        Parameters
        ----------
        matrix:
            ``(k, d)`` projection matrix (a JL map, a rotation basis), or
            ``None`` for the identity view.
        offset:
            Optional ``(k,)`` translation.

        Returns
        -------
        ProjectedView
            A handle answering grid-hash queries (heaviest-cell counts, box
            histograms, membership masks, per-axis interval labels) over the
            image.  Strategies with worker processes override this to apply
            the projection shard-side; results are bit-identical either way.
        """
        return ProjectedView(self, matrix=matrix, offset=offset)

    # ------------------------------------------------------------------ #
    # Query-plan execution
    # ------------------------------------------------------------------ #
    def _evaluate_plan_query(self, plan: QueryPlan, query: PlanQuery,
                             rows_cache: dict):
        """Evaluate one plan query in-process (the serial reference).

        Selection membership is derived once per selection slot and reused
        by every query sharing it (``rows_cache``); feeding the precomputed
        ascending row array back through the masked queries' row-selection
        path is bitwise identical to handing each query the original
        selection, so the memoisation is pure performance.
        """
        if query.op == "count_within_many":
            centers, radii = query.args
            return self.count_within_many(centers, radii)
        if query.op == "depth_counts":
            (thresholds,) = query.args
            return self.depth_counts(thresholds)
        if query.op == "capped_average_scores":
            radii, target, streaming = query.args
            return self.capped_average_scores(radii, target,
                                              streaming=streaming)
        if query.op not in VIEW_PLAN_OPS:
            raise ValueError(f"unknown plan operation {query.op!r}")
        view = plan.views[query.view_slot]
        if view.backend is not self:
            raise ValueError(
                "the plan queries a view of a different backend; build the "
                "plan against the backend that executes it"
            )
        if query.selection_slot is None:
            return getattr(view, query.op)(*query.args)
        rows = rows_cache.get(query.selection_slot)
        if rows is None:
            rows = view._selection_rows(plan.selections[query.selection_slot])
            rows_cache[query.selection_slot] = rows
        return getattr(view, query.op)(rows, *query.args)

    def execute(self, plan: QueryPlan) -> List[Any]:
        """Run a :class:`QueryPlan`; one result per query, in plan order.

        This base implementation evaluates the bundle as a plain in-process
        loop over the existing primitives — which is the definition the
        fused strategies must match, so cross-backend parity of plan results
        is by construction.  Selection membership is derived once per
        distinct selection and shared by every query referencing it.

        Parameters
        ----------
        plan:
            The bundle to run.  Views referenced by the plan must belong to
            this backend.

        Returns
        -------
        list
            Per-query results, indexed by the slots the plan's append
            methods returned; each entry has exactly the type and value the
            corresponding direct method call would produce.
        """
        rows_cache: dict = {}
        return [self._evaluate_plan_query(plan, query, rows_cache)
                for query in plan.queries]

    def submit(self, plan: QueryPlan) -> PlanFuture:
        """Submit a :class:`QueryPlan` asynchronously; returns a
        :class:`PlanFuture`.

        Streaming workloads use this to overlap consecutive rounds: submit
        the next round's plan, then merge the current one while the workers
        chew on the new bundle.  Results — collected with
        :meth:`PlanFuture.result` — are bitwise identical to
        :meth:`execute`, regardless of how many plans are in flight or how
        worker scheduling interleaves them (the sharded merge always folds
        shards in shard order).  Serial backends evaluate eagerly at
        submission and hand back a completed future.
        """
        return PlanFuture(self.execute(plan))

    # ------------------------------------------------------------------ #
    # Primitives each strategy implements
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        """``B_r(c, S)`` for every query centre ``c`` (``int64``, shape
        ``(len(centers),)``); negative radii give all-zero counts."""

    @abc.abstractmethod
    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        """Each point's ``k`` smallest squared distances to the dataset
        (including the self-distance 0), row-sorted ascending; ``(n, k)``."""

    # ------------------------------------------------------------------ #
    # Derived queries (shared across strategies)
    # ------------------------------------------------------------------ #
    def radius_counts(self, radius: float) -> np.ndarray:
        """``B_r(x_i, S)`` for every dataset point ``x_i``.

        Parameters
        ----------
        radius:
            The ball radius ``r``; negative radii give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` ``int64`` counts (each at least 1 for ``r >= 0``, since a
            point always contains itself).
        """
        return self.query_radius_counts(self._points, radius)

    def count_within_many(self, centers, radii) -> np.ndarray:
        """``B_r(c, S)`` for every centre ``c`` at every radius in ``radii``.

        The batched form of :meth:`query_radius_counts`: one call answers a
        whole ``(centers, radii)`` grid, which lets backends fuse the work —
        the chunked strategy computes each distance slab once for all radii,
        and the sharded strategy submits a single request per shard instead of
        one per radius.  This base implementation simply loops over the radii.

        Parameters
        ----------
        centers:
            ``(q, d)`` query centres.
        radii:
            ``(m,)`` radii; negative entries give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(m, q)`` ``int64`` counts; row ``j`` holds the counts at
            ``radii[j]``.
        """
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        return np.stack([
            self.query_radius_counts(centers, float(radius)) for radius in radii
        ]) if radii.size else np.empty((0, centers.shape[0]), dtype=np.int64)

    def depth_counts(self, thresholds) -> np.ndarray:
        """One-sided rank counts of the first coordinate at each threshold.

        For every threshold ``a`` returns ``[#{x : x_0 <= a},
        #{x : x_0 >= a}]`` over the indexed points' first coordinate — the
        two counts whose minimum is the *depth* quality
        ``q(S, a) = min(#{x <= a}, #{x >= a})`` of the interior point
        reduction (paper Algorithm 3, step 4; the backend's points are the
        1-d database reshaped to ``(n, 1)`` there).  Counts are exact
        integer comparisons, so every backend — and every shard topology,
        by integer-sum merges — returns bitwise identical values.

        Parameters
        ----------
        thresholds:
            Scalar or ``(m,)`` array of query thresholds.

        Returns
        -------
        numpy.ndarray
            ``(m, 2)`` ``int64`` count pairs (column 0: ``<=``, column 1:
            ``>=``).
        """
        thresholds = np.atleast_1d(np.asarray(thresholds, dtype=float))
        return depth_count_pairs(self._points[:, 0], thresholds)

    def truncated_squared(self, k: int) -> np.ndarray:
        """Row-sorted ``(n, k)`` matrix of each point's ``k`` smallest
        squared distances; cached (a larger cached answer serves smaller
        ``k``)."""
        k = check_integer(k, "k", minimum=1)
        k = min(k, self.num_points)
        if self._truncated_cache is None or self._truncated_cache[0] < k:
            self._truncated_cache = (k, self._compute_truncated_squared(k))
            self._flat_cache = None
        return self._truncated_cache[1][:, :k]

    def kth_distances(self, k: int) -> np.ndarray:
        """Each point's distance to its ``k``-th nearest dataset point
        (``k = 1`` is the self-distance 0).  This is the radius a ball centred
        at the point needs to capture ``k`` points — the quantity behind the
        non-private factor-2 approximation."""
        k = check_integer(k, "k", minimum=1)
        if k > self.num_points:
            raise ValueError(
                f"k ({k}) cannot exceed the number of points ({self.num_points})"
            )
        return np.sqrt(self.truncated_squared(k)[:, k - 1])

    def capped_radius_counts(self, radius: float, cap: int) -> np.ndarray:
        """``Bbar_r(x_i, S) = min(B_r(x_i, S), cap)`` for every dataset point
        (the capped counts of paper Section 3.1; capping is what drops the
        score's sensitivity from ``Omega(t)`` to 2, Lemma 4.5).

        Parameters
        ----------
        radius:
            The ball radius; negative radii give all-zero counts.
        cap:
            The cap (the paper always uses the target ``t``); ``cap=0`` gives
            all zeros.

        Returns
        -------
        numpy.ndarray
            ``(n,)`` ``int64`` capped counts.
        """
        cap = check_integer(cap, "cap", minimum=0)
        if cap == 0 or radius < 0:
            return np.zeros(self.num_points, dtype=np.int64)
        truncated = self.truncated_squared(min(cap, self.num_points))
        counts = np.count_nonzero(truncated <= radius * radius, axis=1)
        return np.minimum(counts.astype(np.int64), cap)

    def capped_average_scores(self, radii, target: int,
                              streaming: Optional[bool] = None) -> np.ndarray:
        """The GoodRadius score ``L(r, S)`` at every radius in ``radii``.

        ``L(r, S)`` is the mean of the ``target`` largest capped counts
        ``min(B_r(x_i, S), target)`` (paper Algorithm 1, step 1; the
        sensitivity-2 score of Lemma 4.5).

        Two exact evaluation strategies are available:

        * **Persisted** (the default for small targets): cache each point's
          ``min(target, n)`` smallest squared distances and merge-walk the
          globally sorted statistic against the sorted radii.  ``O(n * t)``
          memory — a large win when ``target << n``.
        * **Streaming** (the default for large targets): never persist the
          statistic; process the radii in chunks and recompute blocked
          distance passes per chunk, histogramming capped counts on the fly.
          ``O(n * block + chunk * target)`` memory at *every* target, which is
          what keeps outlier screening (``t ~ 0.9 n``) off the ``O(n^2)``
          memory cliff.

        Both paths produce bit-identical scores (they count the same integer
        quantities in the same squared space).

        Parameters
        ----------
        radii:
            Scalar or ``(m,)`` array of radii; negative radii give score 0.
        target:
            The target cluster size ``t`` (also the count cap);
            ``1 <= target <= n``.
        streaming:
            ``None`` (default) picks automatically — streaming when
            ``target > STREAMING_TARGET_FRACTION * n`` and
            ``n >= STREAMING_MIN_POINTS`` (and the strategy has not opted
            out); ``True``/``False`` force a path.

        Returns
        -------
        numpy.ndarray
            ``(m,)`` float scores, in the order of the supplied radii.
        """
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        n = self.num_points
        target = check_integer(target, "target", minimum=1)
        if target > n:
            raise ValueError(f"target must lie in [1, n={n}], got {target}")
        if streaming is None:
            streaming = (self.streaming_auto
                         and n >= STREAMING_MIN_POINTS
                         and target > STREAMING_TARGET_FRACTION * n)
        if streaming:
            return self._streaming_profile(radii, target)
        sorted_values, rows, k = self._sorted_flat(min(target, n))
        return _capped_profile(sorted_values, rows, n, k, radii, target)

    def capped_average_score(self, radius: float, target: int) -> float:
        """``L(radius, S)`` for a single radius (see
        :meth:`capped_average_scores`)."""
        return float(self.capped_average_scores(
            np.asarray([radius], dtype=float), target)[0])

    # ------------------------------------------------------------------ #
    # Streaming large-target profile (radii-chunked, nothing persisted)
    # ------------------------------------------------------------------ #
    def _streaming_profile(self, radii: np.ndarray, target: int) -> np.ndarray:
        """Radii-chunked streaming evaluation of ``L(r, S)``.

        The radii are processed in *sweeps*: one sweep is a single blocked
        pass over the pairwise distances — each ``(block, n)`` slab is
        computed and **sorted once**, then binary-searched for every radius
        of the sweep — delegated to :meth:`_capped_count_histograms` so
        multi-process strategies can parallelise the pass.  The sweep is
        sized so its ``(sweep, cap + 1)`` histograms fill (at most) one
        memory budget; in the common regime the whole radius grid fits one
        sweep, so every block is sorted exactly once for the entire profile.
        (The pre-PR-5 walk chunked at half a budget and re-ran the distance
        pass — recomputing *and re-sorting* every slab — per chunk.)
        """
        cap = min(target, self.num_points)
        keys = _squared_radii(radii)
        sweep = int(max(8, min(
            max(keys.shape[0], 1),
            DEFAULT_MEMORY_BUDGET // (8 * (cap + 1)),
        )))
        scores = np.empty(keys.shape[0], dtype=float)
        for start in range(0, keys.shape[0], sweep):
            histograms = self._capped_count_histograms(
                keys[start:start + sweep], cap
            )
            scores[start:start + sweep] = _scores_from_histograms(
                histograms, cap, target
            )
        return scores

    def _capped_count_histograms(self, keys: np.ndarray,
                                 cap: int) -> np.ndarray:
        """``(len(keys), cap + 1)`` histograms of capped counts over all
        dataset points (one blocked brute-force pass; strategies with worker
        processes override this to split the pass across query rows)."""
        block = row_block_size(self.num_points, self.dimension)
        return capped_count_histograms(self._points, self._points, keys, cap,
                                       block)

    def _sorted_flat(self, k: int):
        """Globally sorted truncated squared distances + row ids, cached."""
        truncated = self.truncated_squared(k)
        k = truncated.shape[1]
        if self._flat_cache is None or self._flat_cache[0] != k:
            flat = truncated.ravel()
            flat_order = np.argsort(flat, kind="stable")
            rows = flat_order // k
            if flat.size < 2 ** 31:
                rows = rows.astype(np.int32)
            self._flat_cache = (k, flat[flat_order], rows)
        return self._flat_cache[1], self._flat_cache[2], k


__all__ = [
    "BACKEND_PLAN_OPS",
    "BackendUnavailableError",
    "BoxSelection",
    "ClippedSum",
    "MASKED_PLAN_OPS",
    "NeighborBackend",
    "PlanFuture",
    "PlanQuery",
    "ProjectedView",
    "QueryPlan",
    "STREAMING_MIN_POINTS",
    "STREAMING_TARGET_FRACTION",
    "VIEW_PLAN_OPS",
    "depth_count_pairs",
    "first_occurrence_cells",
]
