"""The :class:`NeighborBackend` protocol.

A backend is bound to one ``(n, d)`` dataset and answers the three distance
queries the rest of the library needs:

* :meth:`~NeighborBackend.radius_counts` — ``B_r(x_i, S)`` for every dataset
  point (the per-point ball counts of paper Section 3.1);
* :meth:`~NeighborBackend.query_radius_counts` — the same counts around
  arbitrary query centres (used by the exponential-mechanism baseline);
* :meth:`~NeighborBackend.kth_distances` — each point's distance to its
  ``k``-th nearest dataset point (the statistic behind the non-private
  factor-2 approximation).

Everything else — capped counts, the sensitivity-2 score ``L(r, S)`` and its
whole-grid profile — is derived here in the base class from one primitive the
concrete backends implement: each point's ``k`` smallest *squared* distances
(``min(B_r(x), k)`` only depends on the ``k`` nearest neighbours of ``x``, so
this is a sufficient statistic for every capped count).  All comparisons
happen in squared space — ``within radius r`` means ``d2 <= r*r`` — matching
scipy's KD-tree convention so every backend returns identical integer counts;
see :mod:`repro.neighbors._distance`.

The derived profile evaluation never materialises an ``(n, m)`` count matrix:
it merge-walks the globally sorted truncated squared distances against the
sorted radii and maintains a histogram of capped counts, costing
``O(n k log(nk) + m (n + k))`` time and ``O(n k)`` memory for ``m`` radii.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.utils.validation import check_integer, check_points


def _squared_radii(radii: np.ndarray) -> np.ndarray:
    """Map radii to squared-space search keys; negative radii match nothing."""
    return np.where(radii < 0, -1.0, radii * radii)


def _capped_profile(sorted_values: np.ndarray, rows: np.ndarray, n: int,
                    k: int, radii: np.ndarray, target: int) -> np.ndarray:
    """``L(r, S)`` at every radius, from globally sorted truncated distances.

    The truncated matrix holds each point's ``k = min(target, n)`` smallest
    squared distances (including the self-distance 0), so the number of a
    row's entries ``<= r*r`` *is* the capped count ``min(B_r(x), target)``.
    Radii are processed in sorted order; the global sort of all ``n * k``
    truncated values (``sorted_values``, with ``rows`` recording which point
    each entry belongs to) lets the per-point counts be updated incrementally
    with one ``bincount`` per radius segment, and the top-``target`` mean is
    read off a histogram of the capped counts (counting sort) instead of
    partitioning an ``(n, m)`` matrix.
    """
    keys = _squared_radii(radii)
    order = np.argsort(keys, kind="stable")
    positions = np.searchsorted(sorted_values, keys[order], side="right")

    counts = np.zeros(n, dtype=np.int64)
    scores = np.empty(radii.shape[0], dtype=float)
    descending_values = np.arange(k, -1, -1, dtype=np.int64)
    consumed = 0
    for slot, position in enumerate(positions):
        if position > consumed:
            counts += np.bincount(rows[consumed:position], minlength=n)
            consumed = position
        histogram = np.bincount(counts, minlength=k + 1)
        taken = np.minimum(np.cumsum(histogram[::-1]), target)
        per_value = np.diff(taken, prepend=0)
        scores[slot] = float(per_value @ descending_values) / target

    result = np.empty_like(scores)
    result[order] = scores
    return result


class NeighborBackend(abc.ABC):
    """Distance-query oracle over a fixed ``(n, d)`` dataset."""

    #: Registry name of the strategy ("dense", "chunked", "tree").
    name: ClassVar[str] = "abstract"

    def __init__(self, points) -> None:
        self._points = check_points(points)
        self._truncated_cache: Optional[Tuple[int, np.ndarray]] = None
        self._flat_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Dataset
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> np.ndarray:
        """The ``(n, d)`` dataset the backend indexes."""
        return self._points

    @property
    def num_points(self) -> int:
        """The dataset size ``n``."""
        return int(self._points.shape[0])

    @property
    def dimension(self) -> int:
        """The ambient dimension ``d``."""
        return int(self._points.shape[1])

    # ------------------------------------------------------------------ #
    # Primitives each strategy implements
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        """``B_r(c, S)`` for every query centre ``c`` (``int64``, shape
        ``(len(centers),)``); negative radii give all-zero counts."""

    @abc.abstractmethod
    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        """Each point's ``k`` smallest squared distances to the dataset
        (including the self-distance 0), row-sorted ascending; ``(n, k)``."""

    # ------------------------------------------------------------------ #
    # Derived queries (shared across strategies)
    # ------------------------------------------------------------------ #
    def radius_counts(self, radius: float) -> np.ndarray:
        """``B_r(x_i, S)`` for every dataset point ``x_i``."""
        return self.query_radius_counts(self._points, radius)

    def truncated_squared(self, k: int) -> np.ndarray:
        """Row-sorted ``(n, k)`` matrix of each point's ``k`` smallest
        squared distances; cached (a larger cached answer serves smaller
        ``k``)."""
        k = check_integer(k, "k", minimum=1)
        k = min(k, self.num_points)
        if self._truncated_cache is None or self._truncated_cache[0] < k:
            self._truncated_cache = (k, self._compute_truncated_squared(k))
            self._flat_cache = None
        return self._truncated_cache[1][:, :k]

    def kth_distances(self, k: int) -> np.ndarray:
        """Each point's distance to its ``k``-th nearest dataset point
        (``k = 1`` is the self-distance 0).  This is the radius a ball centred
        at the point needs to capture ``k`` points — the quantity behind the
        non-private factor-2 approximation."""
        k = check_integer(k, "k", minimum=1)
        if k > self.num_points:
            raise ValueError(
                f"k ({k}) cannot exceed the number of points ({self.num_points})"
            )
        return np.sqrt(self.truncated_squared(k)[:, k - 1])

    def capped_radius_counts(self, radius: float, cap: int) -> np.ndarray:
        """``min(B_r(x_i, S), cap)`` for every dataset point."""
        cap = check_integer(cap, "cap", minimum=0)
        if cap == 0 or radius < 0:
            return np.zeros(self.num_points, dtype=np.int64)
        truncated = self.truncated_squared(min(cap, self.num_points))
        counts = np.count_nonzero(truncated <= radius * radius, axis=1)
        return np.minimum(counts.astype(np.int64), cap)

    def capped_average_scores(self, radii, target: int) -> np.ndarray:
        """The GoodRadius score ``L(r, S)`` at every radius in ``radii``.

        ``L(r, S)`` is the mean of the ``target`` largest capped counts
        ``min(B_r(x_i, S), target)`` (paper Algorithm 1, step 1).

        Memory is ``O(n * min(target, n))`` for the truncated statistic and
        its sorted-flat cache — a large win over ``O(n^2)`` when
        ``target << n``, but approaching (and, with the caches, exceeding)
        the dense matrix when ``target`` is a large fraction of ``n`` (e.g.
        outlier screening with ``t = 0.9 n`` at ``n >> 10^4``); a streaming
        large-target path is an open roadmap item.
        """
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        n = self.num_points
        target = check_integer(target, "target", minimum=1)
        if target > n:
            raise ValueError(f"target must lie in [1, n={n}], got {target}")
        sorted_values, rows, k = self._sorted_flat(min(target, n))
        return _capped_profile(sorted_values, rows, n, k, radii, target)

    def capped_average_score(self, radius: float, target: int) -> float:
        """``L(radius, S)`` for a single radius."""
        return float(self.capped_average_scores(
            np.asarray([radius], dtype=float), target)[0])

    def _sorted_flat(self, k: int):
        """Globally sorted truncated squared distances + row ids, cached."""
        truncated = self.truncated_squared(k)
        k = truncated.shape[1]
        if self._flat_cache is None or self._flat_cache[0] != k:
            flat = truncated.ravel()
            flat_order = np.argsort(flat, kind="stable")
            rows = flat_order // k
            if flat.size < 2 ** 31:
                rows = rows.astype(np.int32)
            self._flat_cache = (k, flat[flat_order], rows)
        return self._flat_cache[1], self._flat_cache[2], k


__all__ = ["NeighborBackend"]
