"""Tree backend: KD-tree accelerated radius counting.

Uses :class:`scipy.spatial.cKDTree` when scipy is installed — batched
``query_ball_point(..., return_length=True)`` for radius counts and
``query(k=...)`` for the truncated nearest-neighbour distances — and falls
back to the pure-python KD-tree of :mod:`repro.neighbors._kdtree` for radius
counts (with blocked brute force for the truncated distances) when it is not.
In low dimension this turns the ``O(n^2)`` per-radius count into
``O(n log n)``-ish work and the ``L(r, S)`` sufficient statistic into an
``O(n k)`` k-nearest-neighbour query, which is what makes ``good_radius`` at
``n = 20k`` run in seconds instead of minutes.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors._distance import (
    DEFAULT_MEMORY_BUDGET,
    row_block_size,
    squared_distance_gather,
    truncated_squared_bruteforce,
    truncated_squared_cross,
)
from repro.neighbors._kdtree import PyKDTree
from repro.neighbors.base import NeighborBackend
from repro.utils.validation import check_integer, check_points

try:  # pragma: no cover - exercised implicitly on scipy installs
    from scipy.spatial import cKDTree as _CKDTree
except ImportError:  # pragma: no cover - scipy-less environments
    _CKDTree = None

HAVE_SCIPY_TREE = _CKDTree is not None


class TreeBackend(NeighborBackend):
    """KD-tree (scipy ``cKDTree``, or pure-python fallback) radius counting."""

    name = "tree"

    def __init__(self, points, leaf_size: int = 32,
                 use_scipy: bool = None) -> None:
        super().__init__(points)
        leaf_size = check_integer(leaf_size, "leaf_size", minimum=1)
        if use_scipy is None:
            use_scipy = HAVE_SCIPY_TREE
        elif use_scipy and not HAVE_SCIPY_TREE:
            raise ValueError("use_scipy=True requires scipy to be installed")
        self._scipy = bool(use_scipy)
        if self._scipy:
            self._tree = _CKDTree(self._points, leafsize=leaf_size)
        else:
            self._tree = PyKDTree(self._points, leaf_size=leaf_size)

    @property
    def uses_scipy(self) -> bool:
        """Whether the scipy ``cKDTree`` (vs the pure-python tree) backs this
        instance."""
        return self._scipy

    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        """``B_r(c, S)`` per centre via a batched tree query.

        Parameters
        ----------
        centers:
            ``(q, d)`` query centres.
        radius:
            The ball radius; negative radii give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(q,)`` ``int64`` counts.
        """
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        if radius < 0:
            return np.zeros(centers.shape[0], dtype=np.int64)
        if self._scipy:
            counts = self._tree.query_ball_point(centers, radius,
                                                 return_length=True,
                                                 workers=-1)
            return np.asarray(counts, dtype=np.int64).reshape(-1)
        return self._tree.count_within(centers, radius)

    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        if self._scipy:
            return self.truncated_squared_cross(self._points, k)
        block = row_block_size(self.num_points, self.dimension)
        return truncated_squared_bruteforce(self._points, k, block)

    def truncated_squared_cross(self, queries, k: int) -> np.ndarray:
        """Each query row's ``min(k, n)`` smallest squared distances to this
        backend's points, row-sorted — the tree-accelerated twin of
        :func:`repro.neighbors._distance.truncated_squared_cross`.

        The sharded backend's per-shard truncated statistic is exactly this
        shape (queries = the full dataset, data = one shard), so a shard
        whose inner backend is a scipy tree answers it in ``O(m k log n)``
        instead of the ``O(m n)`` blocked brute force.  Bitwise parity with
        the brute-force kernel holds by the same recipe as the self-query
        case: the tree only *selects* the neighbour indices, and the squared
        values are recomputed from those indices through the shared gather
        kernel, whose rounding matches the blocked kernel to the last ulp.
        """
        queries = np.ascontiguousarray(np.asarray(queries, dtype=float))
        k = min(int(k), self.num_points)
        if not self._scipy:
            block = row_block_size(self.num_points, self.dimension)
            return truncated_squared_cross(queries, self._points, k, block)
        _, indices = self._tree.query(queries, k=k, workers=-1)
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim == 1:
            indices = indices.reshape(-1, 1)
        # The query's returned distances are sqrt-rounded; recompute the
        # squared values from the neighbour indices through the shared
        # gather kernel, whose rounding matches the blocked brute-force
        # kernel to the last ulp — so the statistic (and everything
        # derived from it, e.g. kth_distances) matches the other backends
        # bit-for-bit even on generic float data.
        m, d = queries.shape
        squared = np.empty((m, k), dtype=float)
        block = max(16, DEFAULT_MEMORY_BUDGET // max(1, 16 * k * d))
        for start in range(0, m, block):
            chunk = squared_distance_gather(
                queries[start:start + block],
                self._points[indices[start:start + block]],
            )
            chunk.sort(axis=1)
            squared[start:start + block] = chunk
        return squared


__all__ = ["HAVE_SCIPY_TREE", "TreeBackend"]
