"""Dense backend: the full row-sorted squared-distance matrix.

The strategy the seed implementation hard-coded everywhere: materialise all
``(n, n)`` pairwise (squared) distances once, sort each row, and answer every
query with binary searches.  Unbeatable for small ``n`` when many radii are
probed (GoodRadius probes thousands), but the ``8 n^2`` bytes make it
unusable beyond ``n ~ 30k`` — that is exactly what the chunked and tree
backends exist to fix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.neighbors._distance import (
    blocked_radius_counts,
    blocked_radius_counts_many,
    row_block_size,
    squared_distance_block,
    squared_radius_keys,
)
from repro.neighbors.base import NeighborBackend
from repro.utils.validation import check_points


class DenseBackend(NeighborBackend):
    """Precomputed ``(n, n)`` row-sorted squared-distance matrix."""

    name = "dense"

    # The matrix already holds every pairwise distance; the streaming
    # large-target walk would only recompute what is cached, so it is never
    # auto-selected for this strategy (explicit ``streaming=True`` still
    # works, and still matches bit-for-bit).
    streaming_auto = False

    def __init__(self, points) -> None:
        super().__init__(points)
        self._sorted_squared: Optional[np.ndarray] = None

    def _matrix(self) -> np.ndarray:
        """The row-sorted squared-distance matrix, built lazily on first use."""
        if self._sorted_squared is None:
            points = self._points
            n = points.shape[0]
            matrix = np.empty((n, n), dtype=float)
            block = row_block_size(n, points.shape[1])
            for start in range(0, n, block):
                matrix[start:start + block] = squared_distance_block(
                    points[start:start + block], points
                )
            matrix.sort(axis=1)
            self._sorted_squared = matrix
        return self._sorted_squared

    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        """``B_r(c, S)`` per centre; dataset-identical centres are served
        from the precomputed row-sorted matrix, arbitrary centres by a
        blocked pass.

        Parameters
        ----------
        centers:
            ``(q, d)`` query centres.
        radius:
            The ball radius; negative radii give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(q,)`` ``int64`` counts.
        """
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        if radius < 0:
            return np.zeros(centers.shape[0], dtype=np.int64)
        # Identity only: a same-shape overlapping *view* (e.g. points[::-1])
        # would return counts in dataset-row order, not query-row order.
        if centers is self._points:
            counts = np.count_nonzero(self._matrix() <= radius * radius, axis=1)
            return counts.astype(np.int64)
        block = row_block_size(self.num_points, self.dimension)
        return blocked_radius_counts(centers, self._points, radius, block)

    def count_within_many(self, centers, radii) -> np.ndarray:
        """Batched counts; dataset-identical centres are answered by binary
        searches over the precomputed row-sorted matrix (one search per
        ``(row, radius)``), arbitrary centres by a single blocked pass shared
        across all radii.  See :meth:`NeighborBackend.count_within_many`."""
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        if radii.size == 0:
            return np.empty((0, centers.shape[0]), dtype=np.int64)
        if centers is not self._points:
            block = row_block_size(self.num_points, self.dimension)
            return blocked_radius_counts_many(centers, self._points, radii,
                                              block)
        keys = squared_radius_keys(radii)
        matrix = self._matrix()
        counts = np.empty((radii.shape[0], matrix.shape[0]), dtype=np.int64)
        for row_index in range(matrix.shape[0]):
            counts[:, row_index] = np.searchsorted(matrix[row_index], keys,
                                                   side="right")
        return counts

    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        return self._matrix()[:, :k].copy()


__all__ = ["DenseBackend"]
