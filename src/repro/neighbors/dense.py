"""Dense backend: the full row-sorted squared-distance matrix.

The strategy the seed implementation hard-coded everywhere: materialise all
``(n, n)`` pairwise (squared) distances once, sort each row, and answer every
query with binary searches.  Unbeatable for small ``n`` when many radii are
probed (GoodRadius probes thousands), but the ``8 n^2`` bytes make it
unusable beyond ``n ~ 30k`` — that is exactly what the chunked and tree
backends exist to fix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.neighbors._distance import (
    blocked_radius_counts,
    row_block_size,
    squared_distance_block,
)
from repro.neighbors.base import NeighborBackend
from repro.utils.validation import check_points


class DenseBackend(NeighborBackend):
    """Precomputed ``(n, n)`` row-sorted squared-distance matrix."""

    name = "dense"

    def __init__(self, points) -> None:
        super().__init__(points)
        self._sorted_squared: Optional[np.ndarray] = None

    def _matrix(self) -> np.ndarray:
        """The row-sorted squared-distance matrix, built lazily on first use."""
        if self._sorted_squared is None:
            points = self._points
            n = points.shape[0]
            matrix = np.empty((n, n), dtype=float)
            block = row_block_size(n, points.shape[1])
            for start in range(0, n, block):
                matrix[start:start + block] = squared_distance_block(
                    points[start:start + block], points
                )
            matrix.sort(axis=1)
            self._sorted_squared = matrix
        return self._sorted_squared

    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        if radius < 0:
            return np.zeros(centers.shape[0], dtype=np.int64)
        # Identity only: a same-shape overlapping *view* (e.g. points[::-1])
        # would return counts in dataset-row order, not query-row order.
        if centers is self._points:
            counts = np.count_nonzero(self._matrix() <= radius * radius, axis=1)
            return counts.astype(np.int64)
        block = row_block_size(self.num_points, self.dimension)
        return blocked_radius_counts(centers, self._points, radius, block)

    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        return self._matrix()[:, :k].copy()


__all__ = ["DenseBackend"]
