"""Sharded backend: the dataset split across worker processes.

Radius-count queries are embarrassingly parallel in the *data*: for any centre
``c``, ``B_r(c, S) = sum over shards of B_r(c, S_shard)``, and each point's
``k`` smallest distances to ``S`` are the ``k`` smallest of the union of its
per-shard ``k`` smallest.  :class:`ShardedBackend` exploits this by splitting
the point set into contiguous shards, answering each shard's sub-query with an
ordinary single-process backend (dense / chunked / tree, chosen per shard by
``auto_backend`` unless pinned), and merging:

* **counts** — summed across shards (exact, integer addition);
* **truncated squared distances** — per-shard row-sorted statistics are
  merged (concatenate, select the global ``k`` smallest, sort), which is
  exact because every global ``k``-nearest value is a ``k``-nearest value of
  its own shard;
* **streaming histograms** — the large-target ``L(r, S)`` walk shards the
  *query rows* instead, and the per-range capped-count histograms add up.

Worker topology: the parent copies the ``(n, d)`` dataset into one
``multiprocessing.shared_memory`` block at pool start-up; workers attach in
their initialiser and build per-shard inner backends lazily (cached per
process), so a query ships only its small payload (a radius, a handful of
shifts, a centre block) — never the dataset.  Tasks are routed with
shard→worker *affinity* (shard ``s`` always lands on worker slot ``s mod
W``), so each shard's lazily built index, cached view images, and memoised
selection membership live in exactly one worker.  Multi-query bundles
(:class:`~repro.neighbors.base.QueryPlan`) ship as a *single* task per shard
— one round trip per shard for a whole plan — and can be submitted
asynchronously (``submit``), with the merge always folding shards in shard
order so overlapping plans cannot perturb a single bit.  On a single-CPU
machine, when ``num_workers=0``, or when the pool cannot start (sandboxes
without ``/dev/shm``), the same shard/merge code runs serially in-process —
results are bit-identical either way, the pool is purely a wall-clock
lever.

Everything merged here is integer counts or exact squared distances, so the
sharded backend keeps the library-wide guarantee: identical counts and
``L(r, S)`` scores for every backend, regardless of shard count or worker
count.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, shared_memory
from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from repro.neighbors._distance import (
    DEFAULT_MEMORY_BUDGET,
    capped_count_histograms,
    row_block_size,
    truncated_squared_cross,
)
from repro.neighbors.base import (
    BoxSelection,
    ClippedSum,
    NeighborBackend,
    PlanFuture,
    ProjectedView,
    QueryPlan,
    depth_count_pairs,
)
from repro import kernels as _kernels
from repro.utils.exactsum import (
    fixed_point_column_partials,
    fixed_point_to_float,
    merge_column_partials,
)
from repro.utils.validation import check_integer, check_points

#: Monotonic ids for projected views: workers cache each shard's projected
#: image keyed by the view's token, so a view's matrix is applied to a shard
#: at most once per worker process no matter how many queries it answers.
_VIEW_TOKENS = itertools.count(1)

#: Test seam: ``(method, shard, seconds)`` sleeps that long before running the
#: matching shard sub-query.  Consulted by :meth:`_ShardSet.run` in whichever
#: process executes the task (fork-inherited by pool workers started after it
#: is set), so tests can make exactly one shard artificially slow and pin the
#: work-stealing scheduler's behaviour without touching query code.
_TASK_DELAY: Optional[Tuple[str, int, float]] = None

#: Every shard sub-query a task may name: the remote node server dispatches
#: coordinator-supplied method names, so it validates them against this
#: allowlist (a registry, not ``getattr`` over an open class surface).
SHARD_TASK_METHODS = frozenset({
    "counts",
    "counts_many",
    "depth_counts",
    "truncated",
    "histograms",
    "execute_plan",
    "view_heaviest_cells",
    "view_count_labels",
    "view_cell_histogram",
    "view_label_array",
    "view_label_mask",
    "view_axis_labels",
    "view_masked_count",
    "view_masked_sum",
    "view_masked_minmax",
    "view_masked_clipped",
    "view_masked_axis_hists",
})


def _available_cpus() -> int:
    """The number of CPUs the process may actually use (1 if undeterminable).

    Prefers the scheduler affinity mask over ``os.cpu_count()``: in
    containers with a CPU quota / pinned affinity the raw core count of the
    host would oversubscribe the pool (and make ``auto_backend`` pick
    sharding where it cannot pay off).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _ShardSet:
    """The per-process shard executor: points + lazily built inner backends.

    One instance lives in the parent (serial fallback) and one in every worker
    process (built over the shared-memory view in the pool initialiser).  All
    shard-local query logic is here so the serial and multi-process paths run
    literally the same code.
    """

    #: How many projected images a worker keeps per shard it serves (see
    #: the ``_view_images`` attribute note in ``__init__``).
    VIEW_IMAGE_CACHE_PER_SHARD: ClassVar[int] = 2

    def __init__(self, points: np.ndarray, bounds: Sequence[Tuple[int, int]],
                 inner_backend: str) -> None:
        self.points = points
        self.bounds = list(bounds)
        self.inner_backend = inner_backend
        self._backends = {}
        #: Per-shard cached projected images: ``shard -> {view token: image}``
        #: with the oldest entry evicted beyond
        #: :data:`VIEW_IMAGE_CACHE_PER_SHARD`, so a long-lived worker holds a
        #: bounded number of ``(shard n, k)`` images per shard it serves.
        #: Two entries cover GoodCenter's working set (the partition-search
        #: view the selection predicate is re-derived against plus the
        #: rotated-frame view) — the old single-entry cache thrashed between
        #: them on every masked query.
        self._view_images = {}
        #: Per-shard memoised selection membership: ``shard -> (selection
        #: token, ascending shard-local rows)``.  One entry per shard (the
        #: latest selection wins): the masked queries of one ``good_center``
        #: call — and of one query plan — all reference a single selection,
        #: so each worker derives its shard's membership exactly once.
        self._selection_rows = {}

    def backend(self, shard: int) -> NeighborBackend:
        """The inner backend indexing shard ``shard`` (built on first use).

        Caches are per process.  Since shard→worker routing affinity (tasks
        for shard ``s`` always land on worker ``s mod W``), each shard's
        index is built in exactly one worker under pool mode, so this lazy
        build runs once per shard pool-wide — the old any-idle-worker routing
        could duplicate it once per (shard, worker) pair under mixed
        plan/point-query load.
        """
        if shard not in self._backends:
            from repro.neighbors import (
                BACKENDS,
                HAVE_SCIPY_TREE,
                TREE_MAX_DIMENSION,
                auto_backend,
            )

            low, high = self.bounds[shard]
            shard_points = self.points[low:high]
            name = self.inner_backend
            if name == "auto":
                name = auto_backend(high - low, shard_points.shape[1])
            if name in (ShardedBackend.name, "distributed"):
                # Never recurse into sharding (or back out over the wire);
                # fall through to the remaining single-process heuristics
                # for a shard this large.
                d = shard_points.shape[1]
                name = ("tree" if d <= TREE_MAX_DIMENSION and HAVE_SCIPY_TREE
                        else "chunked")
            self._backends[shard] = BACKENDS[name](shard_points)
        return self._backends[shard]

    def run(self, method: str, shard: int, args: tuple):
        """Dispatch one shard sub-query (the single entry point shared by
        the serial path, the pool workers, and the remote node servers —
        which is where the :data:`SHARD_TASK_METHODS` allowlist and the
        :data:`_TASK_DELAY` test seam apply uniformly)."""
        if method not in SHARD_TASK_METHODS:
            raise ValueError(f"unknown shard task method {method!r}")
        delay = _TASK_DELAY
        if (delay is not None and delay[0] == method
                and int(delay[1]) == int(shard)):
            time.sleep(float(delay[2]))
        return getattr(self, method)(shard, *args)

    def _centers(self, centers: Optional[np.ndarray]) -> np.ndarray:
        """``None`` is the wire encoding for "the full dataset" (which workers
        already hold in shared memory, so it is never pickled)."""
        return self.points if centers is None else centers

    def counts(self, shard: int, centers: Optional[np.ndarray],
               radius: float) -> np.ndarray:
        """This shard's contribution to ``B_r(c, S)`` for every centre."""
        return self.backend(shard).query_radius_counts(
            self._centers(centers), radius
        )

    def counts_many(self, shard: int, centers: Optional[np.ndarray],
                    radii: np.ndarray) -> np.ndarray:
        """This shard's contribution to the batched ``(m, q)`` count grid."""
        return self.backend(shard).count_within_many(
            self._centers(centers), radii
        )

    def depth_counts(self, shard: int, thresholds: np.ndarray) -> np.ndarray:
        """This shard's ``(m, 2)`` one-sided rank-count partial (the shared
        :func:`~repro.neighbors.base.depth_count_pairs` over the shard's
        first coordinate; integer partials sum to the global counts)."""
        low, high = self.bounds[shard]
        return depth_count_pairs(self.points[low:high, 0], thresholds)

    def truncated(self, shard: int, k: int) -> np.ndarray:
        """Every dataset point's ``min(k, shard size)`` smallest squared
        distances to this shard's points, row-sorted.

        When the shard's inner backend is (or would be) a scipy KD-tree,
        the cross-query runs through it —
        :meth:`~repro.neighbors.tree.TreeBackend.truncated_squared_cross`
        selects neighbour indices in ``O(n k log shard)`` and recomputes the
        squared values through the shared gather kernel, so the statistic is
        bitwise the blocked brute force's (the property the truncated-parity
        suite pins) at a fraction of the distance evaluations.
        """
        low, high = self.bounds[shard]
        shard_points = self.points[low:high]
        if self._truncated_via_tree(shard):
            from repro.neighbors.tree import TreeBackend

            backend = self.backend(shard)
            if isinstance(backend, TreeBackend) and backend.uses_scipy:
                return backend.truncated_squared_cross(
                    self.points, min(int(k), high - low)
                )
        block = row_block_size(high - low, self.points.shape[1])
        return truncated_squared_cross(self.points, shard_points, k, block)

    def _truncated_via_tree(self, shard: int) -> bool:
        """Whether this shard's truncated statistic should go through a
        scipy tree: yes when the shard's inner backend is already a scipy
        tree, or when the (unbuilt) inner choice would be ``"tree"`` — the
        one case building the index just for this query pays, because the
        built backend is the same one later point queries reuse."""
        from repro.neighbors import HAVE_SCIPY_TREE, auto_backend
        from repro.neighbors.tree import TreeBackend

        if not HAVE_SCIPY_TREE:
            return False
        backend = self._backends.get(shard)
        if backend is not None:
            return isinstance(backend, TreeBackend) and backend.uses_scipy
        low, high = self.bounds[shard]
        name = self.inner_backend
        if name == "auto":
            name = auto_backend(high - low, self.points.shape[1])
        return name == "tree"

    def histograms(self, shard: int, keys: np.ndarray,
                   cap: int) -> np.ndarray:
        """Capped-count histograms over this shard's *query rows*, counted
        against the full dataset (the streaming ``L(r, S)`` partial)."""
        low, high = self.bounds[shard]
        block = row_block_size(self.points.shape[0], self.points.shape[1])
        return capped_count_histograms(self.points[low:high], self.points,
                                       keys, cap, block)

    # ------------------------------------------------------------------ #
    # Projected-view sub-queries (GoodCenter's grid hashing)
    # ------------------------------------------------------------------ #
    def view_image(self, shard: int, token: Optional[int],
                   matrix: Optional[np.ndarray],
                   offset: Optional[np.ndarray],
                   rows: Optional[np.ndarray] = None) -> np.ndarray:
        """This shard's rows under a view's linear image.

        ``rows`` (shard-local indices) restricts the image to a subset and is
        never cached; the full-shard image of a non-identity view is cached
        per ``token`` so the matrix shipped with each task is applied at most
        once per worker.  Projection goes through the row-decomposable
        :func:`repro.geometry.jl.project_rows`, so the shard-side image is
        bitwise identical to slicing a parent-side projection.
        """
        low, high = self.bounds[shard]
        if matrix is None and offset is None:
            base = self.points[low:high]
            return base if rows is None else base[rows]
        from repro.geometry.jl import apply_linear_image

        if rows is not None:
            return apply_linear_image(self.points[low:high][rows], matrix,
                                      offset)
        if token is None:
            return apply_linear_image(self.points[low:high], matrix, offset)
        cached = self._view_images.setdefault(shard, {})
        if token not in cached:
            cached[token] = apply_linear_image(self.points[low:high], matrix,
                                               offset)
            while len(cached) > self.VIEW_IMAGE_CACHE_PER_SHARD:
                cached.pop(next(iter(cached)))
        return cached[token]

    def clear_view_images(self) -> None:
        """Drop every cached per-shard view image and memoised selection
        membership (see :meth:`ShardedBackend.close`)."""
        self._view_images.clear()
        self._selection_rows.clear()

    def cache_stats(self) -> dict:
        """Cache/index occupancy of this shard set (one worker's view of the
        world under pool mode; the parent's under the serial fallback).
        Feeds :meth:`ShardedBackend.pool_stats`."""
        return {
            "built_shards": sorted(self._backends),
            "cached_view_images": {
                shard: len(images)
                for shard, images in sorted(self._view_images.items())
            },
            "cached_selections": sorted(self._selection_rows),
            "pid": os.getpid(),
        }

    def view_heaviest_cells(self, shard: int, token: Optional[int],
                            matrix: Optional[np.ndarray],
                            offset: Optional[np.ndarray], width: float,
                            shifts: np.ndarray,
                            top_k: Optional[int] = None,
                            ) -> List[Tuple[np.ndarray, np.ndarray, int]]:
        """Per-attempt partial box histograms of this shard's imaged points.

        For each row of ``shifts`` (one shifted partition attempt) the
        shard's image is hashed through the same
        :func:`repro.geometry.boxes.box_labels` grid hash as
        ``ShiftedBoxPartition`` — the shared definition is what makes the
        labels bit-identical to a single-process pass — and the shard's
        ``top_k`` heaviest labels are returned with their counts plus a
        *cap*: the ``top_k``-th largest count, an upper bound on every cell
        the truncation dropped.  ``top_k=None`` (or a shard with at most
        ``top_k`` occupied cells) returns everything with cap 0 — the merge
        is then exact without a recount.
        """
        from repro.geometry.boxes import box_labels

        image = self.view_image(shard, token, matrix, offset)
        results = []
        for shift in np.atleast_2d(np.asarray(shifts, dtype=float)):
            labels = box_labels(image, shift, width)
            unique, counts = np.unique(labels, axis=0, return_counts=True)
            cap = 0
            if top_k is not None and counts.shape[0] > top_k:
                keep = np.argpartition(counts,
                                       counts.shape[0] - top_k)[-top_k:]
                cap = int(counts[keep].min())
                unique, counts = unique[keep], counts[keep]
            results.append((unique, counts, cap))
        return results

    def view_count_labels(self, shard: int, token: Optional[int],
                          matrix: Optional[np.ndarray],
                          offset: Optional[np.ndarray], width: float,
                          shifts: np.ndarray,
                          labels_per_attempt: Sequence[np.ndarray],
                          ) -> List[np.ndarray]:
        """Exact occupancy of specific boxes, one array per attempt.

        The recount half of the bounded heaviest-cell merge: for attempt
        ``j`` (partition ``(width, shifts[j])``) returns this shard's exact
        count of every queried label in ``labels_per_attempt[j]`` (0 for
        boxes the shard does not occupy).
        """
        from repro.geometry.boxes import box_labels

        image = self.view_image(shard, token, matrix, offset)
        results = []
        for shift, queries in zip(np.atleast_2d(np.asarray(shifts, float)),
                                  labels_per_attempt):
            labels = box_labels(image, shift, width)
            unique, counts = np.unique(labels, axis=0, return_counts=True)
            combined = np.concatenate([unique, queries], axis=0)
            _, inverse = np.unique(combined, axis=0, return_inverse=True)
            inverse = np.reshape(inverse, -1)
            table = np.zeros(int(inverse.max()) + 1, dtype=np.int64)
            table[inverse[:unique.shape[0]]] = counts
            results.append(table[inverse[unique.shape[0]:]])
        return results

    def view_cell_histogram(self, shard: int, token: Optional[int],
                            matrix: Optional[np.ndarray],
                            offset: Optional[np.ndarray], width: float,
                            shifts: np.ndarray, want_inverse: bool,
                            ) -> Tuple[np.ndarray, ...]:
        """One partition's occupied boxes over this shard: ``(labels, counts,
        first local row[, per-point local group ids])``.  The
        first-occurrence rows let the parent restore global first-occurrence
        cell order, which the stability histogram's noise draws depend on;
        the optional group ids let it assemble the per-point box index
        without a second hash pass."""
        from repro.geometry.boxes import box_labels

        image = self.view_image(shard, token, matrix, offset)
        labels = box_labels(image, np.asarray(shifts, dtype=float), width)
        if not want_inverse:
            unique, first, counts = np.unique(
                labels, axis=0, return_index=True, return_counts=True
            )
            return unique, counts, first
        unique, first, inverse, counts = np.unique(
            labels, axis=0, return_index=True, return_inverse=True,
            return_counts=True,
        )
        return unique, counts, first, np.reshape(inverse, -1)

    def view_label_array(self, shard: int, token: Optional[int],
                         matrix: Optional[np.ndarray],
                         offset: Optional[np.ndarray], width: float,
                         shifts: np.ndarray) -> np.ndarray:
        """The shard's imaged points' box-index vectors under one partition."""
        from repro.geometry.boxes import box_labels

        image = self.view_image(shard, token, matrix, offset)
        return box_labels(image, np.asarray(shifts, dtype=float), width)

    def view_label_mask(self, shard: int, token: Optional[int],
                        matrix: Optional[np.ndarray],
                        offset: Optional[np.ndarray], width: float,
                        shifts: np.ndarray, label: np.ndarray) -> np.ndarray:
        """Boolean membership of the shard's imaged points in box ``label``."""
        labels = self.view_label_array(shard, token, matrix, offset, width,
                                       shifts)
        return np.all(labels == np.asarray(label, dtype=np.int64)[None, :],
                      axis=1)

    def view_axis_labels(self, shard: int, token: Optional[int],
                         matrix: Optional[np.ndarray],
                         offset: Optional[np.ndarray], width: float,
                         axis_offset: float,
                         rows: Optional[np.ndarray]) -> np.ndarray:
        """Per-axis interval labels of (a shard-local row subset of) the
        shard's image — all axes in one pass.  Full-shard calls go through
        the token-keyed image cache like every other view query; row subsets
        project just their rows (never cached)."""
        from repro.geometry.boxes import interval_labels

        image = self.view_image(shard, token, matrix, offset, rows=rows)
        return interval_labels(image, width, axis_offset)

    # ------------------------------------------------------------------ #
    # Masked aggregation sub-queries (GoodCenter steps 8-11)
    # ------------------------------------------------------------------ #
    def _selection_rows_local(self, shard: int, spec: tuple) -> np.ndarray:
        """Shard-local ascending rows of a masked-query selection.

        ``spec`` is the wire form of a selection: ``("rows", local_rows)``
        ships a pre-sliced shard-local index array, while ``("box",
        sel_token, view_token, sel_matrix, sel_offset, width, shifts,
        label)`` ships the *label predicate* — the shard re-derives its own
        membership from its (token-cached) image of the selecting view, so
        the mask never exists as an array in the parent.  The derived rows
        are memoised per shard under ``sel_token``: consecutive masked
        queries over the same selection (GoodCenter issues several per call)
        hash the image once, not once per query.
        """
        if spec[0] == "rows":
            return np.asarray(spec[1], dtype=np.int64)
        _, sel_token, token, matrix, offset, width, shifts, label = spec
        if sel_token is not None:
            cached = self._selection_rows.get(shard)
            if cached is not None and cached[0] == sel_token:
                return cached[1]
        mask = self.view_label_mask(shard, token, matrix, offset, width,
                                    shifts, label)
        rows = np.flatnonzero(mask)
        if sel_token is not None:
            self._selection_rows[shard] = (sel_token, rows)
        return rows

    def view_masked_count(self, shard: int, spec: tuple) -> int:
        """This shard's selected-row count."""
        return int(self._selection_rows_local(shard, spec).shape[0])

    def view_masked_sum(self, shard: int, token: Optional[int],
                        matrix: Optional[np.ndarray],
                        offset: Optional[np.ndarray],
                        spec: tuple) -> Tuple[int, tuple]:
        """``(count, fixed-point (limb, shift, column) partial arrays)`` of
        this shard's selected image rows — the mergeable partial behind
        :meth:`ProjectedView.masked_sum`.  The wire form is fixed-width
        int64 arrays (producible by the native kernel, cheap to pickle);
        integer addition across shards is exact and associative, so the
        merged total is independent of the shard topology."""
        rows = self._selection_rows_local(shard, spec)
        image = self.view_image(shard, token, matrix, offset, rows=rows)
        return int(rows.shape[0]), fixed_point_column_partials(image)

    def view_masked_minmax(self, shard: int, token: Optional[int],
                           matrix: Optional[np.ndarray],
                           offset: Optional[np.ndarray],
                           spec: tuple) -> Optional[np.ndarray]:
        """Per-axis ``(2, k)`` extremes of this shard's selected image rows
        (``None`` when the shard selects nothing — the merge identity)."""
        rows = self._selection_rows_local(shard, spec)
        if rows.shape[0] == 0:
            return None
        image = self.view_image(shard, token, matrix, offset, rows=rows)
        return np.vstack([image.min(axis=0), image.max(axis=0)])

    def view_masked_clipped(self, shard: int, token: Optional[int],
                            matrix: Optional[np.ndarray],
                            offset: Optional[np.ndarray], spec: tuple,
                            center: np.ndarray,
                            clip_radius: float) -> Tuple[int, tuple]:
        """NoisyAVG partial: count and fixed-point ``(limb, shift, column)``
        partial arrays of ``y - center`` over this shard's selected rows
        inside the clip ball (the shared
        :func:`repro.geometry.balls.ball_membership` mask, so the shard-side
        selection is bitwise the parent's)."""
        from repro.geometry.balls import ball_membership

        rows = self._selection_rows_local(shard, spec)
        image = self.view_image(shard, token, matrix, offset, rows=rows)
        inside = ball_membership(image, center, clip_radius)
        deltas = image[inside] - np.asarray(center, dtype=float)[None, :]
        return (int(np.count_nonzero(inside)),
                fixed_point_column_partials(deltas))

    def view_masked_axis_hists(self, shard: int, token: Optional[int],
                               matrix: Optional[np.ndarray],
                               offset: Optional[np.ndarray], spec: tuple,
                               width: float, axis_offset: float,
                               ) -> Tuple[int, list]:
        """Per-axis interval histograms of this shard's selected image rows.

        Returns ``(local selected count, [(labels, counts, first local
        position) per axis])``; the first-occurrence positions are indices
        into the shard's own selected-row sequence, which the parent offsets
        by the preceding shards' selected counts to restore the global
        first-occurrence cell order the histogram noise draws depend on.
        """
        from repro.geometry.boxes import interval_labels

        rows = self._selection_rows_local(shard, spec)
        image = self.view_image(shard, token, matrix, offset, rows=rows)
        labels = interval_labels(image, width, axis_offset)
        per_axis = []
        for axis in range(labels.shape[1]):
            unique, first, counts = np.unique(labels[:, axis],
                                              return_index=True,
                                              return_counts=True)
            per_axis.append((unique, counts, first))
        return int(rows.shape[0]), per_axis

    # ------------------------------------------------------------------ #
    # Fused plan execution (one task per shard for a whole QueryPlan)
    # ------------------------------------------------------------------ #
    def execute_plan(self, shard: int, views: Sequence[tuple],
                     selections: Sequence[tuple],
                     queries: Sequence[tuple]) -> list:
        """Evaluate every query of a compiled plan over this shard.

        ``views`` is the plan's view table as ``(token, matrix, offset)``
        wire triples, ``selections`` its selection table in the per-shard
        spec form of :meth:`_selection_rows_local`, and ``queries`` the
        ordered ``(op, view_slot, selection_slot, args)`` bundle.  Each
        query's partial is exactly what the corresponding standalone shard
        sub-query would return — the parent merges them with the same code —
        but the whole bundle costs *one* task dispatch, each selection's
        membership is derived at most once (``rows_cache``), and each view's
        image is projected at most once (the token-keyed image cache).
        """
        rows_cache: dict = {}
        results = []
        for op, view_slot, sel_slot, args in queries:
            token = matrix = offset = None
            if view_slot is not None:
                token, matrix, offset = views[view_slot]
            spec = None
            if sel_slot is not None:
                rows = rows_cache.get(sel_slot)
                if rows is None:
                    rows = self._selection_rows_local(shard,
                                                      selections[sel_slot])
                    rows_cache[sel_slot] = rows
                spec = ("rows", rows)
            if op == "masked_count":
                results.append(int(spec[1].shape[0]))
            elif op == "masked_sum":
                results.append(self.view_masked_sum(shard, token, matrix,
                                                    offset, spec))
            elif op == "masked_minmax":
                results.append(self.view_masked_minmax(shard, token, matrix,
                                                       offset, spec))
            elif op == "masked_clipped_sum":
                center, clip_radius = args
                results.append(self.view_masked_clipped(
                    shard, token, matrix, offset, spec, center, clip_radius
                ))
            elif op == "masked_axis_histograms":
                width, axis_offset = args
                results.append(self.view_masked_axis_hists(
                    shard, token, matrix, offset, spec, width, axis_offset
                ))
            elif op == "heaviest_cell_counts":
                width, shifts, top_k = args
                results.append(self.view_heaviest_cells(
                    shard, token, matrix, offset, width, shifts, top_k
                ))
            elif op == "cell_histogram":
                width, shifts, want_inverse = args
                results.append(self.view_cell_histogram(
                    shard, token, matrix, offset, width, shifts, want_inverse
                ))
            elif op == "axis_interval_labels":
                width, axis_offset, local_rows = args
                results.append(self.view_axis_labels(
                    shard, token, matrix, offset, width, axis_offset,
                    local_rows
                ))
            elif op == "count_within_many":
                centers, radii = args
                results.append(self.counts_many(shard, centers, radii))
            elif op == "depth_counts":
                (thresholds,) = args
                results.append(self.depth_counts(shard, thresholds))
            else:
                raise ValueError(f"unknown plan operation {op!r}")
        return results


# --------------------------------------------------------------------------- #
# Worker-process plumbing
# --------------------------------------------------------------------------- #

#: The worker's shard set, installed by :func:`_init_worker`.
_WORKER_SHARDS: Optional[_ShardSet] = None
_WORKER_SHM: Optional[shared_memory.SharedMemory] = None


def _init_worker(shm_name: str, shape: Tuple[int, int], dtype_str: str,
                 bounds: Sequence[Tuple[int, int]],
                 inner_backend: str) -> None:
    """Pool initialiser: attach the shared dataset, build the shard set."""
    global _WORKER_SHARDS, _WORKER_SHM
    # Attach WITHOUT registering with the resource tracker: the parent owns
    # the segment and unlinks it on close; a child registration would make the
    # (possibly shared, under fork) tracker believe the segment was already
    # released, turning the parent's unlink into a KeyError (bpo-39959).
    # Python 3.13 exposes this as SharedMemory(..., track=False); earlier
    # interpreters need the register call suppressed around the attach.
    try:  # pragma: no cover - interpreter-version dependent
        shm = shared_memory.SharedMemory(name=shm_name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=shm_name)
        finally:
            resource_tracker.register = original_register
    points = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
    _WORKER_SHM = shm
    _WORKER_SHARDS = _ShardSet(points, bounds, inner_backend)


def _run_shard_task(method: str, shard: int, args: tuple):
    """Dispatch one shard sub-query inside a worker process."""
    return _WORKER_SHARDS.run(method, shard, args)


def _worker_cache_stats() -> dict:
    """Report this worker's cache/index occupancy (for ``pool_stats``)."""
    return _WORKER_SHARDS.cache_stats()


class _StealingBatch:
    """Parent-side work-stealing scheduler for one batch of shard tasks.

    With the default topology (shards == worker slots) every slot receives
    exactly one task and this degenerates to the plain affinity dispatch.
    When shards outnumber workers, eager per-slot submission would make the
    batch's wall clock the *slowest slot's queue*, not the slowest task: one
    slow shard serialises every other shard that hashes to its slot.  So
    tasks are queued parent-side (per affinity slot, in task order) and
    submitted one at a time; a slot that drains its own queue *steals* from
    the tail of the longest remaining queue (deterministic victim: longest
    queue, smallest slot on ties).  Stealing moves only the *computation* —
    a stolen task's shard index travels with it, the worker builds the
    shard's index on demand, and results resolve into per-task proxy
    futures, so callers still consume them in task order and every merge
    stays bitwise identical to the serial path.  The steal count is
    surfaced via ``pool_stats()["stolen_tasks"]``.
    """

    __slots__ = ("_backend", "_executors", "_tasks", "_lock", "_queues",
                 "proxies")

    def __init__(self, backend: "ShardedBackend",
                 executors: List[ProcessPoolExecutor],
                 tasks: Sequence[tuple]) -> None:
        self._backend = backend
        self._executors = executors
        self._tasks = list(tasks)
        self._lock = threading.Lock()
        self.proxies: List[Future] = [Future() for _ in self._tasks]
        slots = len(executors)
        self._queues = [deque() for _ in range(slots)]
        for index, (_, shard, _) in enumerate(self._tasks):
            self._queues[shard % slots].append(index)
        for slot in range(slots):
            self._start_next(slot)

    def _pick(self, slot: int):
        """The next task index for ``slot`` (own queue first, else steal).

        Caller holds the lock: the queues are shared across the executor
        manager threads that run the completion hooks.
        """
        queue = self._queues[slot]
        if queue:
            return queue.popleft(), False
        if not self._backend.WORK_STEALING:
            return None, False
        victim = max(range(len(self._queues)),
                     key=lambda s: (len(self._queues[s]), -s))
        if not self._queues[victim]:
            return None, False
        # Steal from the tail: the task farthest in the victim's future,
        # leaving its near-term affinity work (and warm caches) in place.
        return self._queues[victim].pop(), True

    def _start_next(self, slot: int) -> None:
        """Submit ``slot``'s next task.

        Only the queue mutation runs under the lock.  In particular the
        completion hook is attached *outside* it: ``add_done_callback`` on
        an already-finished future invokes the callback synchronously on
        the calling thread, and ``_finish`` re-enters ``_start_next`` — a
        lock held across the attach would self-deadlock the moment a
        worker wins that race.  Each slot has at most one in-flight task
        (the next is only submitted from its predecessor's hook), so the
        per-slot submit sequence needs no lock of its own.
        """
        while True:
            with self._lock:
                index, stolen = self._pick(slot)
            if index is None:
                return
            method, shard, args = self._tasks[index]
            proxy = self.proxies[index]
            try:
                future = self._executors[slot].submit(
                    _run_shard_task, method, shard, args
                )
            except BaseException as error:  # pool shut down mid-batch
                proxy.set_exception(error)
                continue
            if stolen:
                self._backend._note_stolen()
            future.add_done_callback(
                lambda f, s=slot, p=proxy: self._finish(s, p, f)
            )
            return

    def _finish(self, slot: int, proxy: Future, future) -> None:
        error = future.exception()
        if error is not None:
            proxy.set_exception(error)
        else:
            proxy.set_result(future.result())
        self._start_next(slot)


# --------------------------------------------------------------------------- #
# Deterministic shard-order merges
#
# Shared by the per-query fan-outs of ``_ShardedView`` and the fused plan
# execution path: both collect per-shard partials in shard order and fold
# them through these functions, so a query's result is bitwise the same
# whether it travelled alone or inside a plan — and independent of worker
# scheduling, because the fold order is the shard order, never the
# completion order.
# --------------------------------------------------------------------------- #

def _split_rows_by_shard(rows: np.ndarray,
                         bounds: Sequence[Tuple[int, int]]):
    """Slice a global row-index array into shard-local pieces.

    Returns ``(order, slices)``: ``slices[s]`` holds shard ``s``'s
    (ascending, shard-local) rows, and ``order`` is the stable argsort that
    maps the shard-major concatenation of the per-shard results back to the
    caller's row order.
    """
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    slices = []
    for low, high in bounds:
        lo = np.searchsorted(sorted_rows, low, side="left")
        hi = np.searchsorted(sorted_rows, high, side="left")
        slices.append(sorted_rows[lo:hi] - low)
    return order, slices


def _merge_masked_sum(parts: Sequence[tuple],
                      image_dimension: int) -> np.ndarray:
    """Fold ``(count, (limb, shift, column) arrays)`` partials into the
    exact float column sums (see
    :func:`repro.utils.exactsum.merge_column_partials`)."""
    totals = merge_column_partials(image_dimension,
                                   [part[1] for part in parts])
    return np.asarray([fixed_point_to_float(total) for total in totals],
                      dtype=float)


def _merge_minmax(parts: Sequence[Optional[np.ndarray]],
                  image_dimension: int) -> np.ndarray:
    """Fold per-shard ``(2, k)`` extremes (``None`` = empty shard)."""
    merged = np.vstack([np.full(image_dimension, np.inf),
                        np.full(image_dimension, -np.inf)])
    for part in parts:
        if part is None:
            continue
        merged[0] = np.minimum(merged[0], part[0])
        merged[1] = np.maximum(merged[1], part[1])
    return merged


def _merge_axis_histograms(parts: Sequence[tuple],
                           image_dimension: int) -> list:
    """Merge per-shard masked axis histograms, restoring the global
    first-occurrence cell order.

    Shard ``s``'s first-occurrence positions are offset by the selected-row
    counts of shards ``0..s-1`` (the shards partition the ascending selected
    sequence), then each axis follows the min-first / stable-argsort recipe
    the stability histogram's noise draws depend on.
    """
    merged = []
    for axis in range(image_dimension):
        all_labels = []
        all_counts = []
        all_firsts = []
        position_offset = 0
        for local_count, per_axis in parts:
            labels, counts, firsts = per_axis[axis]
            all_labels.append(labels)
            all_counts.append(counts)
            all_firsts.append(firsts + position_offset)
            position_offset += int(local_count)
        labels = np.concatenate(all_labels)
        counts = np.concatenate(all_counts)
        firsts = np.concatenate(all_firsts)
        unique, group = np.unique(labels, return_inverse=True)
        summed = np.bincount(group, weights=counts,
                             minlength=unique.shape[0]).astype(np.int64)
        first = np.full(unique.shape[0], np.iinfo(np.int64).max,
                        dtype=np.int64)
        np.minimum.at(first, group, firsts)
        order = np.argsort(first, kind="stable")
        merged.append((unique[order], summed[order]))
    return merged


def _merge_cell_histogram(parts: Sequence[tuple],
                          bounds: Sequence[Tuple[int, int]],
                          num_points: int, return_inverse: bool):
    """Merge per-shard box histograms into global first-occurrence order
    (optionally with the per-point box positions, see
    :meth:`~repro.neighbors.base.ProjectedView.cell_histogram`)."""
    all_labels = np.concatenate([part[0] for part in parts], axis=0)
    all_counts = np.concatenate([part[1] for part in parts])
    all_firsts = np.concatenate([
        part[2] + low for part, (low, _) in zip(parts, bounds)
    ])
    unique, group = np.unique(all_labels, axis=0, return_inverse=True)
    group = np.reshape(group, -1)      # global group of each shard-unique
    counts = np.bincount(group, weights=all_counts,
                         minlength=unique.shape[0]).astype(np.int64)
    first = np.full(unique.shape[0], num_points, dtype=np.int64)
    np.minimum.at(first, group, all_firsts)
    order = np.argsort(first, kind="stable")
    if not return_inverse:
        return unique[order], counts[order]
    # Per-point positions: each shard's local group ids index into its
    # slice of the concatenated uniques, whose global groups are in
    # `group`; remap those through the first-occurrence ordering.
    position = np.empty(order.shape[0], dtype=np.int64)
    position[order] = np.arange(order.shape[0], dtype=np.int64)
    point_positions = []
    offset = 0
    for part in parts:
        shard_groups = group[offset:offset + part[0].shape[0]]
        point_positions.append(position[shard_groups[part[3]]])
        offset += part[0].shape[0]
    return unique[order], counts[order], np.concatenate(point_positions)


class _CompiledPlan:
    """The wire form of one :class:`~repro.neighbors.base.QueryPlan`.

    ``views_wire`` is the plan's view table as ``(token, matrix, offset)``
    triples; ``selection_specs[j][s]`` shard ``s``'s spec for selection
    ``j``; ``bundle`` the ordered shard-side queries (``args`` is either a
    tuple shared by every shard or a per-shard list); ``merges`` one entry
    per *plan* query — ``(op, bundle_index, extra)``, with ``bundle_index``
    ``None`` for coordinator operations evaluated parent-side.
    """

    __slots__ = ("views_wire", "selection_specs", "bundle", "merges")

    def __init__(self, views_wire, selection_specs, bundle, merges) -> None:
        self.views_wire = views_wire
        self.selection_specs = selection_specs
        self.bundle = bundle
        self.merges = merges

    def shard_args(self, shard: int) -> tuple:
        """The ``execute_plan`` payload for one shard."""
        selections = [specs[shard] for specs in self.selection_specs]
        queries = [
            (op, view_slot, sel_slot,
             args if isinstance(args, tuple) else args[shard])
            for op, view_slot, sel_slot, args in self.bundle
        ]
        return (self.views_wire, selections, queries)


class _ShardedPlanFuture(PlanFuture):
    """An in-flight plan: one dispatched task per shard.

    :meth:`result` collects the per-shard futures **in shard order** and
    folds them through the deterministic merges, so the values — and the
    releases derived from them — are independent of worker scheduling and of
    how many plans are overlapped.  A broken pool degrades to the serial
    path (recomputing the whole plan in-process), matching the point-query
    fallback semantics.
    """

    def __init__(self, backend: "ShardedBackend", compiled: _CompiledPlan,
                 futures: list) -> None:
        self._backend = backend
        self._compiled = compiled
        self._futures = futures
        self._resolved: Optional[list] = None

    def done(self) -> bool:
        """Whether every shard task has finished (merging still happens on
        the first :meth:`result` call)."""
        return (self._resolved is not None
                or all(future.done() for future in self._futures))

    def result(self) -> list:
        """Block for the per-shard tasks, merge in shard order, and return
        the per-query results (memoised across calls)."""
        if self._resolved is None:
            try:
                shard_parts = [future.result() for future in self._futures]
            except (BrokenProcessPool, OSError) as error:  # pragma: no cover
                backend = self._backend
                backend._pool_failed = True
                backend.close()
                warnings.warn(
                    f"ShardedBackend worker pool died ({error}); recomputing "
                    "the submitted plan on the serial in-process path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                shard_parts = [
                    backend._shards.execute_plan(
                        shard, *self._compiled.shard_args(shard)
                    )
                    for shard in range(backend.num_shards)
                ]
            self._resolved = self._backend._merge_plan(self._compiled,
                                                       shard_parts)
            self._futures = []
        return self._resolved


class ShardedBackend(NeighborBackend):
    """Dataset sharded across processes; per-shard answers merged exactly.

    Parameters
    ----------
    points:
        ``(n, d)`` dataset.
    num_shards:
        How many contiguous shards to split the points into.  Defaults to the
        worker count (or the CPU count when that is automatic too); always
        clamped to ``n``.
    num_workers:
        Worker-process count.  ``None`` (default) uses
        ``min(num_shards, cpu count)``; ``0`` forces the serial in-process
        path (identical results, no pool); values ``> 1`` request a process
        pool, which silently degrades to serial if the pool cannot start.
    inner_backend:
        The single-process strategy each shard answers with: a registry name
        or ``"auto"`` (default; per-shard size-based choice, never recursing
        into ``"sharded"``).
    """

    name = "sharded"

    #: Plans submitted here run genuinely in flight (pool mode), so
    #: GoodCenter's noise-gate predictor speculates through this strategy;
    #: the serial fallback still opts in — the speculative plan is the same
    #: shard/merge work either way, which keeps the regression tests
    #: deterministic without a pool.
    supports_speculation: ClassVar[bool] = True

    #: Partition-search attempts batched per heaviest-cell request.
    HEAVIEST_CELL_BATCH: ClassVar[int] = 8

    #: How many cells each shard returns per heaviest-cell attempt before
    #: the bounded merge falls back to an exact recount of the candidate
    #: union (see :meth:`_ShardedView.heaviest_cell_counts`).  Bounds the
    #: parent's merge scratch at ``O(shards * top_k)`` instead of the total
    #: number of occupied boxes.  ``None`` disables the truncation (full
    #: per-shard histograms, the pre-bounded behaviour).
    HEAVIEST_CELL_TOP_K: ClassVar[Optional[int]] = 64

    #: Whether a worker slot that drains its own affinity queue may steal
    #: queued tasks from other slots (see :class:`_StealingBatch`).  A pure
    #: wall-clock lever: results are merged in task order either way, so
    #: released values are bitwise identical with stealing on or off.
    WORK_STEALING: ClassVar[bool] = True

    def __init__(self, points, num_shards: Optional[int] = None,
                 num_workers: Optional[int] = None,
                 inner_backend: str = "auto") -> None:
        super().__init__(points)
        if num_workers is None:
            workers = min(_available_cpus(),
                          num_shards if num_shards else _available_cpus())
        else:
            workers = check_integer(num_workers, "num_workers", minimum=0)
        if num_shards is None:
            num_shards = max(workers, 1)
        num_shards = check_integer(num_shards, "num_shards", minimum=1)
        num_shards = min(num_shards, self.num_points)
        offsets = np.linspace(0, self.num_points, num_shards + 1).astype(int)
        self._bounds = [(int(offsets[i]), int(offsets[i + 1]))
                        for i in range(num_shards)]
        self._inner_backend = str(inner_backend)
        self._requested_workers = min(workers, num_shards)
        self._shards = _ShardSet(self._points, self._bounds,
                                 self._inner_backend)
        self._executors: Optional[List[ProcessPoolExecutor]] = None
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._pool_failed = False
        #: Monotonic fan-out instrumentation, exposed via :meth:`pool_stats`:
        #: ``fanouts`` counts collective operations (each is one round trip
        #: per shard), ``shard_tasks`` the per-shard tasks they dispatched,
        #: ``plans`` the query plans executed or submitted, ``stolen_tasks``
        #: the tasks the work-stealing scheduler moved off their affinity
        #: slot.  The lock guards the steal counter, which is bumped from
        #: executor callback threads while overlapping batches are in flight.
        self._stats = {"fanouts": 0, "shard_tasks": 0, "plans": 0,
                       "stolen_tasks": 0}
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """How many contiguous shards the dataset is split into."""
        return len(self._bounds)

    @property
    def shard_bounds(self) -> List[Tuple[int, int]]:
        """The ``[low, high)`` row range of every shard."""
        return list(self._bounds)

    @property
    def parallel(self) -> bool:
        """Whether queries run on a process pool (False = serial fallback)."""
        return self._requested_workers > 1 and not self._pool_failed

    def pool_stats(self) -> dict:
        """Fan-out instrumentation and per-worker cache occupancy.

        Returns a dict with the monotonic counters ``fanouts`` (collective
        operations — each is one round trip per shard), ``shard_tasks``
        (per-shard tasks those operations dispatched) and ``plans`` (query
        plans executed/submitted), plus the topology and a ``workers`` list:
        one :meth:`_ShardSet.cache_stats` entry per live worker slot (pool
        mode) or the parent shard set's entry (serial fallback).  With
        routing affinity each shard index appears in exactly one worker's
        ``built_shards`` — the property the affinity tests pin.

        Purely diagnostic: reading it never starts the pool, but in pool
        mode it does dispatch one stats task per live worker slot.
        """
        stats = dict(self._stats)
        stats["num_shards"] = self.num_shards
        stats["requested_workers"] = self._requested_workers
        stats["parallel"] = self._executors is not None
        stats["kernel_mode"] = _kernels.KERNEL_MODE
        stats["speculation"] = self.speculation_stats()
        if self._executors is not None:
            try:
                stats["workers"] = [
                    executor.submit(_worker_cache_stats).result()
                    for executor in self._executors
                ]
            except (BrokenProcessPool, OSError):  # pragma: no cover
                stats["workers"] = []
        else:
            stats["workers"] = [self._shards.cache_stats()]
        return stats

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_executors(self) -> Optional[List[ProcessPoolExecutor]]:
        """Start the worker slots + shared-memory block lazily.

        Returns a list of ``W`` single-process executors (``None`` =
        serial).  One executor per worker slot is what implements the
        shard→worker routing *affinity*: tasks for shard ``s`` always go to
        slot ``s mod W`` (see :meth:`_submit_shard_task`), so each shard's
        lazy index/image caches live in exactly one worker process —
        the single shared pool they replace let any idle worker grab any
        shard, duplicating per-shard indexes across workers under mixed
        plan/point-query load.  With the default topology (shards ==
        workers) per-fan-out parallelism is unchanged: every slot still
        receives exactly one task per collective operation.
        """
        if self._requested_workers <= 1 or self._pool_failed:
            return None
        if self._executors is not None:
            return self._executors
        shm = None
        executors: List[ProcessPoolExecutor] = []
        try:
            data = np.ascontiguousarray(self._points)
            shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
            view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
            view[:] = data
            import multiprocessing

            # Prefer fork: workers inherit the imported library, so no module
            # re-import cost and no dependence on PYTHONPATH in the children.
            methods = multiprocessing.get_all_start_methods()
            context = get_context("fork" if "fork" in methods else None)
            for _ in range(self._requested_workers):
                executors.append(ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=(shm.name, data.shape, data.dtype.str,
                              self._bounds, self._inner_backend),
                ))
        except (OSError, ValueError, ImportError) as error:
            for executor in executors:  # pragma: no cover - partial start-up
                executor.shutdown(wait=False)
            if shm is not None:  # don't leak the segment on executor failure
                try:
                    shm.close()
                    shm.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
            self._pool_failed = True
            warnings.warn(
                f"ShardedBackend could not start its worker pool ({error}); "
                "falling back to the serial in-process path (results are "
                "identical, only slower)",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        self._shm = shm
        self._executors = executors
        return executors

    def _submit_shard_task(self, executors: List[ProcessPoolExecutor],
                           method: str, shard: int, args: tuple):
        """Submit one shard sub-query to the shard's affinity slot."""
        return executors[shard % len(executors)].submit(
            _run_shard_task, method, shard, args
        )

    def _note_stolen(self) -> None:
        """Count one stolen task (called from executor callback threads)."""
        with self._stats_lock:
            self._stats["stolen_tasks"] += 1

    def _schedule_shard_tasks(self, executors: List[ProcessPoolExecutor],
                              tasks: Sequence[tuple]) -> List[Future]:
        """Dispatch a batch of ``(method, shard, args)`` tasks through the
        work-stealing scheduler; returns one proxy future per task, in task
        order."""
        return _StealingBatch(self, executors, tasks).proxies

    def _normalize_tasks(self, tasks: Sequence[tuple]) -> list:
        """Validate + normalise a batch of ``(method, shard, args)`` tasks.

        The dispatch seam shared by every transport: the local pool, the
        node server (which forwards a coordinator's batch verbatim), and
        the distributed coordinator all funnel their batches through this
        one method-allowlist / shard-range check, so a malformed task is
        rejected identically no matter which layer dispatches it.
        """
        tasks = [(str(method), int(shard), tuple(args))
                 for method, shard, args in tasks]
        for method, shard, _ in tasks:
            if method not in SHARD_TASK_METHODS:
                raise ValueError(f"unknown shard task method {method!r}")
            if not 0 <= shard < self.num_shards:
                raise ValueError(
                    f"shard {shard} out of range [0, {self.num_shards})"
                )
        return tasks

    def run_shard_tasks(self, tasks: Sequence[tuple]) -> list:
        """Run a batch of ``(method, shard, args)`` shard sub-queries.

        The batch entry point shared by the local fan-outs and the remote
        node server (which forwards a coordinator's task batch here
        verbatim): validates every method against
        :data:`SHARD_TASK_METHODS`, runs the batch on the worker pool
        through the work-stealing scheduler (serially in-process without
        one), and returns results in task order — so merges downstream are
        independent of which slot ran what.
        """
        tasks = self._normalize_tasks(tasks)
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += len(tasks)
        executors = self._ensure_executors()
        if executors is None:
            return [self._shards.run(method, shard, args)
                    for method, shard, args in tasks]
        proxies = self._schedule_shard_tasks(executors, tasks)
        try:
            return [proxy.result() for proxy in proxies]
        except (BrokenProcessPool, OSError) as error:  # pragma: no cover
            self._pool_failed = True
            self.close()
            warnings.warn(
                f"ShardedBackend worker pool died ({error}); retrying on the "
                "serial in-process path",
                RuntimeWarning,
                stacklevel=3,
            )
            return [self._shards.run(method, shard, args)
                    for method, shard, args in tasks]

    def close(self) -> None:
        """Shut down the worker slots and release the shared-memory block.

        Safe to call repeatedly; also invoked on garbage collection.  After
        closing, the next query transparently restarts the pool.  Also drops
        the serial fallback's cached view images and memoised selections (in
        pool mode those caches live in the worker processes and die with
        them).
        """
        executors, self._executors = self._executors, None
        if executors is not None:
            for executor in executors:
                executor.shutdown(wait=True)
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._shards.clear_view_images()

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Fan-out / merge
    # ------------------------------------------------------------------ #
    def _map_shards(self, method: str, args: tuple) -> list:
        """Run ``method(shard, *args)`` for every shard; pool if available."""
        return self._map_shards_per(method, [args] * self.num_shards)

    def _map_shards_per(self, method: str,
                        per_shard_args: Sequence[tuple]) -> list:
        """Like :meth:`_map_shards`, but with per-shard argument tuples (used
        when each shard receives only its own slice of a payload, e.g. the
        row subset of a view's axis-label query).  Delegates to the batch
        entry point :meth:`run_shard_tasks`, so every fan-out goes through
        the same validation and work-stealing scheduler."""
        return self.run_shard_tasks([
            (method, shard, per_shard_args[shard])
            for shard in range(self.num_shards)
        ])

    def _iter_shards(self, method: str, args: tuple, wave: int = None):
        """Like :meth:`_map_shards`, but yield results one shard at a time.

        Submission is bounded to waves of ``wave`` outstanding tasks
        (default: the worker count), so per-shard results whose merge is a
        fold (the truncated statistic) never all sit in parent memory at
        once — callers pick the wave from the per-result size, trading pool
        utilisation for a hard buffer bound.
        """
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += self.num_shards
        executors = self._ensure_executors()
        if executors is None:
            for shard in range(self.num_shards):
                yield self._shards.run(method, shard, args)
            return
        if wave is None:
            wave = self._requested_workers
        wave = max(1, min(wave, self.num_shards))
        delivered = 0
        try:
            for start in range(0, self.num_shards, wave):
                futures = [
                    self._submit_shard_task(executors, method, shard, args)
                    for shard in range(start, min(start + wave,
                                                  self.num_shards))
                ]
                for future in futures:
                    result = future.result()
                    delivered += 1
                    yield result
        except (BrokenProcessPool, OSError) as error:  # pragma: no cover
            self._pool_failed = True
            self.close()
            warnings.warn(
                f"ShardedBackend worker pool died ({error}); finishing the "
                "query on the serial in-process path",
                RuntimeWarning,
                stacklevel=3,
            )
            # Results are yielded in shard order, so resume after the last
            # delivered shard (re-yielding one would corrupt fold merges).
            for shard in range(delivered, self.num_shards):
                yield self._shards.run(method, shard, args)

    # ------------------------------------------------------------------ #
    # NeighborBackend protocol
    # ------------------------------------------------------------------ #
    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        """``B_r(c, S)`` per centre: the sum of per-shard counts.

        Parameters
        ----------
        centers:
            ``(q, d)`` query centres.
        radius:
            The ball radius; negative radii give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(q,)`` ``int64`` counts.
        """
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        if radius < 0:
            return np.zeros(centers.shape[0], dtype=np.int64)
        payload = None if centers is self._points else centers
        parts = self._map_shards("counts", (payload, float(radius)))
        return np.sum(parts, axis=0, dtype=np.int64)

    def count_within_many(self, centers, radii) -> np.ndarray:
        """The batched count grid, one fused request per shard.

        See :meth:`NeighborBackend.count_within_many`; here all ``m`` radii
        travel to each shard in a single message and each shard computes its
        distance slabs once, so the fan-out cost is paid once per shard rather
        than once per ``(shard, radius)`` pair.
        """
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        if radii.size == 0:
            return np.empty((0, centers.shape[0]), dtype=np.int64)
        payload = None if centers is self._points else centers
        parts = self._map_shards("counts_many", (payload, radii))
        return np.sum(parts, axis=0, dtype=np.int64)

    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        """Merge-walk of the per-shard truncated statistics.

        Each shard returns every point's ``min(k, shard size)`` smallest
        squared distances to the shard; the union of those per-shard values is
        a superset of the global ``k`` smallest, so keeping the ``k`` smallest
        while folding the shards in one at a time is exact.  The incremental
        fold bounds the scratch at ``(n, 2k)`` — concatenating all shards
        first would transiently cost up to ``(n, shards * k)``, which at the
        sizes where sharding is auto-selected is the dense matrix again —
        and the submission wave is sized so the undrained ``(n, k)`` results
        buffered in completed futures stay within a few memory budgets,
        trading pool utilisation for a hard bound when ``n * k`` is large.
        """
        k = min(k, self.num_points)
        result_bytes = max(1, 8 * self.num_points * k)
        wave = int(max(1, (4 * DEFAULT_MEMORY_BUDGET) // result_bytes))
        merged = None
        for part in self._iter_shards("truncated", (k,), wave=wave):
            if merged is None:
                merged = part
                continue
            combined = np.concatenate([merged, part], axis=1)
            if combined.shape[1] > k:
                combined = np.partition(combined, k - 1, axis=1)[:, :k]
            merged = combined
        merged = np.ascontiguousarray(merged[:, :k])
        merged.sort(axis=1)
        return merged

    def _capped_count_histograms(self, keys: np.ndarray,
                                 cap: int) -> np.ndarray:
        """Streaming partials: each shard histograms its own query rows
        against the full (shared-memory) dataset; histograms add up.  Summed
        incrementally as shards complete, so the parent holds one
        ``(chunk, cap + 1)`` accumulator instead of all shards' partials —
        preserving the bounded-memory point of the streaming walk.
        """
        total = np.zeros((np.asarray(keys).shape[0], cap + 1), dtype=np.int64)
        for part in self._iter_shards("histograms",
                                      (np.asarray(keys, float), cap)):
            total += part
        return total

    # ------------------------------------------------------------------ #
    # Grid hashing (GoodCenter's partition search)
    # ------------------------------------------------------------------ #
    def view(self, matrix=None, offset=None) -> "ProjectedView":
        """A sharded :class:`~repro.neighbors.base.ProjectedView`.

        The ``(k, d)`` projection matrix travels with each shard task (it is
        tiny) and is applied shard-side over the shared-memory block — the
        parent never materialises the ``(n, k)`` image.  Workers cache each
        shard's image per view, so repeated queries (a partition search
        probing hundreds of shifted partitions) project each shard once.
        Results are bit-identical to the in-process view because the
        projection is row-decomposable and the grid hashes are shared single
        definitions (see :func:`repro.geometry.jl.project_rows`).
        """
        return _ShardedView(self, matrix=matrix, offset=offset)

    def heaviest_cell_counts(self, width: float, shifts) -> np.ndarray:
        """Heaviest-box occupancy for a batch of shifted partitions.

        For each row of ``shifts`` — the per-axis offsets of one randomly
        shifted partition of side ``width`` (GoodCenter Algorithm 2, steps
        3–5) — returns ``max_B |{x in S : x in box B}|``.  Grid hashing is a
        radius-count in disguise: each shard buckets its own points
        (bit-identically to a single-process pass) and the parent sums the
        per-label counts across shards before taking the max.  Equivalent to
        ``self.view().heaviest_cell_counts(width, shifts)`` (the identity
        view); kept as a method because the identity case predates views.

        Parameters
        ----------
        width:
            The box side length.
        shifts:
            ``(a, d)`` per-attempt shift vectors (a single ``(d,)`` vector is
            promoted to one attempt).

        Returns
        -------
        numpy.ndarray
            ``(a,)`` ``int64`` heaviest-cell counts, one per attempt.
        """
        return self.view().heaviest_cell_counts(width, shifts)

    # ------------------------------------------------------------------ #
    # Fused query plans (one task per shard per plan)
    # ------------------------------------------------------------------ #
    def _check_global_rows(self, rows) -> np.ndarray:
        """Validate a global row-index array (mirrors the view-side check —
        no negative wrap-around, values in ``[0, n)``)."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size and (int(rows.min()) < 0
                          or int(rows.max()) >= self.num_points):
            raise ValueError("rows must lie in [0, n)")
        return rows

    def _selection_specs(self, selection) -> List[tuple]:
        """Per-shard wire specs of a masked-query selection.

        A :class:`~repro.neighbors.base.BoxSelection` ships as its *label
        predicate* — ``(selection token, selecting view's cache token /
        matrix / offset, width, shifts, label)``, identical for every shard;
        each worker re-derives its own membership from its cached image of
        the selecting view (memoising the rows under the selection token),
        so no ``O(n)`` mask or row list ever crosses the wire (or exists in
        the parent).  Row/mask selections are normalised to ascending global
        rows and sliced so each shard receives only its own (shard-local)
        segment.
        """
        if isinstance(selection, BoxSelection):
            view = selection.view
            if view.backend is not self:
                raise ValueError(
                    "the BoxSelection was built over a different backend's "
                    "view; selections only transfer between views of the "
                    "same backend"
                )
            token = view._token if isinstance(view, _ShardedView) else None
            spec = ("box", selection.token, token, view.matrix, view.offset,
                    float(selection.width), selection.shifts, selection.label)
            return [spec] * self.num_shards
        array = np.asarray(selection)
        if array.dtype == np.bool_:
            if array.shape != (self.num_points,):
                raise ValueError(
                    f"boolean selection must have shape ({self.num_points},),"
                    f" got {array.shape}"
                )
            rows = np.flatnonzero(array)
        else:
            rows = np.sort(self._check_global_rows(array), kind="stable")
        specs = []
        for low, high in self._bounds:
            lo = np.searchsorted(rows, low, side="left")
            hi = np.searchsorted(rows, high, side="left")
            specs.append(("rows", rows[lo:hi] - low))
        return specs

    def _view_wire(self, view: ProjectedView) -> tuple:
        """A view's ``(token, matrix, offset)`` wire triple."""
        if view.backend is not self:
            raise ValueError(
                "the plan queries a view of a different backend; build the "
                "plan against the backend that executes it"
            )
        token = view._token if isinstance(view, _ShardedView) else None
        return (token, view.matrix, view.offset)

    def _compile_plan(self, plan: QueryPlan) -> _CompiledPlan:
        """Compile a :class:`~repro.neighbors.base.QueryPlan` to wire form.

        Validation (view ownership, centre dimensions, row ranges) happens
        here, in the parent, so workers only ever see well-formed payloads.
        """
        views = plan.views
        views_wire = [self._view_wire(view) for view in views]
        selection_specs = [self._selection_specs(selection)
                           for selection in plan.selections]
        bundle: List[tuple] = []
        merges: List[tuple] = []
        for query in plan.queries:
            op = query.op
            if op == "capped_average_scores":
                merges.append((op, None, query.args))
                continue
            if op == "count_within_many":
                centers, radii = query.args
                centers = check_points(centers, dimension=self.dimension,
                                       name="centers")
                payload = None if centers is self._points else centers
                merges.append((op, len(bundle), None))
                bundle.append((op, None, None, (payload, radii)))
                continue
            if op == "depth_counts":
                merges.append((op, len(bundle), None))
                bundle.append((op, None, None, query.args))
                continue
            view_slot = query.view_slot
            if op == "heaviest_cell_counts":
                width, shifts = query.args
                top_k = getattr(self, "HEAVIEST_CELL_TOP_K", None)
                top_k = int(top_k) if top_k else None
                merges.append((op, len(bundle),
                               (views_wire[view_slot], width, shifts, top_k)))
                bundle.append((op, view_slot, None, (width, shifts, top_k)))
                continue
            if op == "axis_interval_labels":
                width, axis_offset, rows = query.args
                if rows is None:
                    merges.append((op, len(bundle), None))
                    bundle.append((op, view_slot, None,
                                   (width, axis_offset, None)))
                else:
                    order, slices = _split_rows_by_shard(
                        self._check_global_rows(rows), self._bounds
                    )
                    merges.append((op, len(bundle), order))
                    bundle.append((op, view_slot, None,
                                   [(width, axis_offset, piece)
                                    for piece in slices]))
                continue
            if op == "cell_histogram":
                width, shifts, want_inverse = query.args
                merges.append((op, len(bundle), want_inverse))
                bundle.append((op, view_slot, None, query.args))
                continue
            # Masked aggregates: the merge needs the image dimension of the
            # queried view.
            matrix = views[view_slot].matrix
            image_dimension = (int(matrix.shape[0]) if matrix is not None
                               else self.dimension)
            merges.append((op, len(bundle), image_dimension))
            bundle.append((op, view_slot, query.selection_slot, query.args))
        return _CompiledPlan(views_wire, selection_specs, bundle, merges)

    def _merge_plan(self, compiled: _CompiledPlan,
                    shard_parts: List[list]) -> list:
        """Fold per-shard plan partials into per-query results (shard order,
        deterministic) and evaluate the coordinator operations."""
        results: List[object] = []
        for op, bundle_index, extra in compiled.merges:
            if op == "capped_average_scores":
                radii, target, streaming = extra
                results.append(self.capped_average_scores(
                    radii, target, streaming=streaming
                ))
                continue
            parts = [shard[bundle_index] for shard in shard_parts]
            if op == "count_within_many":
                results.append(np.sum(parts, axis=0, dtype=np.int64))
            elif op == "depth_counts":
                results.append(np.sum(parts, axis=0, dtype=np.int64))
            elif op == "masked_count":
                results.append(int(sum(parts)))
            elif op == "masked_sum":
                results.append(_merge_masked_sum(parts, extra))
            elif op == "masked_minmax":
                results.append(_merge_minmax(parts, extra))
            elif op == "masked_clipped_sum":
                count = int(sum(part[0] for part in parts))
                totals = merge_column_partials(extra,
                                               [part[1] for part in parts])
                results.append(ClippedSum(
                    count=count,
                    vector_sum=np.asarray(
                        [fixed_point_to_float(total) for total in totals],
                        dtype=float,
                    ),
                ))
            elif op == "masked_axis_histograms":
                results.append(_merge_axis_histograms(parts, extra))
            elif op == "heaviest_cell_counts":
                view_wire, width, shifts, top_k = extra
                results.append(self._heaviest_cell_merge(
                    view_wire, width, shifts, top_k, first_parts=parts
                ))
            elif op == "cell_histogram":
                results.append(_merge_cell_histogram(
                    parts, self._bounds, self.num_points, extra
                ))
            elif op == "axis_interval_labels":
                stacked = np.concatenate(parts, axis=0)
                if extra is None:
                    results.append(stacked)
                else:
                    restored = np.empty_like(stacked)
                    restored[extra] = stacked
                    results.append(restored)
            else:  # pragma: no cover - _compile_plan covers every op
                raise ValueError(f"unknown plan operation {op!r}")
        return results

    def execute(self, plan: QueryPlan) -> list:
        """Run a :class:`~repro.neighbors.base.QueryPlan` in **one round
        trip per shard**: the whole bundle travels to each shard as a
        single ``execute_plan`` task, each shard derives every selection's
        membership and every view's image at most once, and the parent
        merges the partials in shard order — bitwise what the serial loop
        produces.  (The one exception is a plan carrying a
        ``heaviest_cell_counts`` query whose bounded top-``k`` merge fails
        to certify: the exact recount adds fan-outs, exactly as it does for
        the standalone query.)
        """
        return self.submit(plan).result()

    def submit(self, plan: QueryPlan) -> PlanFuture:
        """Dispatch a plan's per-shard tasks without waiting.

        The returned future's :meth:`~repro.neighbors.base.PlanFuture.result`
        merges in shard order, so overlapped plans resolve to bitwise the
        same values as sequential :meth:`execute` calls.  On the serial
        fallback the plan is evaluated eagerly (same shard/merge code, no
        transport) and a completed future is returned.
        """
        compiled = self._compile_plan(plan)
        self._stats["plans"] += 1
        if not compiled.bundle:
            # Coordinator-only plan: nothing to fan out.
            return PlanFuture(self._merge_plan(compiled, []))
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += self.num_shards
        executors = self._ensure_executors()
        if executors is None:
            shard_parts = [
                self._shards.execute_plan(shard, *compiled.shard_args(shard))
                for shard in range(self.num_shards)
            ]
            return PlanFuture(self._merge_plan(compiled, shard_parts))
        try:
            futures = self._schedule_shard_tasks(executors, [
                ("execute_plan", shard, compiled.shard_args(shard))
                for shard in range(self.num_shards)
            ])
        except (BrokenProcessPool, OSError) as error:  # pragma: no cover
            self._pool_failed = True
            self.close()
            warnings.warn(
                f"ShardedBackend worker pool died ({error}); running the "
                "plan on the serial in-process path",
                RuntimeWarning,
                stacklevel=2,
            )
            shard_parts = [
                self._shards.execute_plan(shard, *compiled.shard_args(shard))
                for shard in range(self.num_shards)
            ]
            return PlanFuture(self._merge_plan(compiled, shard_parts))
        return _ShardedPlanFuture(self, compiled, futures)

    def _heaviest_cell_merge(self, view_args: tuple, width: float,
                             shifts: np.ndarray, top_k: Optional[int],
                             first_parts: Optional[list] = None) -> np.ndarray:
        """The bounded heaviest-cell merge (shared by the standalone view
        query and the fused plan path).

        Each shard returns only its ``top_k`` heaviest cells plus a cap (its
        ``top_k``-th largest count, bounding every truncated cell), so the
        parent's scratch is ``O(shards * top_k)`` per attempt instead of the
        total occupied-box count.  The merge is then made exact again by
        *recounting*: the union of the shards' candidate cells is shipped
        back and every shard reports its exact occupancy of each candidate,
        giving exact global counts for all candidates.  A candidate max
        ``>= sum of caps`` certifies that no truncated cell can beat it —
        the returned maxima (and hence AboveThreshold's query stream) are
        bitwise the full merge's.  Uncertified attempts retry with ``top_k``
        escalated 4x (reaching the untruncated merge in the worst case), so
        termination is unconditional.  ``first_parts`` seeds round 1 with
        partials that already arrived inside a fused plan task.
        """
        maxima = np.zeros(shifts.shape[0], dtype=np.int64)
        unresolved = np.arange(shifts.shape[0])
        while unresolved.size:
            if first_parts is not None:
                parts = first_parts
                first_parts = None
            else:
                parts = self._map_shards(
                    "view_heaviest_cells",
                    (*view_args, float(width), shifts[unresolved], top_k),
                )
            recount_slots = []
            candidates = []
            bounds = []
            for slot, attempt in enumerate(unresolved):
                caps = [int(part[slot][2]) for part in parts]
                bound = sum(caps)
                labels = np.concatenate([part[slot][0] for part in parts],
                                        axis=0)
                if bound == 0:
                    # No shard truncated: the per-shard counts are complete
                    # and the summed merge is already exact.
                    counts = np.concatenate([part[slot][1] for part in parts])
                    _, inverse = np.unique(labels, axis=0,
                                           return_inverse=True)
                    merged = np.bincount(np.reshape(inverse, -1),
                                         weights=counts)
                    maxima[attempt] = int(merged.max())
                    continue
                recount_slots.append(slot)
                candidates.append(np.unique(labels, axis=0))
                bounds.append(bound)
            still = []
            if recount_slots:
                slots = np.asarray(recount_slots)
                exact_parts = self._map_shards(
                    "view_count_labels",
                    (*view_args, float(width),
                     shifts[unresolved[slots]], candidates),
                )
                for position, slot in enumerate(recount_slots):
                    exact = np.sum([part[position] for part in exact_parts],
                                   axis=0, dtype=np.int64)
                    best = int(exact.max())
                    attempt = int(unresolved[slot])
                    if best >= bounds[position]:
                        maxima[attempt] = best
                    else:
                        still.append(attempt)
            unresolved = np.asarray(still, dtype=np.int64)
            if unresolved.size:
                top_k = (None if top_k is None or 4 * top_k >= self.num_points
                         else 4 * top_k)
        return maxima


class _ShardedView(ProjectedView):
    """Fan-out implementation of :class:`ProjectedView` for the sharded
    backend: grid hashes run shard-side (over worker processes when the pool
    is up), partial histograms merge exactly in the parent."""

    def __init__(self, backend: ShardedBackend, matrix=None,
                 offset=None) -> None:
        super().__init__(backend, matrix=matrix, offset=offset)
        # Identity views read the shared-memory block directly — no cache to
        # key, so no token.
        self._token = (next(_VIEW_TOKENS)
                       if self._matrix is not None or self._offset is not None
                       else None)

    @property
    def batch_size(self) -> int:
        """Partition-search attempts batched per request (amortises the
        per-shard fan-out)."""
        return int(getattr(self._backend, "HEAVIEST_CELL_BATCH", 8))

    def _view_args(self) -> tuple:
        return (self._token, self._matrix, self._offset)

    def heaviest_cell_counts(self, width: float, shifts) -> np.ndarray:
        """Heaviest-box occupancy per attempt, via the *bounded* merge (see
        :meth:`ShardedBackend._heaviest_cell_merge` — the shared
        top-``k``-with-exact-recount loop, whose returned maxima are bitwise
        the full merge's)."""
        shifts = self._check_shifts(shifts, batched=True)
        top_k = getattr(self._backend, "HEAVIEST_CELL_TOP_K", None)
        top_k = int(top_k) if top_k else None
        return self._backend._heaviest_cell_merge(
            self._view_args(), float(width), shifts, top_k
        )

    def label_array(self, width: float, shifts) -> np.ndarray:
        shifts = self._check_shifts(shifts, batched=False)
        parts = self._backend._map_shards(
            "view_label_array", (*self._view_args(), float(width), shifts)
        )
        return np.concatenate(parts, axis=0)

    def cell_histogram(self, width: float, shifts,
                       return_inverse: bool = False):
        shifts = self._check_shifts(shifts, batched=False)
        parts = self._backend._map_shards(
            "view_cell_histogram",
            (*self._view_args(), float(width), shifts, bool(return_inverse)),
        )
        return _merge_cell_histogram(parts, self._backend.shard_bounds,
                                     self.num_points, bool(return_inverse))

    def label_mask(self, width: float, shifts, label) -> np.ndarray:
        label = np.asarray(label, dtype=np.int64).reshape(-1)
        if label.shape[0] != self.image_dimension:
            raise ValueError(
                f"label has {label.shape[0]} axes, expected "
                f"{self.image_dimension}"
            )
        shifts = self._check_shifts(shifts, batched=False)
        parts = self._backend._map_shards(
            "view_label_mask",
            (*self._view_args(), float(width), shifts, label),
        )
        return np.concatenate(parts)

    def axis_interval_labels(self, width: float, offset: float = 0.0,
                             rows=None) -> np.ndarray:
        if rows is None:
            parts = self._backend._map_shards(
                "view_axis_labels",
                (*self._view_args(), float(width), float(offset), None),
            )
            return np.concatenate(parts, axis=0)
        rows = self._check_rows(rows)
        # Ship each shard only its own (shard-local) slice of the subset;
        # results come back shard-major, i.e. in ascending-row order, so a
        # stable argsort restores the caller's row order afterwards.
        order, slices = _split_rows_by_shard(rows,
                                             self._backend.shard_bounds)
        per_shard = [(*self._view_args(), float(width), float(offset), piece)
                     for piece in slices]
        parts = self._backend._map_shards_per("view_axis_labels", per_shard)
        stacked = np.concatenate(parts, axis=0)
        result = np.empty_like(stacked)
        result[order] = stacked
        return result

    # ------------------------------------------------------------------ #
    # Masked aggregation (fan-out partials, exact merges)
    # ------------------------------------------------------------------ #
    def _selection_specs(self, selection) -> List[tuple]:
        """Per-shard wire specs of a masked-query selection (see
        :meth:`ShardedBackend._selection_specs` — shared with the fused plan
        compiler, so a selection travels identically alone or in a plan)."""
        return self._backend._selection_specs(selection)

    def _masked_parts(self, method: str, selection, *args) -> list:
        specs = self._selection_specs(selection)
        return self._backend._map_shards_per(
            method,
            [(*self._view_args(), spec, *args) for spec in specs],
        )

    def masked_count(self, selection) -> int:
        specs = self._selection_specs(selection)
        parts = self._backend._map_shards_per(
            "view_masked_count", [(spec,) for spec in specs]
        )
        return int(sum(parts))

    def masked_sum(self, selection) -> np.ndarray:
        parts = self._masked_parts("view_masked_sum", selection)
        return _merge_masked_sum(parts, self.image_dimension)

    def masked_minmax(self, selection) -> np.ndarray:
        parts = self._masked_parts("view_masked_minmax", selection)
        return _merge_minmax(parts, self.image_dimension)

    def masked_clipped_partial(self, selection, center,
                               clip_radius: float) -> Tuple[int, List[int]]:
        center = np.asarray(center, dtype=float).reshape(-1)
        if center.shape[0] != self.image_dimension:
            raise ValueError(
                f"center has dimension {center.shape[0]}, expected "
                f"{self.image_dimension}"
            )
        parts = self._masked_parts("view_masked_clipped", selection, center,
                                   float(clip_radius))
        count = int(sum(part[0] for part in parts))
        return count, merge_column_partials(self.image_dimension,
                                            [part[1] for part in parts])

    def masked_axis_histograms(self, selection, width: float,
                               offset: float = 0.0) -> list:
        """Per-axis histograms with the global first-occurrence cell order
        restored from the shards' local first positions (see
        :func:`_merge_axis_histograms`, shared with the fused plan path)."""
        parts = self._masked_parts("view_masked_axis_hists", selection,
                                   float(width), float(offset))
        return _merge_axis_histograms(parts, self.image_dimension)


__all__ = ["ShardedBackend"]
