"""A pure-python (numpy-vectorised) KD-tree for batched radius counting.

Used by :class:`repro.neighbors.tree.TreeBackend` when scipy is unavailable.
The tree answers one query shape — "how many dataset points lie within
distance ``r`` of each of these centres" — which is the only operation the
backend layer needs a spatial index for.  Queries are vectorised over the
*centres*: the traversal keeps, per node, the subset of centres whose ball can
still intersect the node's bounding box, prunes with the box's min-distance,
and short-circuits whole subtrees whose box lies entirely inside a centre's
ball (the ``count_neighbors``-style trick that makes radius counting cheap for
large radii).  All comparisons happen in squared space (``d2 <= r*r``),
matching scipy's convention and the rest of :mod:`repro.neighbors`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.neighbors._distance import squared_distance_block


class _Node:
    __slots__ = ("lower", "upper", "size", "indices", "left", "right")

    def __init__(self, lower: np.ndarray, upper: np.ndarray, size: int,
                 indices: Optional[np.ndarray], left: "Optional[_Node]",
                 right: "Optional[_Node]") -> None:
        self.lower = lower
        self.upper = upper
        self.size = size
        self.indices = indices
        self.left = left
        self.right = right

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class PyKDTree:
    """Median-split KD-tree over an ``(n, d)`` point set."""

    def __init__(self, points: np.ndarray, leaf_size: int = 32) -> None:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be at least 1, got {leaf_size}")
        self._points = points
        self._leaf_size = int(leaf_size)
        self._root = self._build(np.arange(points.shape[0], dtype=np.int64))

    def _build(self, indices: np.ndarray) -> _Node:
        subset = self._points[indices]
        lower = subset.min(axis=0)
        upper = subset.max(axis=0)
        if indices.shape[0] <= self._leaf_size:
            return _Node(lower, upper, indices.shape[0], indices, None, None)
        axis = int(np.argmax(upper - lower))
        if upper[axis] <= lower[axis]:
            # All remaining points coincide; splitting cannot make progress.
            return _Node(lower, upper, indices.shape[0], indices, None, None)
        half = indices.shape[0] // 2
        order = np.argpartition(subset[:, axis], half)
        left = self._build(indices[order[:half]])
        right = self._build(indices[order[half:]])
        return _Node(lower, upper, indices.shape[0], None, left, right)

    def count_within(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """The number of dataset points within ``radius`` of each centre."""
        centers = np.asarray(centers, dtype=float)
        num_queries = centers.shape[0]
        counts = np.zeros(num_queries, dtype=np.int64)
        if radius < 0:
            return counts
        threshold = radius * radius
        stack = [(self._root, np.arange(num_queries, dtype=np.int64))]
        while stack:
            node, active = stack.pop()
            subset = centers[active]
            outside = np.maximum(node.lower - subset, 0.0)
            outside = np.maximum(outside, subset - node.upper)
            min_squared = np.einsum("qd,qd->q", outside, outside)
            reachable = min_squared <= threshold
            active = active[reachable]
            if active.shape[0] == 0:
                continue
            subset = subset[reachable]
            farthest = np.maximum(np.abs(subset - node.lower),
                                  np.abs(node.upper - subset))
            max_squared = np.einsum("qd,qd->q", farthest, farthest)
            engulfed = max_squared <= threshold
            counts[active[engulfed]] += node.size
            active = active[~engulfed]
            if active.shape[0] == 0:
                continue
            if node.is_leaf:
                squared = squared_distance_block(centers[active],
                                                 self._points[node.indices])
                counts[active] += np.count_nonzero(squared <= threshold, axis=1)
            else:
                stack.append((node.left, active))
                stack.append((node.right, active))
        return counts


__all__ = ["PyKDTree"]
