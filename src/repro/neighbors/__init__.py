"""Pluggable distance-query backends (the ``NeighborBackend`` layer).

The 1-cluster pipeline only ever asks a few questions about the geometry of
its input — per-point ball counts, ball counts around arbitrary centres
(single-radius or batched over a radius grid), and each point's ``k``
smallest distances.  This package hides those questions behind the
:class:`~repro.neighbors.base.NeighborBackend` protocol with four
interchangeable strategies:

* :class:`~repro.neighbors.dense.DenseBackend` — the full row-sorted
  ``(n, n)`` distance matrix; fastest for small ``n``, ``O(n^2)`` memory.
* :class:`~repro.neighbors.chunked.ChunkedBackend` — blocked brute force with
  a fixed memory budget; any ``n``, ``O(n * block)`` memory.
* :class:`~repro.neighbors.tree.TreeBackend` — scipy ``cKDTree`` (pure-python
  KD-tree fallback) radius counting; the right choice for large ``n`` in low
  dimension.
* :class:`~repro.neighbors.sharded.ShardedBackend` — the dataset sharded
  across worker processes over a shared-memory block, each shard answered by
  one of the strategies above, per-shard results merged exactly; the right
  choice for very large ``n`` on multi-core machines.

Beyond distance queries, every backend also answers *grid-hash* and *masked
aggregate* queries over an arbitrary linear image of its points through
:meth:`~repro.neighbors.base.NeighborBackend.view` (a
:class:`~repro.neighbors.base.ProjectedView`): heaviest-cell counts, box
histograms, membership masks, per-axis interval labels, and — over a
selection (a :class:`~repro.neighbors.base.BoxSelection` label predicate, a
boolean mask, or a row multiset) — counts, exact fixed-point sums, per-axis
extremes, first-occurrence-ordered interval histograms, and NoisyAVG's
clipped ``(count, sum)`` statistics.  These are the questions GoodCenter
asks about its JL-projected and rotated points (Algorithm 2, steps 3-11).
The sharded strategy applies the projection *and* the aggregation
shard-side, so the parent never materialises the image, the selected set,
or any membership array.

Any bundle of these read-only primitives can travel as a
:class:`~repro.neighbors.base.QueryPlan`: ``backend.execute(plan)`` runs
the whole bundle in one worker round trip per shard (serial backends
evaluate it as a loop, so parity is by construction), with per-plan
shard-side memoisation of selection membership and projected images, and
``backend.submit(plan)`` dispatches it asynchronously — shard-order merges
keep every value bitwise deterministic no matter how many plans overlap.

All strategies return *identical* integer counts, bit-identical ``L(r, S)``
values, and identical view grid hashes (see
:mod:`repro.neighbors._distance` and
:func:`repro.geometry.jl.project_rows` for why), so swapping backends
changes performance only — callers pick one per workload via
:func:`auto_backend` / the ``backend=`` argument threaded through
``one_cluster``/``good_radius``/``good_center`` and the clustering
applications.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.neighbors.base import (
    STREAMING_MIN_POINTS,
    STREAMING_TARGET_FRACTION,
    BackendUnavailableError,
    BoxSelection,
    ClippedSum,
    NeighborBackend,
    PlanFuture,
    PlanQuery,
    ProjectedView,
    QueryPlan,
    first_occurrence_cells,
)
from repro.neighbors.chunked import ChunkedBackend
from repro.neighbors.dense import DenseBackend
from repro.neighbors.sharded import ShardedBackend, _available_cpus
from repro.neighbors.tree import HAVE_SCIPY_TREE, TreeBackend
from repro.utils.validation import check_points

#: Strategy registry, keyed by the names accepted in configs and CLIs.
#: Every entry here is constructible from ``points`` alone; the
#: ``"distributed"`` strategy (:mod:`repro.neighbors.distributed`) is *not*
#: listed because it additionally needs live node servers — it is reachable
#: through :func:`resolve_backend` (and configs) by name, with the node
#: addresses supplied via ``options={"nodes": [...]}``.
BACKENDS: Dict[str, Callable[..., NeighborBackend]] = {
    DenseBackend.name: DenseBackend,
    ChunkedBackend.name: ChunkedBackend,
    TreeBackend.name: TreeBackend,
    ShardedBackend.name: ShardedBackend,
}

#: The name :func:`resolve_backend` accepts for the coordinator-side
#: distributed strategy (imported lazily: most sessions never pay for the
#: transport module).
DISTRIBUTED_BACKEND_NAME = "distributed"

#: Everything ``backend=`` arguments accept: a strategy name (or "auto"),
#: a backend class, an already-built instance, or None (= "auto").
BackendLike = Union[None, str, NeighborBackend, type]

#: Largest n for which the dense O(n^2) matrix is the default choice.
DENSE_MAX_POINTS = 2048

#: Largest dimension for which KD-trees still beat blocked brute force.
TREE_MAX_DIMENSION = 8

#: Smallest n for which the multi-process sharded backend is the default
#: choice (given more than one CPU): below it, process start-up and
#: per-query fan-out overheads beat the parallel speedup.
SHARDED_MIN_POINTS = 100_000


def auto_backend(num_points: int, dimension: int) -> str:
    """Pick a backend name for an ``(n, d)`` workload.

    Heuristics, in order:

    * ``n <= DENSE_MAX_POINTS`` — the dense matrix fits comfortably (32 MiB)
      and amortises best over the thousands of radii GoodRadius probes.
    * ``n >= SHARDED_MIN_POINTS`` with more than one usable CPU — shard the
      points across worker processes; each shard is answered by its own
      auto-chosen single-process backend, so this dominates whichever
      strategy would otherwise win.
    * ``d <= TREE_MAX_DIMENSION`` (scipy available) — KD-trees; higher
      dimensions degrade tree pruning to brute force with extra overhead.
    * otherwise — blocked brute force, the safe choice at any size.

    The ``"distributed"`` strategy is never auto-selected: it requires
    operator-provisioned node servers (addresses the size heuristics cannot
    invent), so it is only reachable by explicit name.

    Parameters
    ----------
    num_points:
        The dataset size ``n``.
    dimension:
        The ambient dimension ``d``.

    Returns
    -------
    str
        A :data:`BACKENDS` registry name.
    """
    if num_points <= DENSE_MAX_POINTS:
        return DenseBackend.name
    if num_points >= SHARDED_MIN_POINTS and _available_cpus() > 1:
        return ShardedBackend.name
    if dimension <= TREE_MAX_DIMENSION and HAVE_SCIPY_TREE:
        return TreeBackend.name
    return ChunkedBackend.name


def resolve_backend(points, backend: BackendLike = None,
                    options: Optional[dict] = None) -> NeighborBackend:
    """Turn a ``backend=`` argument into a ready :class:`NeighborBackend`.

    Parameters
    ----------
    points:
        The ``(n, d)`` dataset the backend must index.
    backend:
        ``None`` / ``"auto"`` (size-based selection via :func:`auto_backend`),
        a registry name (``"dense"``, ``"chunked"``, ``"tree"``,
        ``"sharded"``), ``"distributed"`` (which additionally requires
        ``options={"nodes": [...]}``), a backend class, or an existing
        instance (which must have been built over the same dataset).
    options:
        Optional constructor keyword arguments applied when a backend is
        *built* here (name or class), e.g. ``{"num_workers": 4}`` for the
        sharded backend.  Rejected when ``backend`` is already an instance.

    Returns
    -------
    NeighborBackend
    """
    points = check_points(points)
    if backend is None:
        backend = "auto"
    if isinstance(backend, NeighborBackend):
        if options:
            raise ValueError(
                "backend options cannot be applied to an already-built "
                "instance; pass a backend name or class instead"
            )
        if backend.points.shape != points.shape or not (
            backend.points is points or np.array_equal(backend.points, points)
        ):
            raise ValueError(
                "the supplied backend instance was built over a different "
                "dataset; pass a backend name or class instead so each call "
                "indexes its own points"
            )
        return backend
    if isinstance(backend, type) and issubclass(backend, NeighborBackend):
        return backend(points, **(options or {}))
    if isinstance(backend, str):
        name = backend.lower()
        if name == "auto":
            name = auto_backend(points.shape[0], points.shape[1])
        if name == DISTRIBUTED_BACKEND_NAME:
            if not (options or {}).get("nodes"):
                raise ValueError(
                    "the distributed backend needs node servers; pass "
                    "options={'nodes': ['host:port', ...]} (one "
                    "`python -m repro.neighbors.serve` per entry)"
                )
            from repro.neighbors.distributed import DistributedBackend

            return DistributedBackend(points, **(options or {}))
        if name not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected 'auto', "
                f"'{DISTRIBUTED_BACKEND_NAME}', or one of {sorted(BACKENDS)}"
            )
        return BACKENDS[name](points, **(options or {}))
    raise TypeError(
        f"backend must be None, a name, a NeighborBackend class or instance; "
        f"got {type(backend).__name__}"
    )


__all__ = [
    "BACKENDS",
    "BackendLike",
    "BackendUnavailableError",
    "DENSE_MAX_POINTS",
    "DISTRIBUTED_BACKEND_NAME",
    "SHARDED_MIN_POINTS",
    "STREAMING_MIN_POINTS",
    "STREAMING_TARGET_FRACTION",
    "TREE_MAX_DIMENSION",
    "HAVE_SCIPY_TREE",
    "BoxSelection",
    "ClippedSum",
    "NeighborBackend",
    "PlanFuture",
    "PlanQuery",
    "ProjectedView",
    "QueryPlan",
    "first_occurrence_cells",
    "DenseBackend",
    "ChunkedBackend",
    "TreeBackend",
    "ShardedBackend",
    "auto_backend",
    "resolve_backend",
]
