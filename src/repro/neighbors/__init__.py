"""Pluggable distance-query backends (the ``NeighborBackend`` layer).

The 1-cluster pipeline only ever asks three questions about the geometry of
its input — per-point ball counts, ball counts around arbitrary centres, and
each point's ``k`` smallest distances.  This package hides those questions
behind the :class:`~repro.neighbors.base.NeighborBackend` protocol with three
interchangeable strategies:

* :class:`~repro.neighbors.dense.DenseBackend` — the full row-sorted
  ``(n, n)`` distance matrix; fastest for small ``n``, ``O(n^2)`` memory.
* :class:`~repro.neighbors.chunked.ChunkedBackend` — blocked brute force with
  a fixed memory budget; any ``n``, ``O(n * block)`` memory.
* :class:`~repro.neighbors.tree.TreeBackend` — scipy ``cKDTree`` (pure-python
  KD-tree fallback) radius counting; the right choice for large ``n`` in low
  dimension.

All strategies return *identical* integer counts and bit-identical ``L(r, S)``
values (see :mod:`repro.neighbors._distance` for why), so swapping backends
changes performance only — callers pick one per workload via
:func:`auto_backend` / the ``backend=`` argument threaded through
``one_cluster``/``good_radius`` and the clustering applications.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from repro.neighbors.base import NeighborBackend
from repro.neighbors.chunked import ChunkedBackend
from repro.neighbors.dense import DenseBackend
from repro.neighbors.tree import HAVE_SCIPY_TREE, TreeBackend
from repro.utils.validation import check_points

#: Strategy registry, keyed by the names accepted in configs and CLIs.
BACKENDS: Dict[str, Callable[..., NeighborBackend]] = {
    DenseBackend.name: DenseBackend,
    ChunkedBackend.name: ChunkedBackend,
    TreeBackend.name: TreeBackend,
}

#: Everything ``backend=`` arguments accept: a strategy name (or "auto"),
#: a backend class, an already-built instance, or None (= "auto").
BackendLike = Union[None, str, NeighborBackend, type]

#: Largest n for which the dense O(n^2) matrix is the default choice.
DENSE_MAX_POINTS = 2048

#: Largest dimension for which KD-trees still beat blocked brute force.
TREE_MAX_DIMENSION = 8


def auto_backend(num_points: int, dimension: int) -> str:
    """Pick a backend name for an ``(n, d)`` workload.

    Heuristics: below ``DENSE_MAX_POINTS`` the dense matrix fits comfortably
    (32 MiB) and amortises best over the thousands of radii GoodRadius
    probes; beyond that, KD-trees win while the dimension is moderate
    (``d <= TREE_MAX_DIMENSION`` — higher dimensions degrade tree pruning to
    brute force with extra overhead), and blocked brute force is the safe
    choice otherwise.
    """
    if num_points <= DENSE_MAX_POINTS:
        return DenseBackend.name
    if dimension <= TREE_MAX_DIMENSION and HAVE_SCIPY_TREE:
        return TreeBackend.name
    return ChunkedBackend.name


def resolve_backend(points, backend: BackendLike = None) -> NeighborBackend:
    """Turn a ``backend=`` argument into a ready :class:`NeighborBackend`.

    Accepts ``None`` / ``"auto"`` (size-based selection via
    :func:`auto_backend`), a registry name (``"dense"``, ``"chunked"``,
    ``"tree"``), a backend class, or an existing instance (which must have
    been built over the same dataset).
    """
    points = check_points(points)
    if backend is None:
        backend = "auto"
    if isinstance(backend, NeighborBackend):
        if backend.points.shape != points.shape or not (
            backend.points is points or np.array_equal(backend.points, points)
        ):
            raise ValueError(
                "the supplied backend instance was built over a different "
                "dataset; pass a backend name or class instead so each call "
                "indexes its own points"
            )
        return backend
    if isinstance(backend, type) and issubclass(backend, NeighborBackend):
        return backend(points)
    if isinstance(backend, str):
        name = backend.lower()
        if name == "auto":
            name = auto_backend(points.shape[0], points.shape[1])
        if name not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected 'auto' or one of "
                f"{sorted(BACKENDS)}"
            )
        return BACKENDS[name](points)
    raise TypeError(
        f"backend must be None, a name, a NeighborBackend class or instance; "
        f"got {type(backend).__name__}"
    )


__all__ = [
    "BACKENDS",
    "BackendLike",
    "DENSE_MAX_POINTS",
    "TREE_MAX_DIMENSION",
    "HAVE_SCIPY_TREE",
    "NeighborBackend",
    "DenseBackend",
    "ChunkedBackend",
    "TreeBackend",
    "auto_backend",
    "resolve_backend",
]
