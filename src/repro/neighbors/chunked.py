"""Chunked backend: blocked distance computation with bounded memory.

Never materialises more than one ``(block, n)`` slab of the distance matrix;
the block size is derived from a memory budget (default 64 MiB), so the
backend handles any ``n`` the caller has time for — ``O(n * block)`` scratch
instead of the dense backend's ``O(n^2)``.  Capped-count queries additionally
keep only each point's ``k`` smallest distances (``O(n * k)``), which is all
the score ``L(r, S)`` ever looks at.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors._distance import (
    DEFAULT_MEMORY_BUDGET,
    blocked_radius_counts,
    blocked_radius_counts_many,
    row_block_size,
    truncated_squared_bruteforce,
)
from repro.neighbors.base import NeighborBackend
from repro.utils.validation import check_integer, check_points


class ChunkedBackend(NeighborBackend):
    """Blocked brute-force distance queries with a fixed memory budget."""

    name = "chunked"

    def __init__(self, points, block_size: int = None,
                 memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET) -> None:
        super().__init__(points)
        if block_size is None:
            block_size = row_block_size(self.num_points, self.dimension,
                                        memory_budget_bytes)
        self._block = check_integer(block_size, "block_size", minimum=1)

    @property
    def block_size(self) -> int:
        """How many query rows each blocked pass processes at once."""
        return self._block

    def query_radius_counts(self, centers, radius: float) -> np.ndarray:
        """``B_r(c, S)`` per centre, one blocked brute-force pass.

        Parameters
        ----------
        centers:
            ``(q, d)`` query centres.
        radius:
            The ball radius; negative radii give all-zero counts.

        Returns
        -------
        numpy.ndarray
            ``(q,)`` ``int64`` counts.
        """
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        if radius < 0:
            return np.zeros(centers.shape[0], dtype=np.int64)
        return blocked_radius_counts(centers, self._points, radius, self._block)

    def count_within_many(self, centers, radii) -> np.ndarray:
        """Batched counts with the distance slabs computed once for all radii
        (``m`` radii cost one blocked pass, not ``m``); see
        :meth:`NeighborBackend.count_within_many`."""
        centers = check_points(centers, dimension=self.dimension,
                               name="centers")
        radii = np.atleast_1d(np.asarray(radii, dtype=float))
        if radii.size == 0:
            return np.empty((0, centers.shape[0]), dtype=np.int64)
        return blocked_radius_counts_many(centers, self._points, radii,
                                          self._block)

    def _compute_truncated_squared(self, k: int) -> np.ndarray:
        return truncated_squared_bruteforce(self._points, k, self._block)


__all__ = ["ChunkedBackend"]
