"""Distributed backend: shards answered by remote node servers over TCP.

:class:`DistributedBackend` is the coordinator side of a master/node split
(the shape of clusterz's ``DistributedKZCenter`` driving one
``DistQueryOracle`` per machine): it subclasses
:class:`~repro.neighbors.sharded.ShardedBackend` and keeps *everything*
above the transport — the plan compiler, the selection/view wire specs,
the deterministic shard-order merge folds, the bounded heaviest-cell
merge — swapping only the dispatch layer: instead of submitting
``(method, shard, args)`` tasks to local worker processes, it groups them
by owning node (``shard % num_nodes`` while every node lives; see below
for failover) and ships each node's batch as one ``shard_tasks`` RPC over
a pipelined socket (the :mod:`repro.neighbors.rpc` framing).  Each node
hosts a node-local ``ShardedBackend`` over the *same* dataset with the
*same* global shard bounds, so a task for shard ``s`` computes bitwise
the same partial no matter which machine answers it — and because
partials are folded in shard order by the shared ``_merge_*`` code, every
released value is bitwise identical whether shards live in threads,
processes, or sockets (the loopback parity suite pins exactly this
across 1/2/3-node topologies).

Dataset placement: ``init`` ships the full ``(n, d)`` array to every node
once, at construction.  That is deliberate — the truncated statistic and
the streaming histograms query *all* points against one shard's slice, so
the node needs the full dataset anyway; what is sharded is the expensive
state (per-shard indexes, cached view images, memoised selections) and
the work.  Nodes only ever receive tasks for the shards assigned to them,
so with ``W`` workers per node each machine builds indexes for its
``num_shards / num_nodes`` shards and nothing else.

Failure semantics — failover (``retries > 0``, the default): full
replication means *any* node can recompute *any* shard bit-for-bit, so
node death is purely a dispatch-layer concern.  When a node's transport
fails (dropped connection, timeout, dead process), the coordinator
re-dials it — bounded attempts with exponential backoff, replaying
``init`` on the fresh connection because the server builds per-connection
state — and, if the node stays dead, permanently re-assigns its shards to
the next live node in ring order and replays *only the failed node's task
batch* on the adopters.  Tasks whose replies already arrived are never
re-run (each node's batch reply is one atomic frame, so a batch either
fully arrived or not at all), and replayed tasks produce bitwise the same
partials on any node, so the shard-order merges are exact: a release with
a node killed mid-run is byte-identical to the healthy-topology release.
``pool_stats()`` counts ``redials``, ``adopted_shards``, and
``replayed_tasks``.

With ``retries=0`` failover is off and the original fail-fast contract
holds bit-for-bit: any transport failure raises
:class:`~repro.neighbors.base.BackendUnavailableError`, the affected
connection stays poisoned, and **no partial merge is ever returned** (a
release computed from a subset of shards would be silently wrong).  Even
with failover on, exhaustion — every node dead, or a collective burning
through its failure budget — raises the same clean error with no partial
merge.
"""

from __future__ import annotations

import time
from typing import Callable, ClassVar, List, Optional, Sequence, Tuple

from repro import kernels as _kernels
from repro.neighbors.base import (
    BackendUnavailableError,
    PlanFuture,
    QueryPlan,
)
from repro.neighbors.rpc import NodeClient, PendingReply, parse_node_address
from repro.neighbors.sharded import ShardedBackend, _CompiledPlan

__all__ = ["DistributedBackend"]


class _DistributedPlanFuture(PlanFuture):
    """An in-flight plan: one pipelined ``shard_tasks`` RPC per node.

    ``submit`` already wrote every node's batch to its socket, so the plan
    is genuinely in flight node-side; :meth:`result` drains the replies
    through the backend's recovery path — a node dying mid-plan is
    re-dialed or its shards adopted and only its batch replayed, exactly
    like a synchronous collective — then reassembles the per-shard
    partials **in shard order** and folds them through the shared merge
    code.  An unrecoverable failure surfaces as
    :class:`BackendUnavailableError` before any merging happens — there is
    no partial result to leak.
    """

    def __init__(self, backend: "DistributedBackend", compiled: _CompiledPlan,
                 tasks: list, node_batches: list,
                 guard: Callable[[BaseException], None]) -> None:
        self._backend = backend
        self._compiled = compiled
        #: ``("execute_plan", shard, args)`` for every shard, in shard
        #: order — task index == shard index, which is what lets
        #: ``_drain_batches``'s task-order results double as shard parts.
        self._tasks = tasks
        #: ``[(node, [task_index, ...], PendingReply), ...]``
        self._node_batches = node_batches
        self._guard = guard
        self._resolved: Optional[list] = None

    def done(self) -> bool:
        """Whether every node's reply has arrived (merging still happens on
        the first :meth:`result` call)."""
        return (self._resolved is not None
                or all(pending.done()
                       for _, _, pending in self._node_batches))

    def result(self) -> list:
        """Block for the node replies (recovering failed nodes), merge in
        shard order, and return the per-query results (memoised across
        calls)."""
        if self._resolved is None:
            shard_parts = self._backend._drain_batches(
                self._tasks, self._node_batches, self._guard
            )
            self._resolved = self._backend._merge_plan(self._compiled,
                                                       shard_parts)
            self._node_batches = []
            self._tasks = []
        return self._resolved


class DistributedBackend(ShardedBackend):
    """Shards answered by remote node servers; merges exactly, like local.

    Parameters
    ----------
    points:
        ``(n, d)`` dataset.  Shipped to every node once at construction
        (see the module docstring for why full replication is the right
        trade here).
    nodes:
        The node servers, as ``"host:port"`` / ``"[ipv6]:port"`` strings
        or ``(host, port)`` pairs — one ``python -m repro.neighbors.serve``
        per entry.
    num_shards:
        Global shard count, identical on every node.  Defaults to
        ``num_nodes * max(1, node_workers)`` so each node's worker slots
        all receive work.
    node_workers:
        Worker processes each node's local pool starts (``0`` = the node
        answers serially in its connection thread; a ``--workers`` flag on
        the server overrides this).  Default 0.
    inner_backend:
        Per-shard strategy, as for :class:`ShardedBackend`.
    timeout:
        Per-call read timeout in seconds (``None`` = wait forever), as an
        overall deadline across a call's pipelined replies.  When a node
        exceeds it, the call fails over (or raises with ``retries=0``).
    connect_timeout:
        Socket connect timeout for the initial dial and every re-dial.
    retries:
        Re-dial attempts per node failure before the node is declared dead
        and its shards are adopted by the surviving nodes.  ``0`` disables
        failover entirely: the first transport failure raises
        :class:`BackendUnavailableError` (the pre-failover fail-fast
        contract, preserved bit-for-bit).  Default 2.
    retry_backoff:
        Base sleep before re-dial attempt ``i`` (``retry_backoff * 2**i``
        seconds, exponential).  Default 0.1.
    """

    name = "distributed"

    #: Plans are pipelined onto every node's socket at submit time, so
    #: speculative plans genuinely overlap the coordinator's other work.
    supports_speculation: ClassVar[bool] = True

    #: Budget for the pre-adoption health probe of a surviving node.
    PING_TIMEOUT: ClassVar[float] = 5.0

    def __init__(self, points, nodes: Sequence, num_shards: Optional[int] = None,
                 node_workers: int = 0, inner_backend: str = "auto",
                 timeout: Optional[float] = None,
                 connect_timeout: Optional[float] = 10.0,
                 retries: int = 2, retry_backoff: float = 0.1) -> None:
        addresses = [parse_node_address(node) for node in nodes]
        if not addresses:
            raise ValueError("DistributedBackend requires at least one node")
        retries = int(retries)
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        retry_backoff = float(retry_backoff)
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be non-negative, got {retry_backoff}"
            )
        if num_shards is None:
            num_shards = len(addresses) * max(1, int(node_workers))
        # num_workers=0: the coordinator never starts a local pool — the
        # serial _ShardSet stays as the plan compiler's validation context
        # only, every actual task goes over the wire.
        super().__init__(points, num_shards=num_shards, num_workers=0,
                         inner_backend=inner_backend)
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._node_workers = max(1, int(node_workers))
        self._closed = False
        self._stats.update({"redials": 0, "adopted_shards": 0,
                            "replayed_tasks": 0})
        self._clients: List[NodeClient] = []
        self._live: List[bool] = []
        try:
            for host, port in addresses:
                self._clients.append(
                    NodeClient(host, port, connect_timeout=connect_timeout,
                               timeout=timeout)
                )
            self._live = [True] * len(self._clients)
            self._init_request = ("init", self._points, self.num_shards,
                                  int(node_workers), self._inner_backend)
            # Pipelined: every node deserialises the dataset and builds its
            # backend concurrently, then the replies are drained in order.
            pendings = [client.send(self._init_request)
                        for client in self._clients]
            for node, pending in enumerate(pendings):
                self._check_init_reply(node, pending.wait())
        except BaseException:
            for client in self._clients:
                client.close()
            raise

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """How many node servers this backend was built over (dead ones
        included — the slot stays, its shards move)."""
        return len(self._clients)

    @property
    def node_addresses(self) -> List[str]:
        """The ``host:port`` of every node, in shard-assignment order."""
        return [f"{client.address[0]}:{client.address[1]}"
                for client in self._clients]

    @property
    def live_nodes(self) -> List[int]:
        """Indices of the nodes still serving shards."""
        return [node for node, live in enumerate(self._live) if live]

    @property
    def parallel(self) -> bool:
        """Remote dispatch is always 'parallel' in the sense that matters
        here: tasks leave the coordinator process."""
        return True

    def _node_for(self, shard: int) -> int:
        """The node currently owning ``shard``.

        While every node lives this is the fixed ``shard % num_nodes``
        assignment (like the local shard→worker-slot affinity: each
        shard's index and caches are built on exactly one machine).  When
        the home node is dead, the shard is adopted by the **next live
        node in ring order** — a deterministic rule, so the same survivor
        set always yields the same shard map (and therefore the same
        batching, the same replies, and bitwise the same merges).
        """
        count = len(self._clients)
        home = shard % count
        for step in range(count):
            node = (home + step) % count
            if self._live[node]:
                return node
        raise BackendUnavailableError(
            "every node of the distributed backend is dead"
        )

    def shard_owners(self) -> List[int]:
        """The current shard → node map (diagnostics; deterministic in the
        survivor set)."""
        return [self._node_for(shard) for shard in range(self.num_shards)]

    def _check_init_reply(self, node: int, reply) -> dict:
        """Unwrap + validate one node's ``init`` reply."""
        value = self._node_value(node, reply)
        if int(value["num_shards"]) != self.num_shards:
            raise BackendUnavailableError(
                f"node {self.node_addresses[node]} built "
                f"{value['num_shards']} shards, expected {self.num_shards}"
            )
        return value

    def _node_value(self, node: int, reply) -> object:
        """Unwrap one node reply, translating error replies."""
        if not isinstance(reply, dict) or "status" not in reply:
            raise BackendUnavailableError(
                f"node {self.node_addresses[node]} sent a malformed reply"
            )
        if reply["status"] != "ok":
            raise RuntimeError(
                f"node {self.node_addresses[node]} failed: "
                f"{reply.get('error')}\n{reply.get('traceback', '')}"
            )
        return reply["value"]

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #
    def _recover_or_adopt(self, node: int, error: BaseException) -> None:
        """Bring a failed node back, or hand its shards to the survivors.

        Re-dials the node up to ``retries`` times (exponential backoff),
        replaying ``init`` on each fresh connection since the server keeps
        per-connection state.  If every attempt fails, the node is
        declared dead: its shards move to the next live node in ring order
        for the remainder of the backend's life.  Returning normally means
        the caller may re-send the failed batch to the (possibly updated)
        owners; with ``retries=0`` — or after ``close()`` — the original
        error is re-raised instead, preserving the fail-fast contract.
        """
        if self._closed or self._retries <= 0:
            raise error
        if not self._live[node]:
            return  # already adopted; the owner map has moved on
        client = self._clients[node]
        for attempt in range(self._retries):
            if self._retry_backoff > 0.0:
                time.sleep(self._retry_backoff * (2.0 ** attempt))
            try:
                client.redial(self._connect_timeout)
                self._check_init_reply(node,
                                       client.send(self._init_request).wait())
            except (BackendUnavailableError, RuntimeError, OSError):
                continue
            self._stats["redials"] += 1
            return
        self._declare_dead(node)

    def _declare_dead(self, node: int) -> None:
        """Mark a node dead and move its shards to the survivors.

        Raises :class:`BackendUnavailableError` when no live node remains
        (nothing can adopt, and a partial merge is never an option).  The
        survivors that will adopt are health-probed with a cheap ``ping``
        first — except those with replies already in flight, which prove
        their liveness when the caller drains them — so a silently-dead
        adopter is discovered now, not mid-batch.
        """
        if not self._live[node]:
            return
        adopted = sum(1 for shard in range(self.num_shards)
                      if self._node_for(shard) == node)
        self._live[node] = False
        self._clients[node].close()
        if not any(self._live):
            raise BackendUnavailableError(
                f"node {self.node_addresses[node]} is unreachable and no "
                "live node remains to adopt its shards"
            )
        self._stats["adopted_shards"] += adopted
        for other, client in enumerate(self._clients):
            if not self._live[other] or client.pending_count:
                continue
            if not client.ping(timeout=self.PING_TIMEOUT):
                self._recover_or_adopt(other, BackendUnavailableError(
                    f"node {self.node_addresses[other]} failed its "
                    "pre-adoption health probe"
                ))

    def _failure_guard(self) -> Callable[[BaseException], None]:
        """A per-collective bound on how many node failures recovery will
        absorb before giving up.

        A flapping node could otherwise redial successfully forever while
        never answering a batch; the budget —
        ``(retries + 1) * num_nodes + 1`` failures — is generous enough
        for every node to die once with full retry cycles, and small
        enough that a pathological collective still terminates with a
        clean :class:`BackendUnavailableError`.
        """
        budget = (self._retries + 1) * len(self._clients) + 1
        seen = [0]

        def guard(error: BaseException) -> None:
            seen[0] += 1
            if seen[0] > budget:
                raise BackendUnavailableError(
                    f"failover gave up after {seen[0]} node failures in one "
                    "collective operation"
                ) from error

        return guard

    # ------------------------------------------------------------------ #
    # Transport (replaces the local pool dispatch wholesale)
    # ------------------------------------------------------------------ #
    def _group_indices(self, tasks: Sequence[tuple],
                       indices: Sequence[int]) -> List[Tuple[int, list]]:
        """Group task indices by *current* owning node, nodes ascending."""
        grouped: dict = {}
        for index in indices:
            shard = tasks[index][1]
            grouped.setdefault(self._node_for(shard), []).append(index)
        return sorted(grouped.items())

    def _send_batches(self, tasks: Sequence[tuple], indices: Sequence[int],
                      guard: Callable[[BaseException], None]) -> list:
        """Write one ``shard_tasks`` RPC per owning node for ``indices``.

        Returns ``[(node, [task_index, ...], PendingReply), ...]``.  A
        failed *send* goes through recovery and re-groups only that node's
        share by the updated owner map — batches already written stay in
        flight untouched.
        """
        queue = self._group_indices(tasks, list(indices))
        batches = []
        while queue:
            node, group = queue.pop(0)
            payload = ("shard_tasks", [tasks[index] for index in group])
            try:
                batches.append((node, group,
                                self._clients[node].send(payload)))
            except BackendUnavailableError as error:
                guard(error)
                self._recover_or_adopt(node, error)
                queue = self._group_indices(tasks, group) + queue
        return batches

    def _drain_batches(self, tasks: Sequence[tuple], batches: list,
                       guard: Callable[[BaseException], None]) -> list:
        """Drain node batches into task-order results, with recovery.

        A node whose reply fails is recovered (re-dial + re-``init``) or
        its shards adopted, and **only its batch** is re-sent — results
        that already arrived are never recomputed.  That is exact because
        each node's batch reply is one atomic frame (all-or-nothing) and
        every task is a pure read whose partial is bitwise identical on
        any node, so replayed work folds into the same merge the healthy
        run would have produced.
        """
        results: list = [None] * len(tasks)
        while batches:
            retry: List[int] = []
            for node, group, pending in batches:
                try:
                    value = self._node_value(node, pending.wait())
                except BackendUnavailableError as error:
                    guard(error)
                    self._recover_or_adopt(node, error)
                    retry.extend(group)
                    continue
                if len(value) != len(group):
                    raise BackendUnavailableError(
                        f"node {self.node_addresses[node]} returned "
                        f"{len(value)} results for {len(group)} tasks"
                    )
                for index, result in zip(group, value):
                    results[index] = result
            if retry:
                retry.sort()
                self._stats["replayed_tasks"] += len(retry)
                batches = self._send_batches(tasks, retry, guard)
            else:
                batches = []
        return results

    def _dispatch_tasks(self, tasks: Sequence[tuple]) -> list:
        """One ``shard_tasks`` RPC per involved node; results in task
        order.  Requests are written to every node before any reply is
        read, so the nodes compute concurrently; failures route through
        the recovery path."""
        guard = self._failure_guard()
        batches = self._send_batches(tasks, range(len(tasks)), guard)
        return self._drain_batches(tasks, batches, guard)

    def run_shard_tasks(self, tasks: Sequence[tuple]) -> list:
        """Run a batch of ``(method, shard, args)`` sub-queries on the
        owning nodes (the remote twin of
        :meth:`ShardedBackend.run_shard_tasks`)."""
        tasks = self._normalize_tasks(tasks)
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += len(tasks)
        return self._dispatch_tasks(tasks)

    def _iter_shards(self, method: str, args: tuple, wave: int = None):
        """Yield per-shard results in shard order, one wave of shards in
        flight at a time (the wave bounds how many undrained results sit in
        coordinator memory, exactly like the local pool's version).  The
        default wave is ``num_nodes × max(1, node_workers)`` — one task per
        node-local worker slot per wave, so a node's whole pool is busy
        during a streaming walk, not just one worker."""
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += self.num_shards
        if wave is None:
            wave = len(self._clients) * self._node_workers
        wave = max(len(self._clients), min(int(wave), self.num_shards))
        for start in range(0, self.num_shards, wave):
            shards = range(start, min(start + wave, self.num_shards))
            batch = self._dispatch_tasks(
                [(method, shard, args) for shard in shards]
            )
            for result in batch:
                yield result

    def submit(self, plan: QueryPlan) -> PlanFuture:
        """Dispatch a plan without waiting: the compiled bundle is written
        to every node's socket immediately (the PR 5 wire form *is* the RPC
        payload), and the returned future merges the per-shard partials in
        shard order on first :meth:`~PlanFuture.result` — recovering dead
        nodes on the way, so an in-flight plan survives a mid-plan death."""
        compiled = self._compile_plan(plan)
        self._stats["plans"] += 1
        if not compiled.bundle:
            # Coordinator-only plan: nothing to fan out.
            return PlanFuture(self._merge_plan(compiled, []))
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += self.num_shards
        tasks = [("execute_plan", shard, compiled.shard_args(shard))
                 for shard in range(self.num_shards)]
        guard = self._failure_guard()
        batches = self._send_batches(tasks, range(len(tasks)), guard)
        return _DistributedPlanFuture(self, compiled, tasks, batches, guard)

    # ------------------------------------------------------------------ #
    # Diagnostics / lifecycle
    # ------------------------------------------------------------------ #
    def pool_stats(self) -> dict:
        """Coordinator counters plus every node's own ``pool_stats()``.

        ``nodes`` holds one entry per node (``None`` for a dead or
        unreachable node — diagnostics deliberately neither raise nor
        trigger recovery), ``live_nodes`` how many still serve shards,
        ``redials`` / ``adopted_shards`` / ``replayed_tasks`` the failover
        counters, ``workers`` flattens the per-node worker cache stats,
        and ``stolen_tasks`` aggregates the coordinator's count with every
        reachable node's.  The per-node stats requests are pipelined —
        every send is written before any reply is read — so the round
        trips overlap instead of serialising.
        """
        stats = dict(self._stats)
        stats["num_shards"] = self.num_shards
        stats["requested_workers"] = self._requested_workers
        stats["num_nodes"] = self.num_nodes
        stats["live_nodes"] = len(self.live_nodes)
        stats["kernel_mode"] = _kernels.KERNEL_MODE
        stats["speculation"] = self.speculation_stats()
        pendings: List[Optional[PendingReply]] = []
        for node, client in enumerate(self._clients):
            if not self._live[node] or not client.alive:
                pendings.append(None)
                continue
            try:
                pendings.append(client.send(("pool_stats",)))
            except BackendUnavailableError:
                pendings.append(None)
        node_stats: List[Optional[dict]] = []
        for node, pending in enumerate(pendings):
            if pending is None:
                node_stats.append(None)
                continue
            try:
                node_stats.append(self._node_value(node, pending.wait()))
            except BackendUnavailableError:
                node_stats.append(None)
        stats["nodes"] = node_stats
        stats["stolen_tasks"] += sum(
            int(entry.get("stolen_tasks", 0))
            for entry in node_stats if entry
        )
        stats["workers"] = [
            worker for entry in node_stats if entry
            for worker in entry.get("workers", [])
        ]
        stats["parallel"] = any(
            entry.get("parallel") for entry in node_stats if entry
        )
        return stats

    def close(self) -> None:
        """Release every node's backend and close the connections.

        Terminal, unlike the local pool's close — and unlike the failover
        path: the coordinator cannot restart servers it does not own, and
        a closed backend never re-dials, so queries after ``close`` raise
        :class:`BackendUnavailableError`.
        """
        self._closed = True
        for client in getattr(self, "_clients", []):
            if client.alive:
                try:
                    client.call(("close_backend",), timeout=5.0)
                except (BackendUnavailableError, RuntimeError, OSError):
                    pass
            client.close()
        super().close()
